//! Integration tests for on-disk persistence: index and table store
//! round-trip through files and keep answering queries identically.

use wwt::html::extract_tables;
use wwt::index::{persist, IndexBuilder, TableStore};
use wwt::text::tokenize;

fn sample_tables() -> Vec<wwt::model::WebTable> {
    let html = "<html><head><title>currencies</title></head><body>\
        <p>countries and currency</p><table>\
        <tr><th>Country</th><th>Currency</th></tr>\
        <tr><td>India</td><td>Rupee</td></tr>\
        <tr><td>Japan</td><td>Yen</td></tr></table>\
        <table><tr><th>City</th><th>Population</th></tr>\
        <tr><td>Mumbai</td><td>20411000</td></tr>\
        <tr><td>Delhi</td><td>16787941</td></tr></table></body></html>";
    extract_tables(html, "test://doc", 0)
}

#[test]
fn index_file_roundtrip_preserves_ranking() {
    let tables = sample_tables();
    let mut b = IndexBuilder::new();
    for t in &tables {
        b.add_table(t);
    }
    let index = b.build();
    let dir = std::env::temp_dir().join("wwt_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.idx");
    persist::save(&index, &path).unwrap();
    let restored = persist::load(&path).unwrap();
    for probe in ["country currency", "city population", "india"] {
        let q = tokenize(probe);
        let a = index.search(&q, 10);
        let b = restored.search(&q, 10);
        assert_eq!(a.len(), b.len(), "probe {probe}");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert!((x.score - y.score).abs() < 1e-9);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn store_file_roundtrip_preserves_tables() {
    let tables = sample_tables();
    let store = TableStore::from_tables(tables.clone());
    let dir = std::env::temp_dir().join("wwt_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("store.jsonl");
    store.save(&path).unwrap();
    let restored = TableStore::load(&path).unwrap();
    assert_eq!(restored.len(), tables.len());
    for t in &tables {
        let r = restored.get(t.id).unwrap();
        assert_eq!(r, t);
    }
    std::fs::remove_file(&path).ok();
}
