//! Crash-recovery differential harness: an engine that journals every
//! live mutation to a write-ahead journal, "crashes" uncompacted (the
//! process state is simply dropped), and is recovered by replaying the
//! journal over the persisted frozen index must produce
//! **byte-identical** wire responses to the engine that never crashed —
//! for every inference algorithm — and compact to the same bytes as a
//! from-scratch build over the surviving corpus.
//!
//! A torn tail (the crash landed mid-append) must truncate back to the
//! intact prefix and keep booting, never fail the boot.

use std::path::PathBuf;
use wwt::core::InferenceAlgorithm;
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator, GeneratedCorpus};
use wwt::engine::{bind_corpus_sharded, Engine, EngineBuilder, QueryRequest, WwtConfig};
use wwt::index::{table_to_json, FsyncPolicy, Journal, JournalRecord};
use wwt::model::{TableId, WebTable};
use wwt::server::wire::encode_response;

const ALGORITHMS: [InferenceAlgorithm; 5] = [
    InferenceAlgorithm::Independent,
    InferenceAlgorithm::TableCentric,
    InferenceAlgorithm::AlphaExpansion,
    InferenceAlgorithm::BeliefPropagation,
    InferenceAlgorithm::Trws,
];

const SHARDS: usize = 3;

fn corpus(n_queries: usize, scale: f64) -> (GeneratedCorpus, Vec<wwt::model::Query>) {
    let specs: Vec<_> = workload().into_iter().take(n_queries).collect();
    let generated = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    let queries = specs.iter().map(|s| s.query.clone()).collect();
    (generated, queries)
}

/// The canonical wire bytes of a response, with wall-clock timings
/// zeroed.
fn canonical_bytes(request: &QueryRequest, engine: &Engine) -> String {
    let mut response = engine
        .answer(request)
        .expect("recovery requests carry no deadline and valid options");
    response.diagnostics.timing = Default::default();
    response.retrieval.timing = Default::default();
    encode_response(request, &response)
}

fn extracted_tables(generated: &GeneratedCorpus) -> Vec<WebTable> {
    bind_corpus_sharded(generated, WwtConfig::default(), Some(SHARDS))
        .engine
        .store()
        .iter()
        .cloned()
        .collect()
}

fn from_scratch(tables: Vec<WebTable>) -> Engine {
    let mut b = EngineBuilder::with_config(WwtConfig::default());
    b.shards(SHARDS);
    b.add_tables(tables);
    b.build()
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wwt_crash_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn journal_replay_is_byte_identical_to_the_uncrashed_engine() {
    let (generated, queries) = corpus(2, 0.04);
    let tables = extracted_tables(&generated);
    let base: Vec<WebTable> = tables.iter().step_by(2).cloned().collect();
    let delta: Vec<WebTable> = tables.iter().skip(1).step_by(2).cloned().collect();
    assert!(!delta.is_empty(), "need live mutations to recover");

    let dir = scratch_dir("replay");
    from_scratch(base.clone()).save_to_dir(&dir).unwrap();
    let wal = dir.join("journal.wal");

    // "Boot 1": serve from the persisted index, journal every mutation
    // exactly as the service layer does — append durably, then apply.
    let mut live = Engine::load_from_dir(&dir, WwtConfig::default()).unwrap();
    let (mut journal, replay) = Journal::open(&wal, FsyncPolicy::Always).unwrap();
    assert!(replay.records.is_empty(), "fresh journal starts empty");
    for table in &delta {
        journal
            .append(&JournalRecord::AddTable(table_to_json(table)))
            .unwrap();
        live = live.with_table_added(table.clone());
    }
    // Remove one table from each half: a frozen tombstone and a delta
    // eviction both have to replay.
    let frozen_victim = base[0].id;
    let delta_victim = delta[0].id;
    for victim in [frozen_victim, delta_victim] {
        journal.append(&JournalRecord::RemoveTable(victim)).unwrap();
        live = live.with_table_removed(victim).expect("victim is live");
    }
    // Crash: drop the journal handle with the delta uncompacted and the
    // directory untouched. Only the frozen index + journal survive.
    drop(journal);

    // "Boot 2": reload the frozen index and replay the journal.
    let (journal, replay) = Journal::open(&wal, FsyncPolicy::Always).unwrap();
    assert!(replay.torn_tail.is_none(), "clean shutdown, clean tail");
    assert_eq!(replay.records.len(), delta.len() + 2);
    assert_eq!(journal.records(), replay.records.len() as u64);
    let recovered = Engine::load_from_dir(&dir, WwtConfig::default())
        .unwrap()
        .with_journal_replayed(&replay.records)
        .unwrap();
    assert_eq!(recovered.n_tables(), live.n_tables());
    assert_eq!(recovered.delta_len(), live.delta_len());
    assert_eq!(recovered.tombstone_len(), live.tombstone_len());

    // The recovered engine answers byte-identically to the engine that
    // never crashed, under every inference algorithm.
    for query in &queries {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::new(query.clone()).algorithm(algorithm);
            assert_eq!(
                canonical_bytes(&request, &live),
                canonical_bytes(&request, &recovered),
                "crash-recovery drift for {request:?}"
            );
        }
    }

    // And folding the recovered delta matches a from-scratch build over
    // the surviving logical corpus — recovery composes with the existing
    // compaction guarantee.
    let survivors: Vec<WebTable> = tables
        .iter()
        .filter(|t| t.id != frozen_victim && t.id != delta_victim)
        .cloned()
        .collect();
    let oracle = from_scratch(survivors);
    let compacted = recovered.compacted();
    for query in &queries {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::new(query.clone()).algorithm(algorithm);
            assert_eq!(
                canonical_bytes(&request, &oracle),
                canonical_bytes(&request, &compacted),
                "post-recovery compaction drift for {request:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn volcano_table(id: u32) -> WebTable {
    WebTable::new(
        TableId(id),
        "live://volcano",
        Some("Volcano heights".into()),
        vec![vec!["Volcano".into(), "Elevation".into()]],
        vec![
            vec!["Etna".into(), "3329".into()],
            vec!["Fuji".into(), "3776".into()],
        ],
        vec![],
    )
    .unwrap()
}

#[test]
fn a_torn_tail_truncates_to_the_intact_prefix_and_still_boots() {
    let dir = scratch_dir("torn");
    let wal = dir.join("journal.wal");
    let (mut journal, _) = Journal::open(&wal, FsyncPolicy::Always).unwrap();
    journal
        .append(&JournalRecord::AddTable(table_to_json(&volcano_table(
            9001,
        ))))
        .unwrap();
    journal
        .append(&JournalRecord::RemoveTable(TableId(424_242)))
        .unwrap();
    let intact_len = journal.bytes();
    drop(journal);

    // The crash landed mid-append: a record header promising far more
    // payload than the file holds.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[1u8]).unwrap();
        f.write_all(&512u32.to_le_bytes()).unwrap();
        f.write_all(b"short").unwrap();
    }

    let (journal, replay) = Journal::open(&wal, FsyncPolicy::Always).unwrap();
    assert_eq!(replay.records.len(), 2, "the intact prefix survives");
    let tail = replay.torn_tail.expect("the torn tail is reported");
    assert_eq!(tail.offset, intact_len);
    assert!(tail.dropped_bytes > 0);
    assert!(!tail.reason.is_empty());
    // The file was truncated back to the intact prefix, so the next
    // append starts from a well-formed journal.
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), intact_len);
    assert_eq!(journal.bytes(), intact_len);

    // Replay still recovers: the add lands, the remove of an id this
    // corpus never held is a tolerated no-op.
    let empty = EngineBuilder::with_config(WwtConfig::default()).build();
    let recovered = empty.with_journal_replayed(&replay.records).unwrap();
    assert_eq!(recovered.n_tables(), 1);
    let request = QueryRequest::parse("volcano | elevation").unwrap();
    assert!(!recovered.answer(&request).unwrap().table.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}
