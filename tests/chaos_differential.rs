//! The differential harness behind the resilience guarantee: with every
//! failpoint disarmed and `fail_soft` off, responses are **byte-identical**
//! to a run that never linked the chaos machinery; with any single fault
//! armed, the stack returns a typed error or a well-formed answer —
//! never a crash, a hang, or garbage — and heals to baseline bytes the
//! moment the fault clears; with `fail_soft` on, absorbable faults
//! produce degraded answers whose candidates are a subset of the
//! healthy candidate list, flagged as degraded with human-readable
//! reasons.
//!
//! `wwt_chaos` failpoints are process-global, so every test serializes
//! on [`CHAOS`] and disarms before and after its faults.

use std::sync::{Arc, Mutex, OnceLock};
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt::engine::{bind_corpus, Engine, QueryRequest, WwtConfig};
use wwt::index::{FsyncPolicy, Journal};
use wwt::json::Json;
use wwt::model::{TableId, WebTable, WwtError};
use wwt::server::wire::encode_response;
use wwt::service::TableSearchService;

/// Failpoints are process-global; every test runs under this lock.
static CHAOS: Mutex<()> = Mutex::new(());

/// One small corpus-backed engine shared by every test (the corpus
/// generation dominates this binary's runtime).
fn shared_engine() -> Arc<Engine> {
    static ENGINE: OnceLock<Arc<Engine>> = OnceLock::new();
    Arc::clone(ENGINE.get_or_init(|| {
        let specs: Vec<_> = workload().into_iter().take(3).collect();
        let corpus = CorpusGenerator::new(CorpusConfig {
            scale: 0.04,
            ..CorpusConfig::default()
        })
        .generate_for(&specs);
        Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine)
    }))
}

fn requests() -> Vec<QueryRequest> {
    workload()
        .into_iter()
        .take(3)
        .map(|s| QueryRequest::new(s.query))
        .collect()
}

/// Canonical wire bytes with wall-clock timings zeroed (timing is the
/// one thing a delay fault is *supposed* to change).
fn canonical_bytes(request: &QueryRequest, response: &wwt::engine::QueryResponse) -> String {
    let mut response = response.clone();
    response.diagnostics.timing = Default::default();
    response.retrieval.timing = Default::default();
    encode_response(request, &response)
}

fn volcano_table() -> WebTable {
    WebTable::new(
        TableId(77_000),
        "live://volcano",
        Some("Volcano heights".into()),
        vec![vec!["Volcano".into(), "Elevation".into()]],
        vec![vec!["Etna".into(), "3329".into()]],
        vec![],
    )
    .unwrap()
}

/// Disarmed chaos + `fail_soft: false` is the zero-cost contract: the
/// fast-path flag is down, and enabling `fail_soft` without any fault
/// or deadline pressure is a pure pass-through — same bytes, no
/// degraded flag.
#[test]
fn disarmed_chaos_and_idle_fail_soft_are_byte_identical() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    assert!(!wwt::chaos::armed(), "nothing may be armed at baseline");
    let engine = shared_engine();
    for request in requests() {
        let healthy = engine.answer(&request).unwrap();
        assert!(!healthy.diagnostics.degraded);
        let baseline = canonical_bytes(&request, &healthy);

        let soft = engine.answer(&request.clone().fail_soft(true)).unwrap();
        assert!(!soft.diagnostics.degraded);
        assert!(soft.diagnostics.degraded_reasons.is_empty());
        assert_eq!(
            baseline,
            canonical_bytes(&request, &soft),
            "idle fail_soft drifted for {request:?}"
        );
    }
}

/// One armed fault at a time, across every site and behavior the stack
/// exposes: the caller always gets a typed `WwtError` or a well-formed
/// answer, and once the fault is disarmed the very same request heals
/// back to baseline bytes.
#[test]
fn any_single_fault_yields_typed_errors_then_heals_to_baseline() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    // Cache off: every call must reach the engine, or an armed fault
    // would be papered over by a cache hit and never exercised.
    let service = TableSearchService::with_config(
        shared_engine(),
        wwt::service::ServiceConfig {
            cache_capacity: 0,
            ..Default::default()
        },
    );
    let request = &requests()[0];
    let baseline = canonical_bytes(request, &service.answer(request).unwrap());

    let query_faults = [
        "probe.shard=error",
        "probe.shard=panic",
        "probe.shard=delay:2",
        "map.batch=error",
        "map.batch=panic",
        "map.batch=delay:2",
        "probe.shard=error~1in2",
    ];
    for spec in query_faults {
        wwt_chaos::arm(spec).unwrap();
        match service.answer(request) {
            Ok(response) => {
                // Delays and sampled misses may still answer: the bytes
                // must be well-formed JSON and identical to baseline
                // (a fault either fails the request or changes nothing).
                let bytes = canonical_bytes(request, &response);
                Json::parse(&bytes).expect("well-formed response bytes");
                assert_eq!(baseline, bytes, "fault {spec} corrupted an Ok answer");
            }
            Err(WwtError::Internal(m)) => {
                assert!(m.contains("panicked"), "{spec}: {m}")
            }
            Err(WwtError::Io(_)) => {}
            Err(other) => panic!("fault {spec} leaked an unexpected error: {other:?}"),
        }
        wwt_chaos::disarm_all();
        // Healing: the fault is gone, the same request answers baseline
        // bytes again (failed flights cached nothing).
        assert_eq!(
            baseline,
            canonical_bytes(request, &service.answer(request).unwrap()),
            "service did not heal after {spec}"
        );
    }
    let stats = service.stats();
    assert!(stats.internal_errors >= 2, "panics were counted: {stats:?}");

    // Mutation-path fault: journal appends fail persistently, mutations
    // refuse with a retryable typed error, queries never notice.
    let dir = std::env::temp_dir().join(format!("wwt-chaos-diff-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (journal, _) = Journal::open(&dir.join("journal.wal"), FsyncPolicy::Never).unwrap();
    service.attach_journal(journal, None);
    wwt_chaos::arm("journal.append=error").unwrap();
    match service.ingest_table(volcano_table()) {
        Err(WwtError::Unavailable(m)) => assert!(m.contains("journal append failed"), "{m}"),
        other => panic!("journal fault must map to Unavailable, got {other:?}"),
    }
    assert!(service.read_only());
    assert_eq!(
        baseline,
        canonical_bytes(request, &service.answer(request).unwrap()),
        "read-only degradation must not touch the query path"
    );
    wwt_chaos::disarm_all();
    service.clear_read_only();
    service.ingest_table(volcano_table()).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// `fail_soft: true` turns absorbable faults into degraded answers: the
/// response flags `degraded` with a reason naming the absorbed stage,
/// and the candidate list never invents tables the healthy run did not
/// retrieve.
#[test]
fn fail_soft_absorbs_faults_into_flagged_degraded_subsets() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    let engine = shared_engine();
    for request in requests() {
        let healthy = engine.answer(&request).unwrap();
        let soft_request = request.clone().fail_soft(true);

        // Every shard probe fails. Hard mode propagates the fault…
        wwt_chaos::arm("probe.shard=error").unwrap();
        assert!(
            engine.answer(&request).is_err(),
            "without fail_soft a probe fault must propagate"
        );
        // …soft mode serves what is left (here: nothing), flagged.
        let soft = engine.answer(&soft_request).unwrap();
        wwt_chaos::disarm_all();
        assert!(soft.diagnostics.degraded);
        assert!(
            soft.diagnostics
                .degraded_reasons
                .iter()
                .any(|r| r.contains("shard")),
            "reasons: {:?}",
            soft.diagnostics.degraded_reasons
        );
        assert!(soft.candidates.is_empty(), "all shards were dropped");
        assert!(soft.table.is_empty());

        // The column-map batch fails: soft mode falls back to the
        // stage-1 premapping instead of failing the whole query.
        wwt_chaos::arm("map.batch=error").unwrap();
        let soft = engine.answer(&soft_request).unwrap();
        wwt_chaos::disarm_all();
        assert!(soft.diagnostics.degraded);
        assert!(
            soft.diagnostics
                .degraded_reasons
                .iter()
                .any(|r| r.contains("column mapping")),
            "reasons: {:?}",
            soft.diagnostics.degraded_reasons
        );
        // Degradation never invents candidates: everything served came
        // out of the healthy retrieval set, in its ranked order.
        let healthy_rank: Vec<&TableId> = healthy.candidates.iter().collect();
        let mut last_pos = 0usize;
        for id in &soft.candidates {
            let pos = healthy_rank[last_pos..]
                .iter()
                .position(|h| *h == id)
                .unwrap_or_else(|| {
                    panic!("candidate {id:?} missing from (or reordered vs.) the healthy ranking")
                });
            last_pos += pos + 1;
        }
        // The degraded answer is still shaped like an answer.
        assert_eq!(soft.table.columns.len(), request.query.q());
    }
}
