//! The differential harness behind live ingest: an engine grown
//! table-by-table through the mutable delta segment and then compacted
//! must produce **byte-identical** wire responses to a from-scratch
//! build over the same logical corpus — for every inference algorithm,
//! under random option draws, after removals, and across a persistence
//! round-trip.
//!
//! Pre-compaction the delta path is checked for *liveness* (every
//! ingested table answers queries immediately) rather than byte
//! equality: delta hits are scored against merged corpus statistics
//! while frozen hits keep their freeze-time statistics, an approximation
//! compaction erases by construction.

use wwt::core::InferenceAlgorithm;
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator, GeneratedCorpus};
use wwt::engine::{
    bind_corpus_sharded, Engine, EngineBuilder, QueryOptions, QueryRequest, WwtConfig,
};
use wwt::model::WebTable;
use wwt::server::wire::encode_response;

const ALGORITHMS: [InferenceAlgorithm; 5] = [
    InferenceAlgorithm::Independent,
    InferenceAlgorithm::TableCentric,
    InferenceAlgorithm::AlphaExpansion,
    InferenceAlgorithm::BeliefPropagation,
    InferenceAlgorithm::Trws,
];

const SHARDS: usize = 3;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn corpus(n_queries: usize, scale: f64) -> (GeneratedCorpus, Vec<wwt::model::Query>) {
    let specs: Vec<_> = workload().into_iter().take(n_queries).collect();
    let generated = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    let queries = specs.iter().map(|s| s.query.clone()).collect();
    (generated, queries)
}

/// The canonical wire bytes of a response, with wall-clock timings
/// zeroed.
fn canonical_bytes(request: &QueryRequest, engine: &Engine) -> String {
    let mut response = engine
        .answer(request)
        .expect("equivalence requests carry no deadline and valid options");
    response.diagnostics.timing = Default::default();
    response.retrieval.timing = Default::default();
    encode_response(request, &response)
}

/// The extracted tables of a generated corpus (id-ascending, as the
/// store keeps them).
fn extracted_tables(generated: &GeneratedCorpus) -> Vec<WebTable> {
    bind_corpus_sharded(generated, WwtConfig::default(), Some(SHARDS))
        .engine
        .store()
        .iter()
        .cloned()
        .collect()
}

/// A frozen engine built from scratch over `tables`.
fn from_scratch(tables: Vec<WebTable>) -> Engine {
    let mut b = EngineBuilder::with_config(WwtConfig::default());
    b.shards(SHARDS);
    b.add_tables(tables);
    b.build()
}

/// Splits tables into (base, delta) halves and grows the base engine
/// one `with_table_added` at a time — the library-level equivalent of N
/// `POST /admin/tables` calls.
fn grow_live(tables: &[WebTable]) -> Engine {
    let base: Vec<WebTable> = tables
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, t)| t.clone())
        .collect();
    let delta: Vec<WebTable> = tables
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 1)
        .map(|(_, t)| t.clone())
        .collect();
    let mut live = from_scratch(base);
    for (n, table) in delta.into_iter().enumerate() {
        live = live.with_table_added(table);
        assert_eq!(live.delta_len(), n + 1, "each ingest lands in the delta");
    }
    live
}

#[test]
fn ingested_then_compacted_matches_a_from_scratch_build() {
    let (generated, queries) = corpus(3, 0.05);
    let tables = extracted_tables(&generated);
    let live = grow_live(&tables);
    assert!(live.is_live());
    assert_eq!(live.n_tables(), tables.len());

    let oracle = from_scratch(tables);

    // Pre-compaction liveness: the delta path must answer every workload
    // query without error, retrieving candidates wherever the fully
    // frozen corpus does.
    for query in &queries {
        let request = QueryRequest::new(query.clone());
        let response = live.answer(&request).expect("live engine answers");
        let reference = oracle.answer(&request).unwrap();
        assert!(
            !response.candidates.is_empty() || reference.candidates.is_empty(),
            "live engine lost all candidates for {query}"
        );
    }

    let compacted = live.compacted();
    assert!(!compacted.is_live());
    for query in &queries {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::new(query.clone()).algorithm(algorithm);
            assert_eq!(
                canonical_bytes(&request, &oracle),
                canonical_bytes(&request, &compacted),
                "compaction drift for {request:?}"
            );
        }
    }
}

#[test]
fn random_option_draws_match_after_compaction() {
    let (generated, queries) = corpus(3, 0.04);
    let tables = extracted_tables(&generated);
    let compacted = grow_live(&tables).compacted();
    let oracle = from_scratch(tables);
    let mut state = 0x11FE_1CE5_CAFE_D00D_u64;
    for case in 0..16u32 {
        let qi = (splitmix(&mut state) as usize) % queries.len();
        let options = QueryOptions {
            algorithm: Some(ALGORITHMS[(splitmix(&mut state) as usize) % ALGORITHMS.len()]),
            probe1_k: Some(1 + (splitmix(&mut state) as usize) % 80),
            probe2_k: Some((splitmix(&mut state) as usize) % 16),
            high_relevance: Some(((splitmix(&mut state) % 101) as f64) / 100.0),
            max_rows: splitmix(&mut state)
                .is_multiple_of(2)
                .then(|| (splitmix(&mut state) as usize) % 12),
            deadline_ms: None,
            explain: false,
            early_exit: splitmix(&mut state).is_multiple_of(4),
            fail_soft: false,
        };
        let request = QueryRequest {
            query: queries[qi].clone(),
            options,
        };
        assert_eq!(
            canonical_bytes(&request, &oracle),
            canonical_bytes(&request, &compacted),
            "case {case}: option-draw drift after compaction"
        );
    }
}

#[test]
fn removals_compact_to_the_surviving_corpus() {
    let (generated, queries) = corpus(2, 0.04);
    let tables = extracted_tables(&generated);
    let live = grow_live(&tables);

    // Remove one frozen-half table (tombstone) and one delta-half table
    // (eviction); indices 0 and 1 land in opposite halves by split.
    let frozen_victim = tables[0].id;
    let delta_victim = tables[1].id;
    let live = live
        .with_table_removed(frozen_victim)
        .expect("frozen table removable")
        .with_table_removed(delta_victim)
        .expect("delta table removable");
    assert_eq!(live.n_tables(), tables.len() - 2);

    let compacted = live.compacted();
    let survivors: Vec<WebTable> = tables
        .iter()
        .filter(|t| t.id != frozen_victim && t.id != delta_victim)
        .cloned()
        .collect();
    let oracle = from_scratch(survivors);
    for query in &queries {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::new(query.clone()).algorithm(algorithm);
            assert_eq!(
                canonical_bytes(&request, &oracle),
                canonical_bytes(&request, &compacted),
                "post-removal compaction drift for {request:?}"
            );
        }
    }
}

#[test]
fn compacted_engine_roundtrips_through_persistence() {
    let (generated, queries) = corpus(2, 0.04);
    let tables = extracted_tables(&generated);
    let live = grow_live(&tables);
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()))
        .collect();

    // A live engine refuses to save: the on-disk layout has no delta
    // section, so saving would silently drop mutations.
    let dir = std::env::temp_dir().join(format!("wwt_live_equiv_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        live.save_to_dir(&dir).is_err(),
        "live engines must not save"
    );

    let compacted = live.compacted();
    compacted.save_to_dir(&dir).unwrap();
    let restored = Engine::load_from_dir(&dir, compacted.config().clone()).unwrap();
    assert_eq!(restored.n_shards(), compacted.n_shards());
    for request in &requests {
        assert_eq!(
            canonical_bytes(request, &compacted),
            canonical_bytes(request, &restored),
            "persistence drift after live growth + compaction"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
