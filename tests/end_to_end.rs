//! Cross-crate integration tests: raw HTML in → consolidated answer out,
//! exercising extractor, index, mapper and consolidator together — plus
//! the umbrella-level surface of deadlines and hot engine reloads.

use wwt::engine::{Engine, EngineBuilder, QueryRequest};
use wwt::model::{Label, Query, WwtError};

fn build(pages: &[String]) -> Engine {
    let mut b = EngineBuilder::new();
    b.add_documents(pages.iter().map(String::as_str));
    b.build()
}

fn currency_page(title: &str, rows: &[(&str, &str)], headers: bool) -> String {
    let mut body = String::new();
    if headers {
        body.push_str("<tr><th>Country</th><th>Currency</th></tr>");
    }
    for (c, m) in rows {
        body.push_str(&format!("<tr><td>{c}</td><td>{m}</td></tr>"));
    }
    format!(
        "<html><head><title>{title}</title></head><body>\
         <p>Reference list of countries and their currency</p>\
         <table>{body}</table></body></html>"
    )
}

#[test]
fn html_to_answer_pipeline() {
    let pages = vec![
        currency_page(
            "currencies A",
            &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            true,
        ),
        currency_page(
            "currencies B",
            &[("India", "Rupee"), ("Brazil", "Real")],
            true,
        ),
        // A page with a form table only: contributes nothing.
        "<html><body><table><tr><td><form><input></form></td><td>go</td></tr>\
         <tr><td>x</td><td>y</td></tr></table></body></html>"
            .to_string(),
    ];
    let engine = build(&pages);
    assert_eq!(engine.store().len(), 2, "form table must be rejected");

    let out = engine.answer_query(&Query::parse("country | currency").unwrap());
    assert_eq!(out.table.q(), 2);
    assert_eq!(out.table.len(), 4, "4 distinct countries");
    let india = out
        .table
        .rows
        .iter()
        .find(|r| r.cells[0] == "India")
        .unwrap();
    assert_eq!(india.support, 2, "India merged across tables");
    assert_eq!(india.cells[1], "Rupee");
    // Merged rows rank above singletons.
    assert_eq!(out.table.rows[0].cells[0], "India");
}

#[test]
fn headerless_table_rescued_by_content_overlap() {
    let pages = vec![
        currency_page(
            "currencies",
            &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            true,
        ),
        // Same content, no headers, no context keywords.
        "<html><body><table>\
         <tr><td>India</td><td>Rupee</td></tr>\
         <tr><td>Japan</td><td>Yen</td></tr>\
         <tr><td>Chile</td><td>Peso</td></tr>\
         </table></body></html>"
            .to_string(),
    ];
    let engine = build(&pages);
    let out = engine.answer_query(&Query::parse("country | currency").unwrap());
    // The headerless table's unique row surfaces only if the table was
    // mapped via collective inference.
    assert!(
        out.table.rows.iter().any(|r| r.cells[0] == "Chile"),
        "headerless table must contribute rows: {:?}",
        out.table.rows
    );
    let relevant = out
        .mapping
        .labelings
        .iter()
        .filter(|l| l.is_relevant())
        .count();
    assert_eq!(relevant, 2);
}

#[test]
fn swapped_columns_normalized_in_answer() {
    let pages = vec!["<html><body><p>currency list</p><table>\
         <tr><th>Currency</th><th>Country</th></tr>\
         <tr><td>Rupee</td><td>India</td></tr>\
         <tr><td>Yen</td><td>Japan</td></tr>\
         </table></body></html>"
        .to_string()];
    let engine = build(&pages);
    let out = engine.answer_query(&Query::parse("country | currency").unwrap());
    let lab = &out.mapping.labelings[0];
    assert_eq!(lab.labels, vec![Label::Col(1), Label::Col(0)]);
    // The answer puts country first regardless of source order.
    assert!(out
        .table
        .rows
        .iter()
        .any(|r| r.cells == vec!["India", "Rupee"]));
}

#[test]
fn deadlines_and_reloads_compose_through_the_umbrella() {
    use std::sync::Arc;
    use wwt::service::TableSearchService;

    let first = build(&[currency_page("A", &[("India", "Rupee")], true)]);
    let service = TableSearchService::new(Arc::new(first));

    // In-process deadline surface: a zero budget fails typed, a generous
    // one answers like no deadline at all.
    let req = QueryRequest::parse("country | currency").unwrap();
    assert!(matches!(
        service.answer(&req.clone().deadline_ms(0)),
        Err(WwtError::DeadlineExceeded(_))
    ));
    let plain = service.answer(&req).unwrap();
    let budgeted = service.answer(&req.clone().deadline_ms(60_000)).unwrap();
    assert_eq!(plain.table, budgeted.table);

    // Hot swap: the next answer reflects the rebuilt corpus.
    let second = build(&[currency_page(
        "B",
        &[("India", "Rupee"), ("Brazil", "Real")],
        true,
    )]);
    assert_eq!(service.reload(Arc::new(second)), 1);
    let swapped = service.answer(&req).unwrap();
    assert!(swapped.table.rows.iter().any(|r| r.cells[0] == "Brazil"));
    let stats = service.stats();
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.deadline_exceeded, 1);
}

#[test]
fn single_column_query_returns_entity_list() {
    let pages = vec!["<html><body><h2>Dog breeds of the world</h2><table>\
         <tr><th>Dog breed</th><th>Size</th></tr>\
         <tr><td>Husky</td><td>Large</td></tr>\
         <tr><td>Beagle</td><td>Medium</td></tr>\
         </table></body></html>"
        .to_string()];
    let engine = build(&pages);
    let out = engine.answer_query(&Query::parse("dog breed").unwrap());
    assert_eq!(out.table.q(), 1);
    assert_eq!(out.table.len(), 2);
    let names: Vec<&str> = out.table.rows.iter().map(|r| r.cells[0].as_str()).collect();
    assert!(names.contains(&"Husky") && names.contains(&"Beagle"));
}
