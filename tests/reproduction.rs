//! Reproduction smoke tests: on a small generated corpus, the qualitative
//! results of the paper's evaluation must hold — WWT beats Basic, the
//! segmented similarity beats the unsegmented one, and the consolidated
//! answers under predicted mappings track the true-mapping answers.

use wwt::core::InferenceAlgorithm;
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator, QuerySpec};
use wwt::engine::{bind_corpus, evaluate_query, evaluate_workload, BoundCorpus, Method, WwtConfig};

fn bound_for(prefixes: &[&str]) -> (BoundCorpus, Vec<QuerySpec>) {
    let specs: Vec<QuerySpec> = workload()
        .into_iter()
        .filter(|s| {
            let q = s.query.to_string();
            prefixes.iter().any(|p| q.starts_with(p))
        })
        .collect();
    assert_eq!(specs.len(), prefixes.len(), "all prefixes must resolve");
    let corpus = CorpusGenerator::new(CorpusConfig {
        scale: 0.25,
        ..CorpusConfig::small()
    })
    .generate_for(&specs);
    (bind_corpus(&corpus, WwtConfig::default()), specs)
}

#[test]
fn wwt_beats_basic_on_mixed_workload() {
    let (bound, specs) = bound_for(&[
        "country | currency",
        "black metal bands",
        "chemical element",
        "us states | capitals",
    ]);
    let wwt = evaluate_workload(
        &bound,
        &specs,
        Method::Wwt(InferenceAlgorithm::TableCentric),
        2,
    );
    let basic = evaluate_workload(&bound, &specs, Method::Basic, 2);
    let avg = |evals: &[wwt::engine::QueryEvaluation]| -> f64 {
        evals.iter().map(|e| e.f1_error).sum::<f64>() / evals.len() as f64
    };
    assert!(
        avg(&wwt) <= avg(&basic) + 1e-9,
        "WWT {:.1} must not lose to Basic {:.1}",
        avg(&wwt),
        avg(&basic)
    );
}

#[test]
fn segmented_similarity_beats_unsegmented() {
    // "Nobel prize winners"-style split evidence is where segmentation
    // pays; average over a few queries to avoid noise.
    let (bound, specs) = bound_for(&[
        "Nobel prize winners",
        "north american mountains",
        "name of explorers",
    ]);
    let mut seg = 0.0;
    let mut unseg = 0.0;
    for spec in &specs {
        seg += evaluate_query(&bound, spec, Method::Wwt(InferenceAlgorithm::TableCentric)).f1_error;
        unseg += evaluate_query(&bound, spec, Method::WwtUnsegmented).f1_error;
    }
    assert!(
        seg <= unseg + 1e-9,
        "segmented {seg:.1} must not lose to unsegmented {unseg:.1}"
    );
}

#[test]
fn all_inference_algorithms_satisfy_constraints() {
    let (bound, specs) = bound_for(&["food | fat | protein"]);
    for alg in [
        InferenceAlgorithm::Independent,
        InferenceAlgorithm::TableCentric,
        InferenceAlgorithm::AlphaExpansion,
        InferenceAlgorithm::BeliefPropagation,
        InferenceAlgorithm::Trws,
    ] {
        let eval = evaluate_query(&bound, &specs[0], Method::Wwt(alg));
        for lab in &eval.labelings {
            assert!(
                lab.satisfies_constraints(3, 2),
                "{alg:?} violated table constraints: {:?}",
                lab.labels
            );
        }
    }
}

#[test]
fn probe_statistics_reasonable() {
    let (bound, specs) = bound_for(&["country | gdp", "movies | gross"]);
    for spec in &specs {
        let retrieval = bound.engine.retrieve(&spec.query);
        assert!(
            !retrieval.stage1.is_empty(),
            "stage-1 probe must find candidates"
        );
    }
}
