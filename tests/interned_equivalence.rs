//! The differential harness behind the interned query path: an engine
//! running the optimized path — term-id postings, dense top-k scoring,
//! bind-time precomputed table vectors — must produce **byte-identical**
//! wire responses to the oracle path that recomputes every table view
//! per query (`WwtConfig::precompute_views = false`), for every
//! algorithm, option draw, shard count and persistence round-trip.
//!
//! (The string-keyed *scoring* oracle — `HashMap` accumulation over raw
//! tokens — lives next to the scorer as a wwt-index unit test; this
//! harness covers everything above it, end to end.)
//!
//! Timing fields are zeroed before encoding (they are diagnostics of
//! *when*, not *what*); everything else must match to the byte. A
//! property-style loop drives per-request option draws from a
//! deterministic SplitMix64 stream, so failures reproduce.

use wwt::core::{InferenceAlgorithm, MapperConfig};
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator, GeneratedCorpus};
use wwt::engine::{bind_corpus_sharded, Engine, QueryOptions, QueryRequest, WwtConfig};
use wwt::server::wire::encode_response;

const ALGORITHMS: [InferenceAlgorithm; 5] = [
    InferenceAlgorithm::Independent,
    InferenceAlgorithm::TableCentric,
    InferenceAlgorithm::AlphaExpansion,
    InferenceAlgorithm::BeliefPropagation,
    InferenceAlgorithm::Trws,
];

/// CI runs this suite twice: plain, and with `WWT_EARLY_EXIT=1` turning
/// the aggressive-pruning knob on for every request. The knob may change
/// results vs a knob-off run, but fast and oracle engines see identical
/// potentials, make identical pruning decisions, and must stay
/// byte-identical to *each other* either way.
fn knob_on() -> bool {
    std::env::var("WWT_EARLY_EXIT")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn corpus(n_queries: usize, scale: f64) -> (GeneratedCorpus, Vec<wwt::model::Query>) {
    let specs: Vec<_> = workload().into_iter().take(n_queries).collect();
    let generated = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    let queries = specs.iter().map(|s| s.query.clone()).collect();
    (generated, queries)
}

/// The canonical wire bytes of a response, with wall-clock timings
/// zeroed.
fn canonical_bytes(request: &QueryRequest, engine: &Engine) -> String {
    let mut response = engine
        .answer(request)
        .expect("equivalence requests carry no deadline and valid options");
    response.diagnostics.timing = Default::default();
    response.retrieval.timing = Default::default();
    if let Some(trace) = response.diagnostics.trace.as_mut() {
        trace.zero_timings();
    }
    encode_response(request, &response)
}

fn oracle_config(base: WwtConfig) -> WwtConfig {
    WwtConfig {
        precompute_views: false,
        ..base
    }
}

/// The optimized engine and its per-query-recompute oracle over one
/// corpus, at the given shard count.
fn engine_pair(generated: &GeneratedCorpus, config: WwtConfig, shards: usize) -> (Engine, Engine) {
    let fast = bind_corpus_sharded(generated, config.clone(), Some(shards)).engine;
    let oracle = bind_corpus_sharded(generated, oracle_config(config), Some(shards)).engine;
    (fast, oracle)
}

#[test]
fn every_algorithm_matches_the_per_query_oracle() {
    let (generated, queries) = corpus(4, 0.05);
    for shards in [1usize, 3] {
        let (fast, oracle) = engine_pair(&generated, WwtConfig::default(), shards);
        for query in &queries {
            for algorithm in ALGORITHMS {
                let request = QueryRequest::new(query.clone())
                    .algorithm(algorithm)
                    .early_exit(knob_on());
                assert_eq!(
                    canonical_bytes(&request, &oracle),
                    canonical_bytes(&request, &fast),
                    "interned-path drift at {shards} shard(s) for {request:?}"
                );
            }
        }
    }
}

#[test]
fn pmi_probes_match_the_oracle() {
    // PMI² drives the interned conjunctive doc-set probes (and their
    // bounded memo) harder than anything else.
    let (generated, queries) = corpus(2, 0.04);
    let config = WwtConfig {
        mapper: MapperConfig {
            use_pmi: true,
            ..MapperConfig::default()
        },
        ..WwtConfig::default()
    };
    let (fast, oracle) = engine_pair(&generated, config, 2);
    for query in &queries {
        let request = QueryRequest::new(query.clone()).early_exit(knob_on());
        assert_eq!(
            canonical_bytes(&request, &oracle),
            canonical_bytes(&request, &fast),
            "PMI drift for {request:?}"
        );
    }
    assert!(
        fast.docset_cache_entries() > 0,
        "PMI queries must populate the doc-set memo"
    );
}

#[test]
fn random_option_draws_match_the_oracle() {
    let (generated, queries) = corpus(3, 0.04);
    let (fast, oracle) = engine_pair(&generated, WwtConfig::default(), 1);
    let mut state = 0xD1C7_10AB_CA11_F00D_u64;
    for case in 0..24u32 {
        let qi = (splitmix(&mut state) as usize) % queries.len();
        let options = QueryOptions {
            algorithm: Some(ALGORITHMS[(splitmix(&mut state) as usize) % ALGORITHMS.len()]),
            probe1_k: Some(1 + (splitmix(&mut state) as usize) % 80),
            probe2_k: Some((splitmix(&mut state) as usize) % 16),
            high_relevance: Some(((splitmix(&mut state) % 101) as f64) / 100.0),
            max_rows: splitmix(&mut state)
                .is_multiple_of(2)
                .then(|| (splitmix(&mut state) as usize) % 12),
            deadline_ms: None,
            explain: false,
            early_exit: knob_on() || splitmix(&mut state).is_multiple_of(4),
            fail_soft: false,
        };
        let request = QueryRequest {
            query: queries[qi].clone(),
            options,
        };
        assert_eq!(
            canonical_bytes(&request, &oracle),
            canonical_bytes(&request, &fast),
            "case {case}: option-draw drift"
        );
    }
}

#[test]
fn early_exit_knob_matches_its_own_oracle() {
    // With pruning forced on (regardless of the env toggle), the fast
    // and oracle engines still transform *identical* potentials, so
    // their pruning decisions — and therefore their answers — must stay
    // byte-identical, for every algorithm, down to the relevance bits.
    let (generated, queries) = corpus(3, 0.05);
    for use_pmi in [false, true] {
        let config = WwtConfig {
            mapper: MapperConfig {
                use_pmi,
                ..MapperConfig::default()
            },
            ..WwtConfig::default()
        };
        let (fast, oracle) = engine_pair(&generated, config, 2);
        for query in &queries {
            for algorithm in ALGORITHMS {
                let request = QueryRequest::new(query.clone())
                    .algorithm(algorithm)
                    .early_exit(true);
                assert_eq!(
                    canonical_bytes(&request, &oracle),
                    canonical_bytes(&request, &fast),
                    "pruned-path drift (pmi={use_pmi}) for {request:?}"
                );
                let fast_resp = fast.answer(&request).unwrap();
                let oracle_resp = oracle.answer(&request).unwrap();
                for (a, b) in fast_resp
                    .mapping
                    .table_relevance
                    .iter()
                    .zip(&oracle_resp.mapping.table_relevance)
                {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "relevance bits (pmi={use_pmi}) for {request:?}"
                    );
                }
                // Both engines must agree on what they pruned.
                assert_eq!(
                    fast_resp.diagnostics.map_stats.pruned_tables,
                    oracle_resp.diagnostics.map_stats.pruned_tables,
                    "pruning disagreement (pmi={use_pmi}) for {request:?}"
                );
                assert_eq!(
                    fast_resp.diagnostics.map_stats.collapsed_columns,
                    oracle_resp.diagnostics.map_stats.collapsed_columns,
                    "collapse disagreement (pmi={use_pmi}) for {request:?}"
                );
            }
        }
    }
}

#[test]
fn explain_traces_are_byte_stable_and_oracle_equivalent() {
    // Explain mode attaches a trace whose `*_us` fields are the only
    // nondeterminism; after `zero_timings` the whole wire body — spans,
    // per-shard children, notes, and the table itself — must be stable
    // across reruns and identical between the fast and oracle paths.
    let (generated, queries) = corpus(2, 0.04);
    for shards in [1usize, 2] {
        let (fast, oracle) = engine_pair(&generated, WwtConfig::default(), shards);
        for query in &queries {
            let request = QueryRequest::new(query.clone())
                .explain(true)
                .early_exit(knob_on());
            let first = canonical_bytes(&request, &fast);
            assert!(
                first.contains("\"trace\""),
                "explain responses must embed a trace"
            );
            assert_eq!(
                first,
                canonical_bytes(&request, &fast),
                "explain rerun drift at {shards} shard(s) for {request:?}"
            );
            assert_eq!(
                canonical_bytes(&request, &oracle),
                first,
                "explain oracle drift at {shards} shard(s) for {request:?}"
            );
            let plain = canonical_bytes(&QueryRequest::new(query.clone()), &fast);
            assert!(
                !plain.contains("\"trace\""),
                "plain responses must stay trace-free"
            );
        }
    }
}

#[test]
fn persisted_layouts_of_both_generations_serve_identical_bytes() {
    let (generated, queries) = corpus(2, 0.04);
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::new(q.clone()).early_exit(knob_on()))
        .collect();

    for shards in [1usize, 3] {
        let (fast, _) = engine_pair(&generated, WwtConfig::default(), shards);
        let expected: Vec<String> = requests.iter().map(|r| canonical_bytes(r, &fast)).collect();
        let dir = std::env::temp_dir().join(format!(
            "wwt_interned_equiv_{}_{shards}",
            std::process::id()
        ));

        // Current layout: v3 manifest carrying a dictionary checksum
        // instead of the vocabulary itself.
        fast.save_to_dir(&dir).unwrap();
        let manifest = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert!(manifest.contains("\"version\":3"), "manifest: {manifest}");
        assert!(manifest.contains("\"term_count\""), "manifest: {manifest}");
        assert!(
            manifest.contains("\"term_checksum\""),
            "manifest: {manifest}"
        );
        assert!(
            !manifest.contains("\"terms\""),
            "v3 must not inline the dictionary: {manifest}"
        );
        let restored = Engine::load_from_dir(&dir, fast.config().clone()).unwrap();
        for (request, want) in requests.iter().zip(&expected) {
            assert_eq!(
                *want,
                canonical_bytes(request, &restored),
                "v3 reload drift at {shards} shard(s)"
            );
        }

        // PR-5 era layout: same shard files under a v2 manifest inlining
        // the full vocabulary.
        let v2 = wwt::json::Json::obj([
            ("version", wwt::json::Json::from(2u64)),
            ("shards", wwt::json::Json::from(shards)),
            (
                "terms",
                wwt::json::Json::arr(fast.index().dict().terms().iter().map(String::as_str)),
            ),
        ]);
        std::fs::write(dir.join("manifest.json"), v2.encode()).unwrap();
        let v2_manifest = Engine::load_from_dir(&dir, fast.config().clone()).unwrap();
        for (request, want) in requests.iter().zip(&expected) {
            assert_eq!(
                *want,
                canonical_bytes(request, &v2_manifest),
                "v2-manifest reload drift at {shards} shard(s)"
            );
        }

        // PR-4 era layout: same shard files under a v1 manifest with no
        // dictionary.
        std::fs::write(
            dir.join("manifest.json"),
            format!(r#"{{"version":1,"shards":{shards}}}"#),
        )
        .unwrap();
        let legacy_manifest = Engine::load_from_dir(&dir, fast.config().clone()).unwrap();
        for (request, want) in requests.iter().zip(&expected) {
            assert_eq!(
                *want,
                canonical_bytes(request, &legacy_manifest),
                "v1-manifest reload drift at {shards} shard(s)"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // Pre-manifest layout: a bare single `index.idx` next to the table
    // store.
    let (single, _) = engine_pair(&generated, WwtConfig::default(), 1);
    let dir = std::env::temp_dir().join(format!("wwt_interned_legacy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    wwt::index::persist::save(single.index().shard(0), &dir.join("index.idx")).unwrap();
    single.store().save(&dir.join("tables.jsonl")).unwrap();
    let legacy = Engine::load_from_dir(&dir, single.config().clone()).unwrap();
    assert_eq!(legacy.n_shards(), 1);
    for request in &requests {
        assert_eq!(
            canonical_bytes(request, &single),
            canonical_bytes(request, &legacy),
            "legacy index.idx drift"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
