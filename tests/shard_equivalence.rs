//! The differential harness behind the sharding guarantee: a sharded
//! engine must produce **byte-identical** `QueryResponse`s to the
//! single-shard engine over the same corpus — same rows, same scores,
//! same candidate order, same wire bytes — for every shard count,
//! corpus size and inference algorithm.
//!
//! Timing fields are zeroed before encoding (wall clocks are the one
//! thing sharding is *supposed* to change); everything else must match
//! to the byte. A property-style loop drives per-request option draws
//! from a deterministic SplitMix64 stream, so failures reproduce.
//!
//! `WWT_SHARDS=<n>` adds an extra shard count to the sweep (CI pins 4).

use wwt::core::{InferenceAlgorithm, MapperConfig};
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator, GeneratedCorpus};
use wwt::engine::{bind_corpus_sharded, Engine, QueryOptions, QueryRequest, WwtConfig};
use wwt::server::wire::encode_response;

const ALGORITHMS: [InferenceAlgorithm; 5] = [
    InferenceAlgorithm::Independent,
    InferenceAlgorithm::TableCentric,
    InferenceAlgorithm::AlphaExpansion,
    InferenceAlgorithm::BeliefPropagation,
    InferenceAlgorithm::Trws,
];

/// Shard counts under test: the unsharded reference plus real splits,
/// plus whatever CI pins via `WWT_SHARDS`.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![2, 3, 8];
    if let Some(n) = std::env::var("WWT_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        if !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A corpus over the first `n_queries` workload specs at `scale`.
fn corpus(n_queries: usize, scale: f64) -> (GeneratedCorpus, Vec<wwt::model::Query>) {
    let specs: Vec<_> = workload().into_iter().take(n_queries).collect();
    let generated = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    let queries = specs.iter().map(|s| s.query.clone()).collect();
    (generated, queries)
}

/// The canonical wire bytes of a response, with wall-clock timings
/// zeroed (they are diagnostics of *when*, not *what*).
fn canonical_bytes(request: &QueryRequest, engine: &Engine) -> String {
    let mut response = engine
        .answer(request)
        .expect("equivalence requests carry no deadline and valid options");
    response.diagnostics.timing = Default::default();
    response.retrieval.timing = Default::default();
    encode_response(request, &response)
}

/// Asserts byte-identity for one request across every shard count.
fn assert_equivalent(reference: &Engine, sharded: &[(usize, Engine)], request: &QueryRequest) {
    let expected = canonical_bytes(request, reference);
    for (n, engine) in sharded {
        let actual = canonical_bytes(request, engine);
        assert_eq!(
            expected, actual,
            "response drift at {n} shards for request {:?}",
            request
        );
    }
}

/// Builds the 1-shard reference and every sharded engine over one corpus.
fn engine_family(generated: &GeneratedCorpus, config: WwtConfig) -> (Engine, Vec<(usize, Engine)>) {
    let reference = bind_corpus_sharded(generated, config.clone(), Some(1)).engine;
    let sharded = shard_counts()
        .into_iter()
        .map(|n| {
            let engine = bind_corpus_sharded(generated, config.clone(), Some(n)).engine;
            assert_eq!(engine.n_shards(), n);
            (n, engine)
        })
        .collect();
    (reference, sharded)
}

#[test]
fn every_algorithm_answers_byte_identically_across_shard_counts() {
    let (generated, queries) = corpus(4, 0.05);
    let (reference, sharded) = engine_family(&generated, WwtConfig::default());
    for query in &queries {
        for algorithm in ALGORITHMS {
            let request = QueryRequest::new(query.clone()).algorithm(algorithm);
            assert_equivalent(&reference, &sharded, &request);
        }
    }
}

#[test]
fn property_loop_random_option_draws_stay_byte_identical() {
    let (generated, queries) = corpus(3, 0.04);
    let (reference, sharded) = engine_family(&generated, WwtConfig::default());
    let mut state = 0xC0FF_EE00_D15C_07E5_u64;
    for case in 0..24u32 {
        let qi = (splitmix(&mut state) as usize) % queries.len();
        let options = QueryOptions {
            algorithm: Some(ALGORITHMS[(splitmix(&mut state) as usize) % ALGORITHMS.len()]),
            probe1_k: Some(1 + (splitmix(&mut state) as usize) % 80),
            probe2_k: Some((splitmix(&mut state) as usize) % 16),
            high_relevance: Some(((splitmix(&mut state) % 101) as f64) / 100.0),
            max_rows: splitmix(&mut state)
                .is_multiple_of(2)
                .then(|| (splitmix(&mut state) as usize) % 12),
            deadline_ms: None,
            explain: false,
            early_exit: splitmix(&mut state).is_multiple_of(4),
            fail_soft: false,
        };
        let request = QueryRequest {
            query: queries[qi].clone(),
            options,
        };
        let expected = canonical_bytes(&request, &reference);
        for (n, engine) in &sharded {
            let actual = canonical_bytes(&request, engine);
            assert_eq!(expected, actual, "case {case}: drift at {n} shards");
        }
    }
}

#[test]
fn pmi_doc_set_probes_stay_byte_identical() {
    // PMI² is the one feature that reads raw doc-set probes off the
    // index, so it exercises the sharded id-relabeling path end to end.
    let (generated, queries) = corpus(2, 0.04);
    let config = WwtConfig {
        mapper: MapperConfig {
            use_pmi: true,
            ..MapperConfig::default()
        },
        ..WwtConfig::default()
    };
    let (reference, sharded) = engine_family(&generated, config);
    for query in &queries {
        let request = QueryRequest::new(query.clone());
        assert_equivalent(&reference, &sharded, &request);
    }
}

#[test]
fn corpus_sizes_from_empty_to_moderate_stay_byte_identical() {
    for (n_queries, scale) in [(1usize, 0.02), (2, 0.05), (6, 0.08)] {
        let (generated, queries) = corpus(n_queries, scale);
        let (reference, sharded) = engine_family(&generated, WwtConfig::default());
        for query in &queries {
            let request = QueryRequest::new(query.clone());
            assert_equivalent(&reference, &sharded, &request);
        }
    }
    // Degenerate corpus: more shards than documents.
    let empty = GeneratedCorpus {
        documents: Vec::new(),
    };
    let (reference, sharded) = engine_family(&empty, WwtConfig::default());
    let request = QueryRequest::parse("anything | at all").unwrap();
    assert_equivalent(&reference, &sharded, &request);
}

#[test]
fn persisted_sharded_engines_answer_byte_identically_after_reload() {
    let (generated, queries) = corpus(2, 0.04);
    let (reference, sharded) = engine_family(&generated, WwtConfig::default());
    for (n, engine) in &sharded {
        let dir = std::env::temp_dir().join(format!("wwt_shard_equiv_{}_{n}", std::process::id()));
        engine.save_to_dir(&dir).unwrap();
        let restored = Engine::load_from_dir(&dir, engine.config().clone()).unwrap();
        assert_eq!(restored.n_shards(), *n);
        for query in &queries {
            let request = QueryRequest::new(query.clone());
            assert_eq!(
                canonical_bytes(&request, &reference),
                canonical_bytes(&request, &restored),
                "reloaded {n}-shard engine drifted"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
