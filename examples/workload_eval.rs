//! Runs the full 59-query workload of paper Table 1 at a small corpus
//! scale and prints the per-query F1 error of WWT vs the Basic baseline.
//!
//! Run with: `cargo run --release --example workload_eval`
//! (set `WWT_SCALE` to change the corpus size, default 0.15 here).

use wwt::core::InferenceAlgorithm;
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt::engine::{bind_corpus, evaluate_workload, Method, WwtConfig};

fn main() {
    let scale: f64 = std::env::var("WWT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);
    let specs = workload();
    let corpus = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    eprintln!("corpus: {} documents", corpus.documents.len());
    let bound = bind_corpus(&corpus, WwtConfig::default());

    let wwt = evaluate_workload(
        &bound,
        &specs,
        Method::Wwt(InferenceAlgorithm::TableCentric),
        4,
    );
    let basic = evaluate_workload(&bound, &specs, Method::Basic, 4);

    println!("{:52} {:>6} {:>8} {:>8}", "query", "cand", "Basic", "WWT");
    let mut sums = (0.0, 0.0, 0usize);
    for (w, b) in wwt.iter().zip(&basic) {
        let q = specs[w.query_index].query.to_string();
        if w.candidates == 0 {
            continue;
        }
        println!(
            "{:52} {:>6} {:>7.1}% {:>7.1}%",
            q.chars().take(52).collect::<String>(),
            w.candidates,
            b.f1_error,
            w.f1_error
        );
        sums.0 += b.f1_error;
        sums.1 += w.f1_error;
        sums.2 += 1;
    }
    println!(
        "\naverages over {} answered queries: Basic {:.1}%, WWT {:.1}%",
        sums.2,
        sums.0 / sums.2 as f64,
        sums.1 / sums.2 as f64
    );
}
