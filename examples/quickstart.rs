//! Quickstart: build a tiny corpus of HTML pages into an immutable
//! engine, then answer typed table-query requests through the concurrent
//! service layer.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use wwt::engine::{EngineBuilder, QueryRequest};
use wwt::model::WwtError;
use wwt::service::TableSearchService;

fn main() -> Result<(), WwtError> {
    // Three web pages: two data tables about currencies (one with noisy
    // headers), and a layout page the extractor must reject.
    let pages = [
        r#"<html><head><title>World currencies</title></head><body>
           <h2>List of countries and their currency</h2>
           <table>
             <tr><th>Country</th><th>Currency</th><th>ISO</th></tr>
             <tr><td>India</td><td>Rupee</td><td>INR</td></tr>
             <tr><td>Japan</td><td>Yen</td><td>JPY</td></tr>
             <tr><td>France</td><td>Euro</td><td>EUR</td></tr>
           </table></body></html>"#
            .to_string(),
        // Headerless table — only content overlap can identify its columns.
        r#"<html><body><p>money reference</p><table>
             <tr><td>Brazil</td><td>Real</td></tr>
             <tr><td>India</td><td>Rupee</td></tr>
             <tr><td>Japan</td><td>Yen</td></tr>
           </table></body></html>"#
            .to_string(),
        r#"<html><body><table><tr><td><form><input name=q></form></td>
           <td>Search</td></tr><tr><td>a</td><td>b</td></tr></table></body></html>"#
            .to_string(),
    ];

    // Offline: extract data tables, build the fielded index (paper §2.1),
    // freeze everything into an immutable, thread-shareable engine.
    let mut builder = EngineBuilder::new();
    builder.add_documents(pages.iter().map(String::as_str));
    let engine = Arc::new(builder.build());
    println!(
        "indexed {} data tables (layout/form tables rejected)",
        engine.store().len()
    );

    // Online: one engine, many requests — the service adds a response
    // cache and batched fan-out on top.
    let service = TableSearchService::new(Arc::clone(&engine));
    let request = QueryRequest::parse("country | currency")?;
    let out = service.answer(&request)?;

    println!("\nquery: {}", request.query);
    println!(
        "candidates: {} (second probe used: {})",
        out.candidates.len(),
        out.diagnostics.probe2_used
    );
    for (i, lab) in out.mapping.labelings.iter().enumerate() {
        println!(
            "  {} relevance {:.2} labels {:?}",
            out.candidates[i],
            out.mapping.table_relevance[i],
            lab.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }
    println!("\nconsolidated answer:\n{}", out.table.render(24));
    println!(
        "\ntimings: column map {:?}, total {:?}",
        out.diagnostics.timing.column_map,
        out.diagnostics.timing.total()
    );

    // Per-request overrides ride on the same engine: cap the answer rows.
    let top1 = service.answer(&request.clone().max_rows(1))?;
    println!("\ntop-1 row only:\n{}", top1.table.render(24));

    // A repeated request is served from the response cache.
    let _ = service.answer(&request)?;
    let stats = service.stats();
    println!(
        "\ncache: {} hits / {} misses over {} entries",
        stats.hits, stats.misses, stats.entries
    );
    Ok(())
}
