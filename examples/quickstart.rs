//! Quickstart: build a tiny corpus of HTML pages, index it, and answer a
//! two-column table query end to end.
//!
//! Run with: `cargo run --example quickstart`

use wwt::engine::{Wwt, WwtConfig};
use wwt::model::Query;

fn main() {
    // Three web pages: two data tables about currencies (one with noisy
    // headers), and a layout page the extractor must reject.
    let pages = vec![
        r#"<html><head><title>World currencies</title></head><body>
           <h2>List of countries and their currency</h2>
           <table>
             <tr><th>Country</th><th>Currency</th><th>ISO</th></tr>
             <tr><td>India</td><td>Rupee</td><td>INR</td></tr>
             <tr><td>Japan</td><td>Yen</td><td>JPY</td></tr>
             <tr><td>France</td><td>Euro</td><td>EUR</td></tr>
           </table></body></html>"#
            .to_string(),
        // Headerless table — only content overlap can identify its columns.
        r#"<html><body><p>money reference</p><table>
             <tr><td>Brazil</td><td>Real</td></tr>
             <tr><td>India</td><td>Rupee</td></tr>
             <tr><td>Japan</td><td>Yen</td></tr>
           </table></body></html>"#
            .to_string(),
        r#"<html><body><table><tr><td><form><input name=q></form></td>
           <td>Search</td></tr><tr><td>a</td><td>b</td></tr></table></body></html>"#
            .to_string(),
    ];

    // Offline: extract data tables, build the fielded index (paper §2.1).
    let wwt = Wwt::build(pages.iter().map(String::as_str), WwtConfig::default());
    println!(
        "indexed {} data tables (layout/form tables rejected)",
        wwt.store().len()
    );

    // Online: column-keyword query, one keyword set per answer column.
    let query = Query::parse("country | currency").expect("valid query");
    let out = wwt.answer(&query);

    println!("\nquery: {query}");
    println!(
        "candidates: {} (second probe used: {})",
        out.candidates.len(),
        out.probe2_used
    );
    for (i, lab) in out.mapping.labelings.iter().enumerate() {
        println!(
            "  {} relevance {:.2} labels {:?}",
            out.candidates[i],
            out.mapping.table_relevance[i],
            lab.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }
    println!("\nconsolidated answer:\n{}", out.table.render(24));
    println!(
        "\ntimings: column map {:?}, total {:?}",
        out.timing.column_map,
        out.timing.total()
    );
}
