//! Compares the five inference algorithms of paper Table 2 on one
//! generated workload query, showing their labelings, F1 error and
//! running time.
//!
//! Run with: `cargo run --release --example inference_comparison`

use std::time::Instant;
use wwt::core::InferenceAlgorithm;
use wwt::corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt::engine::{bind_corpus, evaluate_query, Method, WwtConfig};

fn main() {
    let spec = workload()
        .into_iter()
        .find(|s| s.query.to_string().starts_with("us states | capitals"))
        .expect("workload query");
    println!("query: {}\n", spec.query);

    let corpus =
        CorpusGenerator::new(CorpusConfig::small()).generate_for(std::slice::from_ref(&spec));
    let bound = bind_corpus(&corpus, WwtConfig::default());
    println!(
        "corpus: {} tables ({} ground-truth labeled)\n",
        bound.engine.store().len(),
        bound.n_labeled()
    );

    let algorithms = [
        ("None (independent, §4.1)", InferenceAlgorithm::Independent),
        ("Table-centric (§4.2)", InferenceAlgorithm::TableCentric),
        ("alpha-expansion (§4.3)", InferenceAlgorithm::AlphaExpansion),
        ("Belief propagation", InferenceAlgorithm::BeliefPropagation),
        ("TRW-S", InferenceAlgorithm::Trws),
    ];
    println!(
        "{:28} {:>8} {:>10} {:>10}",
        "algorithm", "F1 err", "relevant", "time"
    );
    for (name, alg) in algorithms {
        let t0 = Instant::now();
        let eval = evaluate_query(&bound, &spec, Method::Wwt(alg));
        let dt = t0.elapsed();
        let relevant = eval.labelings.iter().filter(|l| l.is_relevant()).count();
        println!(
            "{:28} {:>7.1}% {:>10} {:>9.1?}",
            name, eval.f1_error, relevant, dt
        );
    }
    println!("\npaper: table-centric is both the most accurate and the fastest;");
    println!("       BP/TRWS suffer from the mutex constraint lowered to dissociative edges.");
}
