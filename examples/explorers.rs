//! The paper's Figure 1 scenario: the query
//! `"name of explorers | nationality | areas explored"` against three web
//! tables — a clean one, one with swapped columns and a noisy second
//! header row, and an irrelevant "Forest reserves" table whose context
//! mentions "exploration".
//!
//! Run with: `cargo run --example explorers`

use wwt::engine::EngineBuilder;
use wwt::model::Query;

fn main() {
    let pages = [
        // Web Table 1: clean, with a split header in column 3.
        r#"<html><head><title>List of explorers - encyclopedia</title></head><body>
           <p>This article lists the explorations in history.</p>
           <table>
             <tr><th>Name</th><th>Nationality</th><th>Main areas</th></tr>
             <tr><th></th><th></th><th>explored</th></tr>
             <tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>
             <tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route to India</td></tr>
             <tr><td>Alexander Mackenzie</td><td>British</td><td>Canada</td></tr>
           </table></body></html>"#
            .to_string(),
        // Web Table 2: reversed column order, "(Chronological order)" noise
        // header, missing nationality.
        r#"<html><body><h3>Exploration timeline</h3>
           <table>
             <tr><th>Exploration</th><th>Who (explorer)</th></tr>
             <tr><th>(Chronological order)</th><th></th></tr>
             <tr><td>Sea route to India</td><td>Vasco da Gama</td></tr>
             <tr><td>Caribbean</td><td>Christopher Columbus</td></tr>
             <tr><td>Oceania</td><td>Abel Tasman</td></tr>
           </table></body></html>"#
            .to_string(),
        // Web Table 3: irrelevant despite "exploration" in its context.
        r#"<html><head><title>Other Formal Reserves</title></head><body>
           <p>Forest Reserves under the Forestry Act 1920.</p>
           <p>All areas will be available for mineral exploration and mining.</p>
           <table>
             <tr><td colspan="3"><b>Forest reserves</b></td></tr>
             <tr><th>ID</th><th>Name</th><th>Area</th></tr>
             <tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>
             <tr><td>9</td><td>Plains Creek</td><td>880</td></tr>
             <tr><td>13</td><td>Welcome Swamp</td><td>168</td></tr>
           </table></body></html>"#
            .to_string(),
    ];

    let mut builder = EngineBuilder::new();
    builder.add_documents(pages.iter().map(String::as_str));
    let engine = builder.build();
    let query = Query::parse("name of explorers | nationality | areas explored").unwrap();
    let out = engine.answer_query(&query);

    println!("query: {query}\n");
    for (i, lab) in out.mapping.labelings.iter().enumerate() {
        let t = engine.store().get(out.candidates[i]).unwrap();
        println!(
            "{} ({}): relevance {:.2}",
            out.candidates[i],
            t.title.as_deref().unwrap_or("untitled"),
            out.mapping.table_relevance[i]
        );
        if let Some(h) = t.headers.first() {
            println!("  headers: {h:?}");
        }
        println!(
            "  labels : {:?}",
            lab.labels.iter().map(|l| l.to_string()).collect::<Vec<_>>()
        );
    }
    println!("\nconsolidated answer (dedup across tables, ranked by support):");
    println!("{}", out.table.render(28));
}
