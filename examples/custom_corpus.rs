//! Using WWT on your own documents: index a handful of pages about black
//! metal bands — including the paper's §3.2.1 case where the query phrase
//! "black metal" never appears in a header, only in the *body* of a genre
//! column — and inspect how the segmented similarity exploits it.
//!
//! Run with: `cargo run --example custom_corpus`

use wwt::core::features::{seg_sim, QueryView};
use wwt::core::{MapperConfig, TableView};
use wwt::engine::EngineBuilder;
use wwt::model::Query;

fn main() {
    let pages = [
        // The paper's example: headers "Band name | Country | Genre", no
        // context; "Black metal" appears only as frequent body content.
        r#"<html><body><table>
             <tr><th>Band name</th><th>Country</th><th>Genre</th></tr>
             <tr><td>Mayhem</td><td>Norway</td><td>Black metal</td></tr>
             <tr><td>Burzum</td><td>Norway</td><td>Black metal</td></tr>
             <tr><td>Marduk</td><td>Sweden</td><td>Black metal</td></tr>
             <tr><td>Immortal</td><td>Norway</td><td>Black metal</td></tr>
           </table></body></html>"#
            .to_string(),
        r#"<html><head><title>Extreme metal encyclopedia</title></head><body>
           <h2>Black metal bands by country of origin</h2>
           <table>
             <tr><th>Band</th><th>Country</th></tr>
             <tr><td>Mayhem</td><td>Norway</td></tr>
             <tr><td>Rotting Christ</td><td>Greece</td></tr>
           </table></body></html>"#
            .to_string(),
    ];

    let mut builder = EngineBuilder::new();
    builder.add_documents(pages.iter().map(String::as_str));
    let engine = builder.build();
    let query = Query::parse("black metal bands | country").unwrap();

    // Peek at the segmented similarity for the headerless-phrase case.
    let cfg = MapperConfig::default();
    let stats = engine.index().stats();
    let qv = QueryView::new(&query, stats);
    let t0 = engine.store().iter().next().unwrap();
    let view = TableView::new(t0, stats, cfg.body_freq_frac);
    println!("SegSim of Q1 = \"black metal bands\" against table 1's columns:");
    for c in 0..t0.n_cols() {
        println!(
            "  column {c} ({:?}): {:.3}",
            t0.header(0, c),
            seg_sim(&qv.columns[0], &view, c, &cfg)
        );
    }
    println!("(column 0 wins: \"bands\" pins the header, \"black metal\" is");
    println!(" supported by frequent body content in the genre column — §3.2.1)\n");

    let out = engine.answer_query(&query);
    println!("answer:\n{}", out.table.render(24));
}
