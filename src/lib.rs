//! # wwt
//!
//! Umbrella crate for the WWT workspace — a from-scratch Rust reproduction
//! of **"Answering Table Queries on the Web using Column Keywords"**
//! (Pimplikar & Sarawagi, VLDB 2012).
//!
//! WWT answers a *table query* — one keyword set per desired answer column,
//! e.g. `"name of explorers | nationality | areas explored"` — over a corpus
//! of tables harvested from HTML pages, and returns a single consolidated
//! multi-column table.
//!
//! The umbrella re-exports every sub-crate under a stable module name:
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | shared types: [`model::WebTable`], [`model::Query`], [`model::Label`], … |
//! | [`text`] | tokenizer, IDF statistics, TF-IDF vectors |
//! | [`html`] | HTML parser, table / header / context extraction |
//! | [`index`] | fielded inverted index (Lucene substitute) |
//! | [`graph`] | flows, matching, constrained cuts, α-expansion, BP, TRW-S |
//! | [`core`] | the column mapper: features, potentials, inference |
//! | [`corpus`] | synthetic web corpus generator + the 59-query workload |
//! | [`consolidate`] | answer-table consolidation and ranking |
//! | [`engine`] | end-to-end pipeline, baselines, metrics, timing |
//!
//! ## Quickstart
//!
//! ```
//! use wwt::corpus::{CorpusConfig, CorpusGenerator};
//! use wwt::engine::{Wwt, WwtConfig};
//! use wwt::model::Query;
//!
//! // Generate a small synthetic web corpus for one workload query.
//! let spec = wwt::corpus::workload()
//!     .into_iter()
//!     .find(|s| s.query.to_string().starts_with("country | currency"))
//!     .unwrap();
//! let corpus = CorpusGenerator::new(CorpusConfig::small()).generate_for(&[spec]);
//!
//! // Build the engine offline (extract + index) and ask the query online.
//! let wwt = Wwt::build(corpus.documents.iter().map(|d| d.html.as_str()), WwtConfig::default());
//! let answer = wwt.answer(&Query::parse("country | currency").unwrap());
//! assert_eq!(answer.table.columns.len(), 2);
//! ```

pub use wwt_consolidate as consolidate;
pub use wwt_core as core;
pub use wwt_corpus as corpus;
pub use wwt_engine as engine;
pub use wwt_graph as graph;
pub use wwt_html as html;
pub use wwt_index as index;
pub use wwt_model as model;
pub use wwt_text as text;
