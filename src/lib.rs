//! # wwt
//!
//! Umbrella crate for the WWT workspace — a from-scratch Rust reproduction
//! of **"Answering Table Queries on the Web using Column Keywords"**
//! (Pimplikar & Sarawagi, VLDB 2012), grown into a service-grade system.
//!
//! WWT answers a *table query* — one keyword set per desired answer column,
//! e.g. `"name of explorers | nationality | areas explored"` — over a corpus
//! of tables harvested from HTML pages, and returns a single consolidated
//! multi-column table.
//!
//! The umbrella re-exports every sub-crate under a stable module name:
//!
//! | module | contents |
//! |---|---|
//! | [`model`] | shared types: [`model::WebTable`], [`model::Query`], [`model::WwtError`], … |
//! | [`json`] | hand-rolled JSON codec shared by persistence and HTTP bodies |
//! | [`text`] | tokenizer, IDF statistics, TF-IDF vectors |
//! | [`html`] | HTML parser, table / header / context extraction |
//! | [`index`] | fielded inverted index (Lucene substitute) |
//! | [`graph`] | flows, matching, constrained cuts, α-expansion, BP, TRW-S |
//! | [`core`] | the column mapper: features, potentials, inference |
//! | [`corpus`] | synthetic web corpus generator + the 59-query workload |
//! | [`consolidate`] | answer-table consolidation and ranking |
//! | [`engine`] | [`engine::EngineBuilder`] (offline), [`engine::Engine`] (online), baselines, metrics |
//! | [`service`] | [`service::TableSearchService`]: shared engine + cache + singleflight + batching |
//! | [`server`] | [`server::serve`]: the HTTP/1.1 endpoint, metrics, graceful shutdown, `wwt-serve` |
//! | [`obs`] | request-scoped tracing, per-stage histograms, flight recorder, leveled logging |
//! | [`chaos`] | std-only failpoints (`WWT_CHAOS`) behind the resilience test harness |
//!
//! ## Quickstart
//!
//! The API splits along the service boundary: an [`engine::EngineBuilder`]
//! runs the offline pipeline (extract → store → index) and freezes an
//! immutable, `Send + Sync` [`engine::Engine`]; a
//! [`service::TableSearchService`] shares that engine across threads with
//! a cached, batched front end. Requests are typed
//! ([`engine::QueryRequest`]) and carry per-request overrides; answers
//! come back as [`engine::QueryResponse`] with diagnostics, and every
//! fallible step returns [`model::WwtError`] instead of `Option`/panics.
//!
//! ```
//! use std::sync::Arc;
//! use wwt::corpus::{CorpusConfig, CorpusGenerator};
//! use wwt::engine::{EngineBuilder, QueryRequest};
//! use wwt::service::TableSearchService;
//!
//! // Generate a small synthetic web corpus for one workload query.
//! let spec = wwt::corpus::workload()
//!     .into_iter()
//!     .find(|s| s.query.to_string().starts_with("country | currency"))
//!     .unwrap();
//! let corpus = CorpusGenerator::new(CorpusConfig::small()).generate_for(&[spec]);
//!
//! // Offline: extract + index into an immutable engine snapshot.
//! let mut builder = EngineBuilder::new();
//! builder.add_documents(corpus.documents.iter().map(|d| d.html.as_str()));
//! let engine = Arc::new(builder.build());
//!
//! // Online: serve typed requests through the concurrent service layer.
//! let service = TableSearchService::new(engine);
//! let request = QueryRequest::parse("country | currency").unwrap();
//! let answer = service.answer(&request).unwrap();
//! assert_eq!(answer.table.columns.len(), 2);
//!
//! // Repeats hit the response cache; overrides (here: row limit) miss.
//! let again = service.answer(&request).unwrap();
//! assert_eq!(again.table, answer.table);
//! assert_eq!(service.stats().hits, 1);
//! let top3 = service.answer(&request.clone().max_rows(3)).unwrap();
//! assert!(top3.table.len() <= 3);
//! assert_eq!(service.stats().misses, 2);
//! ```
//!
//! ## Serving over HTTP
//!
//! [`server`] (`wwt-server`) puts that same service behind a network
//! boundary: a std-only HTTP/1.1 endpoint with a worker pool,
//! keep-alive, singleflight-coalesced caching underneath, Prometheus
//! metrics and graceful shutdown. Start the bundled binary against a
//! generated corpus and query it with `curl`:
//!
//! ```text
//! $ cargo run --release --bin wwt-serve -- --addr 127.0.0.1:7070 --scale 0.1 \
//!       --admin-token sesame
//! listening on http://127.0.0.1:7070
//!
//! $ curl -s -X POST http://127.0.0.1:7070/query \
//!        -d '{"query": "country | currency", "options": {"max_rows": 3}}'
//! {"query":"country | currency","columns":["country","currency"],"rows":[...],...}
//!
//! $ curl -s http://127.0.0.1:7070/stats      # cache hit/miss/coalesced counters
//! $ curl -s http://127.0.0.1:7070/metrics    # Prometheus text format
//! $ curl -s -X POST -H 'x-admin-token: sesame' \
//!        http://127.0.0.1:7070/admin/shutdown   # drain + exit 0
//! ```
//!
//! The admin routes only exist when an admin token is configured
//! (`--admin-token` / `WWT_ADMIN_TOKEN`; `wwt-serve` generates and
//! prints one if unset), so an exposed port never offers an
//! unauthenticated kill switch.
//!
//! ## Zero-downtime reload
//!
//! The service holds its engine behind a generation-tagged
//! [`service::EngineSlot`], so a crawler or indexer can refresh the
//! corpus behind a running server. Boot `wwt-serve` from an on-disk
//! source (`--corpus-dir DIR` of raw HTML, or `--index-path DIR`
//! persisted via [`engine::Engine::save_to_dir`] / `--save-index`), then
//! ask it to re-read that source:
//!
//! ```text
//! $ cargo run --release --bin wwt-serve -- --addr 127.0.0.1:7070 \
//!       --corpus-dir /srv/crawl --admin-token sesame
//!
//! # ... drop freshly crawled pages into /srv/crawl, then:
//! $ curl -s -X POST -H 'x-admin-token: sesame' \
//!        http://127.0.0.1:7070/admin/reload
//! {"status":"reloading","generation":0}
//!
//! $ curl -s http://127.0.0.1:7070/healthz     # poll until the bump
//! {"status":"ok","generation":1}
//! ```
//!
//! The rebuild runs on a background thread and is swapped in atomically
//! — queries keep being answered throughout, in-flight requests finish
//! against the snapshot they started on, and the generation-qualified
//! cache key guarantees no response computed against the old index is
//! ever served for the new one (stale entries simply age out of the
//! LRU). `GET /version` reports the crate version, build profile and
//! current generation; per-request `deadline_ms` budgets (HTTP 504 when
//! exceeded) keep slow cold queries from outliving their callers while
//! all this happens.
//!
//! ## Live ingest
//!
//! The frozen engine also takes **live mutations**: a mutable delta
//! segment ([`index::LiveIndex`]) fronts the frozen shards, so single
//! tables can be added or removed in milliseconds — no rebuild — and a
//! background **compaction** later folds the delta into a freshly built
//! frozen engine that is *byte-identical* to building from scratch over
//! the same logical corpus (`tests/live_equivalence.rs` is the
//! differential proof, across all five inference algorithms, random
//! option draws, removals and a persistence round-trip).
//!
//! Over HTTP the surface is three admin-gated routes; bodies are the
//! same one-line JSON the table store uses (`{"id":…,"url":…,"title":…,
//! "headers":[[…]],"rows":[[…]],"context":[…]}`):
//!
//! ```text
//! $ curl -s -X POST -H 'x-admin-token: sesame' http://127.0.0.1:7070/admin/tables \
//!        -d '{"id":9001,"url":"live://v","title":"Volcano heights",
//!             "headers":[["Volcano","Elevation"]],
//!             "rows":[["Etna","3329"],["Fuji","3776"]],"context":[]}'
//! {"status":"ingested","table_id":9001,"generation":1}
//!
//! $ curl -s -X POST http://127.0.0.1:7070/query -d '{"query":"volcano | elevation"}'
//! # ... answers immediately, served from the delta segment
//!
//! $ curl -s -X DELETE -H 'x-admin-token: sesame' \
//!        http://127.0.0.1:7070/admin/tables/9001      # tombstone / evict
//! $ curl -s -X POST -H 'x-admin-token: sesame' \
//!        http://127.0.0.1:7070/admin/compact          # fold delta -> frozen
//! {"status":"compacting","generation":2}
//! ```
//!
//! Each mutation publishes a new generation through the same
//! [`service::EngineSlot`] swap a reload uses, so caches never serve
//! stale answers. `wwt-serve --max-delta-tables N` (env
//! `WWT_MAX_DELTA_TABLES`) auto-compacts in the background once the
//! delta holds N tables; `0` (the default) leaves compaction to the
//! explicit route. Bulk loads go through `POST /admin/tables/batch`
//! (JSONL, one table line per row): N tables cost one delta rebuild,
//! one journal flush and one generation bump instead of N of each.
//! Delta scoring uses merged corpus statistics (frozen
//! hits keep their freeze-time statistics — an approximation compaction
//! erases), and a live engine refuses [`engine::Engine::save_to_dir`]
//! until compacted so the on-disk layout never silently drops
//! mutations (the error names the remedies: `POST /admin/compact`, or a
//! journal-backed restart). Observability: `"delta_tables"`,
//! `"delta_tombstones"`,
//! `"tables_ingested"`, `"tables_deleted"` and `"compactions"` on
//! `GET /stats`, plus the `wwt_delta_tables` / `wwt_delta_tombstones`
//! gauges and `wwt_tables_ingested_total` / `wwt_tables_deleted_total` /
//! `wwt_compactions_total` counters on `GET /metrics`.
//!
//! The same API in-process:
//!
//! ```
//! use wwt::engine::{EngineBuilder, QueryRequest};
//! use wwt::model::{TableId, WebTable};
//!
//! let mut builder = EngineBuilder::new();
//! builder.add_html(
//!     "<html><body><p>countries and currency</p><table>\
//!      <tr><th>Country</th><th>Currency</th></tr>\
//!      <tr><td>India</td><td>Rupee</td></tr></table></body></html>",
//! );
//! let frozen = builder.build();
//! let volcano = WebTable::new(
//!     TableId(9001),
//!     "live://v",
//!     Some("Volcano heights".into()),
//!     vec![vec!["Volcano".into(), "Elevation".into()]],
//!     vec![vec!["Etna".into(), "3329".into()]],
//!     vec![],
//! )
//! .unwrap();
//! let live = frozen.with_table_added(volcano); // O(delta), no rebuild
//! let request = QueryRequest::parse("volcano | elevation").unwrap();
//! assert!(!live.answer(&request).unwrap().table.is_empty());
//! let compacted = live.compacted(); // byte-identical to a fresh build
//! assert!(!compacted.is_live());
//! ```
//!
//! ## Durability
//!
//! Live mutations are made crash-safe by a **write-ahead journal**
//! ([`index::Journal`]): `wwt-serve --journal PATH` (env `WWT_JOURNAL`)
//! appends every accepted ingest and delete as a length-prefixed,
//! checksummed record — fsync'd *before* the 202 leaves the server — and
//! replays the journal over the freshly built engine at the next boot.
//! A `kill -9` between compactions loses nothing: the recovered engine
//! is byte-identical to the one that never crashed
//! (`tests/crash_recovery.rs` is the differential proof, across all five
//! inference algorithms). A torn tail — the crash landed mid-append — is
//! truncated back to the intact prefix with a logged warning, never a
//! boot failure.
//!
//! The journal's lifecycle is tied to compaction: with `--index-path`,
//! a successful `POST /admin/compact` persists the folded index back
//! into that directory (write-new then rename, manifest last, so a
//! half-finished replacement is caught by the manifest checksum instead
//! of misloading) and then truncates the journal atomically. Corpus-dir
//! and synthetic boots keep every record so a rebuild-from-source boot
//! replays the full mutation history. `--journal-fsync never` (env
//! `WWT_JOURNAL_FSYNC`) trades power-loss durability for bulk-load
//! throughput; the default `always` fsyncs every append, and a batch
//! costs one fsync total.
//!
//! In-process the same pieces compose directly: [`index::Journal::open`]
//! returns the surviving records, [`engine::Engine::with_journal_replayed`]
//! folds them over a loaded engine, and
//! [`service::TableSearchService::attach_journal`] makes the service
//! journal every subsequent mutation. Observability: `"journal_attached"`,
//! `"journal_records"`, `"journal_bytes"`, `"journal_path"` and
//! `"batches_ingested"` on `GET /stats`, the journal path on
//! `GET /version`, and the `wwt_journal_attached` / `wwt_journal_records`
//! / `wwt_journal_bytes` gauges plus `wwt_batches_ingested_total` on
//! `GET /metrics`.
//!
//! ## Sharding
//!
//! The engine's index is hash-partitioned into N independent shards
//! ([`index::ShardedIndex`]; default: one per core, capped at 8) and the
//! two retrieval probes scatter-gather across them on the engine pool —
//! cold-query latency drops on multicore hardware while answers stay
//! **byte-identical** to the unsharded engine. That equivalence is a
//! hard guarantee, not an aspiration: shards score against the merged
//! *global* corpus statistics, per-shard top-k lists merge under the
//! same `(score, TableId)` total order the single index sorts by, and
//! the differential harness (`tests/shard_equivalence.rs`) asserts
//! byte-identical wire responses across shard counts, corpus sizes and
//! every inference algorithm.
//!
//! ```
//! use wwt::engine::{EngineBuilder, QueryRequest};
//!
//! let page = "<html><body><p>countries and currency</p><table>\
//!             <tr><th>Country</th><th>Currency</th></tr>\
//!             <tr><td>India</td><td>Rupee</td></tr></table></body></html>";
//! let mut sharded = EngineBuilder::new();
//! sharded.shards(4).add_html(page);
//! let mut single = EngineBuilder::new();
//! single.shards(1).add_html(page);
//! let request = QueryRequest::parse("country | currency").unwrap();
//! let a = sharded.build().answer(&request).unwrap();
//! let b = single.build().answer(&request).unwrap();
//! assert_eq!(a.table, b.table); // sharding never changes answers
//! ```
//!
//! Persistence keeps the layout: [`engine::Engine::save_to_dir`] writes
//! a versioned `manifest.json` plus one `shard-NNNN.idx` per shard
//! (plus `tables.jsonl`), [`engine::Engine::load_from_dir`] restores the
//! same shard count — and still reads pre-sharding directories (a bare
//! `index.idx`) as a single shard. Serving: `wwt-serve --shards N`
//! partitions the boot build, `POST /admin/reload` rebuilds with the
//! serving engine's shard count, and the count is reported by
//! `GET /version` (`"shards"`), `GET /stats` (`"index_shards"`) and the
//! `wwt_index_shards` Prometheus gauge.
//!
//! ## Performance
//!
//! The online query path is fully **interned**: the index freeze builds
//! a term dictionary ([`text::TermDict`], ids assigned in sorted term
//! order, persisted in the index manifest), and everything after the
//! one-hash-per-token resolution step runs on dense `u32` ids — postings
//! are a vector indexed by term id, per-term IDF and per-posting `√tf` /
//! per-doc `√(len+1)` are precomputed at freeze, ranked probes score
//! into a reusable dense accumulator and select top-k with a bounded
//! heap, and every table's feature view (tokenized headers, TF-IDF
//! vectors, value sets) is computed **once at engine bind** and shared
//! by all queries instead of being rebuilt per request. The doc-set
//! probe memo behind PMI² is striped and size-capped (reported as
//! `"docset_cache_entries"` in `GET /stats` and the
//! `wwt_docset_cache_entries` gauge), and `QueryDiagnostics` reports
//! per-shard probe wall-clocks (`timing_us.probe1_shards` /
//! `probe2_shards` on the wire) so scatter-gather stragglers are
//! visible.
//!
//! The **column-mapping stage** — the dominant per-query cost — rides
//! the same bind-time layout. Each table's feature view interns its
//! per-column segment/cover structures once at bind
//! (`wwt-core`'s `view::InternedFeatures`): sorted `TermId` vectors for
//! header and value segments, precomputed per-segment norms, and FNV-1a
//! content signatures per column. At query time the query columns are
//! bound to the dictionary once, and Eq. 3 node potentials reduce to
//! sorted-merge intersections over dense ids — zero string hashing per
//! (query, table) pair. Two pruning layers sit on top:
//!
//! * **Exact upper-bound early exit** (always on): a per-table bound on
//!   the best achievable relevant labeling, folded in the same IEEE
//!   operation order as the real scorer, skips the assignment solve for
//!   tables that provably land on the all-`nr` labeling anyway. Exact by
//!   construction — covered bit-for-bit by the equivalence harness.
//! * **Content-signature edge indexing** (always on): §3.3 edge
//!   construction only scores column pairs that share at least one value
//!   or header signature. A pair sharing neither has exactly zero value
//!   overlap *and* zero header cosine, so its similarity is exactly
//!   `0.0` and it never produced an edge on the dense path either —
//!   skipping it is provably identical, and the masked scorer preserves
//!   the dense emission order.
//! * **Cross-query pair memoization** (always on): the per-pair column
//!   matching of §3.3 depends only on the two table views and two
//!   mapper-config scalars — never on the query (the per-query `nsim`
//!   normalization runs afterwards, over the query's own candidate
//!   set). The engine keeps a config-fingerprinted memo of matched
//!   `(col, col, sim)` lists keyed by table-id pair and replays them on
//!   later queries that retrieve the same pair, which is bit-identical
//!   to recomputation. Live mutations swap in a fresh memo because
//!   ingest can rebind a table id to new content.
//! * **Aggressive candidate pruning** (`"early_exit": true` per
//!   request, default **off**): collapses the label space of columns
//!   with zero similarity to every query column and drops tables whose
//!   upper bound cannot beat all-`nr` from edge construction entirely.
//!   This one **may change results** — a pruned table can no longer be
//!   rescued by its graph neighbors under the joint inference
//!   algorithms — so it participates in the cache key and is excluded
//!   from the byte-identity guarantee; `tests/interned_equivalence.rs`
//!   still holds knob-on responses byte-identical between the interned
//!   path and its string-keyed oracle (CI runs the suite both ways).
//!   Stats surface as `"map_edge_pairs_scored"` / `"map_edge_pairs_
//!   skipped"` / `"map_edge_pairs_memoized"` / `"map_early_exit_tables"`
//!   / `"map_pruned_tables"` on `GET /stats` and the matching
//!   `wwt_map_*_total` counters on `GET /metrics`.
//!
//! None of the default-path work changes a single answer byte: operand
//! values and accumulation order are preserved exactly, and the
//! differential harnesses (`tests/shard_equivalence.rs`,
//! `tests/interned_equivalence.rs`) plus the golden snapshots hold the
//! optimized path to bit-identical output against its string-keyed /
//! per-query oracles.
//!
//! Measure it with the perf benchmark, which writes the machine-readable
//! trajectory point `BENCH_query_path.json` at the repo root (fixed
//! seed; `WWT_SCALE` sizes the corpus, default 0.15):
//!
//! ```text
//! cargo run --release -p wwt-bench --bin perf
//! cat BENCH_query_path.json   # index_build_ms, engine_bind_ms,
//!                             # probe_topk / cold_query / warm_query µs
//! ```
//!
//! `cold_query` is the first uncached end-to-end run per workload query
//! (the number the interning + precompute work targets — ≥ 2× down vs.
//! the string-keyed path on the bench corpus); `column_map` isolates the
//! mapping stage the fast path above targets, with a
//! `column_map_by_algorithm` breakdown per inference algorithm;
//! `index_build_ms` tracks
//! the offline freeze, which the hash-free positional freeze keeps at or
//! below its pre-interning cost. `engine_bind_ms` additionally includes
//! the bind-time feature precompute — deliberately spent offline so no
//! query ever pays it. The bind itself fans out over a persistent worker
//! pool (`wwt-pool`): per-shard index freezes and per-table feature
//! computations run in parallel (`EngineBuilder::bind_threads`, 0 =
//! auto), and the artifact records both `engine_bind_ms` (pooled) and
//! `engine_bind_serial_ms` so the multicore win is measured, not
//! assumed — the built engine is identical for every thread count. The
//! same pool batches the per-view potential computations inside the
//! column mapper and the scatter-gather probe fan-out at query time.
//! CI runs the same binary in smoke mode
//! (`WWT_BENCH_SMOKE=1`) and uploads the artifact; `benches/
//! query_path.rs` carries the criterion version of the same three
//! measurements.
//!
//! ## Per-route concurrency limits
//!
//! `POST /query` and `POST /query/batch` share a concurrency budget
//! ([`server::ServerConfig::max_concurrent_queries`], default 256;
//! `wwt-serve --max-concurrent-queries N`): beyond it, query requests
//! answer **429** with `Retry-After: 1` instead of queueing behind a
//! saturated engine, while health/stats/metrics/admin stay reachable.
//! Rejections are counted in `wwt_http_concurrency_rejected_total`.
//!
//! In-process, the same round trip (ephemeral port, typed client):
//!
//! ```
//! use std::sync::Arc;
//! use wwt::engine::EngineBuilder;
//! use wwt::server::{serve, HttpClient, ServerConfig};
//! use wwt::service::TableSearchService;
//!
//! let mut builder = EngineBuilder::new();
//! builder.add_html(
//!     "<html><body><p>countries and currency</p><table>\
//!      <tr><th>Country</th><th>Currency</th></tr>\
//!      <tr><td>India</td><td>Rupee</td></tr></table></body></html>",
//! );
//! let service = Arc::new(TableSearchService::new(Arc::new(builder.build())));
//! let handle = serve(service, ServerConfig::default()).unwrap();
//!
//! let mut client = HttpClient::connect(handle.addr()).unwrap();
//! let ok = client.post("/query", r#"{"query":"country | currency"}"#).unwrap();
//! assert_eq!(ok.status, 200);
//! let bad = client.post("/query", r#"{"query":" | "}"#).unwrap();
//! assert_eq!(bad.status, 400); // parse errors are the client's fault
//! handle.shutdown();           // drains in-flight requests, then returns
//! ```
//!
//! ## Observability
//!
//! The [`obs`] crate threads end-to-end visibility through the whole
//! stack with zero hot-path cost when unused:
//!
//! * **Request ids** — every HTTP response (success *and* error,
//!   including 429/503 backpressure) echoes the client's `x-request-id`
//!   header, or a server-minted `wwt-{pid}-{seq}` id, so one id follows
//!   a query through logs, traces and the flight recorder.
//! * **Inline traces** — `"options":{"explain":true}` bypasses the
//!   response cache and attaches a full span tree under
//!   `diagnostics.trace`: one span per pipeline stage (`probe1`,
//!   `read1`, `probe2`, `read2`, `column_map`, `consolidate`) with
//!   per-shard child spans, plus notes (candidate counts, cache path,
//!   engine generation, deadline budget). Plain requests are
//!   byte-identical to a build without tracing — the disabled
//!   [`obs::Trace`] is an `Option::None` check
//!   (`tests/interned_equivalence.rs` proves explain reruns and the
//!   fast/oracle pair byte-stable).
//! * **Per-stage histograms** — `GET /metrics` exports
//!   `wwt_stage_duration_us{stage=…}` Prometheus histograms for every
//!   stage plus `cache_lookup` and `serialize`, fed from the stage
//!   timings the engine already measures (cache hits tick only
//!   `cache_lookup`, never re-observe the run that built the entry).
//! * **Flight recorder** — the service retains the N slowest, N most
//!   recent, and every deadline-exceeded / zero-result query with full
//!   stage-level traces in lock-striped rings; the admin-gated
//!   `GET /debug/slow_queries` and `GET /debug/trace/{request_id}`
//!   routes serve them, and `flight_*` counters ride on `GET /stats`.
//! * **Structured logs** — `wwt-serve --log-level error|warn|info|debug`
//!   and `--log-json` (env `WWT_LOG_LEVEL` / `WWT_LOG_JSON`) drive the
//!   std-only leveled logger ([`obs::log!`]) used by the server, the
//!   reload thread and background compaction; lines carry the request
//!   id where one exists.
//!
//! ```text
//! $ curl -s -X POST http://127.0.0.1:7070/query \
//!        -H 'x-request-id: demo-1' \
//!        -d '{"query":"country | currency","options":{"explain":true}}' \
//!   | python3 -m json.tool | grep -A4 '"trace"'
//! $ curl -s -H 'x-admin-token: sesame' \
//!        http://127.0.0.1:7070/debug/trace/demo-1   # retained flight record
//! $ curl -s http://127.0.0.1:7070/metrics | grep wwt_stage_duration_us
//! ```
//!
//! ## Resilience
//!
//! The serving stack is **fail-soft** end to end, and ships the harness
//! that proves it. Three layers compose:
//!
//! * **Panic isolation** — a panic anywhere in the query pipeline is
//!   caught at the service boundary and converted to
//!   [`model::WwtError::Internal`] (HTTP **500** with the request id):
//!   no worker dies, no singleflight follower hangs on the abandoned
//!   flight, nothing is cached, and the failure is counted
//!   (`wwt_internal_errors_total`) and retained by the flight recorder.
//! * **Partial-result degradation** — `"options":{"fail_soft":true}`
//!   (default **off**, part of the cache key) lets pipeline stages
//!   absorb recoverable faults instead of failing the request: a dead
//!   index shard is dropped from the scatter-gather, a failed
//!   column-map batch falls back to the stage-1 premapping, deadline
//!   pressure downgrades joint inference to Independent or truncates a
//!   stage. The answer then carries `"degraded":true` plus
//!   human-readable `"degraded_reasons"`; a request whose budget is
//!   already spent at admission is still refused hard (**504**, counted
//!   in `wwt_queries_shed_total` — nothing useful can be salvaged).
//! * **Mutation-path resilience** — a journal append that keeps failing
//!   after a bounded in-place retry (`wwt_journal_retries_total`) trips
//!   **sticky read-only mode**: mutations answer **503** +
//!   `Retry-After` ([`model::WwtError::Unavailable`]) instead of
//!   half-acknowledging writes, while queries are untouched. The state
//!   is visible on `GET /healthz` (`"status":"degraded"` — still HTTP
//!   200, the read path is healthy), `"read_only"` on `GET /stats` and
//!   the `wwt_read_only` gauge; `POST /admin/recover` (admin-gated)
//!   lifts it once the operator has fixed the disk.
//!
//! Faults are injected with the std-only [`chaos`] failpoint crate:
//! sites like `journal.append`, `probe.shard`, `map.batch`,
//! `persist.load` / `persist.save` and `reload.build` are armed
//! programmatically ([`chaos::arm`]) or via the environment —
//! `WWT_CHAOS='probe.shard=panic,journal.append=error*3'`, with
//! optional fire-count (`*N`) and seeded-deterministic sampling
//! (`~1inK`). Disarmed (the default), every site is two relaxed atomic
//! loads; no behavior or answer byte changes, which
//! `tests/chaos_differential.rs` holds as a differential guarantee
//! alongside single-fault crash-freedom and the degraded-subset
//! contract. CI's resilience smoke boots `wwt-serve` under an armed
//! journal fault and walks the full degrade → refuse → recover cycle
//! over HTTP.
//!
//! ```
//! use std::sync::Arc;
//! use wwt::engine::{EngineBuilder, QueryRequest};
//! use wwt::service::TableSearchService;
//!
//! let mut builder = EngineBuilder::new();
//! builder.add_html(
//!     "<html><body><p>countries and currency</p><table>\
//!      <tr><th>Country</th><th>Currency</th></tr>\
//!      <tr><td>India</td><td>Rupee</td></tr></table></body></html>",
//! );
//! let service = TableSearchService::new(Arc::new(builder.build()));
//! let request = QueryRequest::parse("country | currency").unwrap();
//!
//! // Inject a panic into every shard probe; no thread dies, the error
//! // is typed, and nothing poisons later requests.
//! wwt::chaos::arm("probe.shard=panic").unwrap();
//! assert!(matches!(
//!     service.answer(&request),
//!     Err(wwt::model::WwtError::Internal(_))
//! ));
//! wwt::chaos::disarm_all();
//! assert!(service.answer(&request).is_ok());
//! assert_eq!(service.stats().internal_errors, 1);
//!
//! // Fail-soft: the same fault degrades instead of failing.
//! wwt::chaos::arm("probe.shard=error").unwrap();
//! let soft = service.answer(&request.fail_soft(true)).unwrap();
//! assert!(soft.diagnostics.degraded);
//! assert!(!soft.diagnostics.degraded_reasons.is_empty());
//! wwt::chaos::disarm_all();
//! ```

pub use wwt_chaos as chaos;
pub use wwt_consolidate as consolidate;
pub use wwt_core as core;
pub use wwt_corpus as corpus;
pub use wwt_engine as engine;
pub use wwt_graph as graph;
pub use wwt_html as html;
pub use wwt_index as index;
pub use wwt_json as json;
pub use wwt_model as model;
pub use wwt_obs as obs;
pub use wwt_server as server;
pub use wwt_service as service;
pub use wwt_text as text;
