//! Raw table extraction: from DOM `<table>` elements to row/cell grids with
//! per-cell formatting flags (the inputs of the header extractor, §2.1.1).

use crate::dom::{Document, NodeId};

/// A table cell before header/body splitting, with the formatting markers
/// the header extractor inspects.
#[derive(Debug, Clone, Default)]
pub struct RawCell {
    /// Whitespace-normalized cell text (nested-table content excluded).
    pub text: String,
    /// Cell used the designated `<th>` tag.
    pub is_th: bool,
    /// Contains `<b>`/`<strong>`.
    pub bold: bool,
    /// Contains `<i>`/`<em>`.
    pub italic: bool,
    /// Contains `<u>`.
    pub underline: bool,
    /// Contains `<code>`/`<tt>`.
    pub code: bool,
    /// Cell or its row declares a background (bgcolor attr or
    /// `background` in an inline style).
    pub has_bg: bool,
    /// Cell or its row carries a CSS class.
    pub has_class: bool,
}

/// One table row of raw cells (colspan already expanded).
#[derive(Debug, Clone, Default)]
pub struct RawRow {
    /// The row's cells.
    pub cells: Vec<RawCell>,
}

/// A table as extracted from the DOM, before classification and header
/// splitting.
#[derive(Debug, Clone)]
pub struct RawTable {
    /// The `<table>` element in the document (used for context extraction).
    pub node: NodeId,
    /// Rows in document order.
    pub rows: Vec<RawRow>,
    /// `<caption>` text, if present.
    pub caption: Option<String>,
    /// The subtree contains form controls (a strong layout/artifact signal).
    pub has_form: bool,
}

impl RawTable {
    /// Maximum number of cells in any row.
    pub fn n_cols(&self) -> usize {
        self.rows.iter().map(|r| r.cells.len()).max().unwrap_or(0)
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }
}

/// Extracts every `<table>` element of `doc` as a [`RawTable`]. Rows and
/// cells of *nested* tables are not mixed into the outer table; nested
/// tables are returned as their own entries.
pub fn extract_raw_tables(doc: &Document) -> Vec<RawTable> {
    let tables = doc.elements_by_tag("table");
    tables
        .iter()
        .map(|&tnode| {
            let mut rows = Vec::new();
            let mut caption = None;
            collect_rows(doc, tnode, tnode, &mut rows, &mut caption);
            let has_form =
                doc.subtree_contains(tnode, &["form", "input", "select", "textarea", "button"]);
            RawTable {
                node: tnode,
                rows,
                caption,
                has_form,
            }
        })
        .collect()
}

/// Walks the subtree under `id`, collecting `<tr>` rows that belong to
/// `table` (stopping at nested `<table>` boundaries).
fn collect_rows(
    doc: &Document,
    table: NodeId,
    id: NodeId,
    rows: &mut Vec<RawRow>,
    caption: &mut Option<String>,
) {
    for &child in &doc.node(id).children {
        match doc.tag(child) {
            Some("table") if child != table => continue, // nested table boundary
            Some("tr") => {
                let row = extract_row(doc, child);
                if !row.cells.is_empty() {
                    rows.push(row);
                }
            }
            Some("caption") => {
                let text = doc.text_of(child, &["table"]);
                if !text.is_empty() {
                    *caption = Some(text);
                }
            }
            _ => collect_rows(doc, table, child, rows, caption),
        }
    }
}

fn extract_row(doc: &Document, tr: NodeId) -> RawRow {
    let row_bg = has_bg(doc, tr);
    let row_class = doc.attr(tr, "class").is_some();
    let mut cells = Vec::new();
    for &child in &doc.node(tr).children {
        let tag = doc.tag(child);
        if !matches!(tag, Some("td") | Some("th")) {
            continue;
        }
        let colspan: usize = doc
            .attr(child, "colspan")
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(1)
            .clamp(1, 32);
        let cell = RawCell {
            text: doc.text_of(child, &["table"]),
            is_th: tag == Some("th"),
            bold: doc.subtree_contains(child, &["b", "strong"]),
            italic: doc.subtree_contains(child, &["i", "em"]),
            underline: doc.subtree_contains(child, &["u"]),
            code: doc.subtree_contains(child, &["code", "tt"]),
            has_bg: row_bg || has_bg(doc, child),
            has_class: row_class || doc.attr(child, "class").is_some(),
        };
        cells.push(cell);
        // Colspan expansion: pad with empty cells that inherit formatting
        // flags, so row signatures stay stable.
        for _ in 1..colspan {
            cells.push(RawCell {
                text: String::new(),
                ..cells.last().cloned().unwrap_or_default()
            });
        }
    }
    RawRow { cells }
}

fn has_bg(doc: &Document, id: NodeId) -> bool {
    if doc.attr(id, "bgcolor").is_some() {
        return true;
    }
    doc.attr(id, "style")
        .map(|s| s.to_ascii_lowercase().contains("background"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(html: &str) -> RawTable {
        let doc = Document::parse(html);
        let mut ts = extract_raw_tables(&doc);
        assert!(!ts.is_empty(), "no table found");
        ts.remove(0)
    }

    #[test]
    fn basic_grid() {
        let t =
            parse_one("<table><tr><th>A</th><th>B</th></tr><tr><td>1</td><td>2</td></tr></table>");
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.n_cols(), 2);
        assert!(t.rows[0].cells[0].is_th);
        assert!(!t.rows[1].cells[0].is_th);
        assert_eq!(t.rows[1].cells[1].text, "2");
    }

    #[test]
    fn colspan_expanded() {
        let t = parse_one(
            r#"<table><tr><td colspan="3">Title</td></tr><tr><td>a</td><td>b</td><td>c</td></tr></table>"#,
        );
        assert_eq!(t.rows[0].cells.len(), 3);
        assert_eq!(t.rows[0].cells[0].text, "Title");
        assert_eq!(t.rows[0].cells[1].text, "");
        assert_eq!(t.rows[0].cells[2].text, "");
    }

    #[test]
    fn colspan_clamped() {
        let t =
            parse_one(r#"<table><tr><td colspan="9999">x</td></tr><tr><td>y</td></tr></table>"#);
        assert_eq!(t.rows[0].cells.len(), 32);
    }

    #[test]
    fn formatting_flags() {
        let t = parse_one(
            r##"<table><tr bgcolor="#eee"><td class="hd"><b>Name</b></td><td><i>x</i> <u>y</u> <code>z</code></td></tr></table>"##,
        );
        let c0 = &t.rows[0].cells[0];
        assert!(c0.bold && c0.has_bg && c0.has_class);
        let c1 = &t.rows[0].cells[1];
        assert!(c1.italic && c1.underline && c1.code && c1.has_bg);
        assert!(!c1.bold);
    }

    #[test]
    fn nested_tables_not_merged() {
        let doc = Document::parse(
            "<table><tr><td>outer<table><tr><td>inner</td></tr></table></td></tr></table>",
        );
        let ts = extract_raw_tables(&doc);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].rows[0].cells[0].text, "outer");
        assert_eq!(ts[1].rows[0].cells[0].text, "inner");
    }

    #[test]
    fn caption_and_form_detected() {
        let t =
            parse_one("<table><caption>Forest reserves</caption><tr><td><input></td></tr></table>");
        assert_eq!(t.caption.as_deref(), Some("Forest reserves"));
        assert!(t.has_form);
    }

    #[test]
    fn tbody_thead_transparent() {
        let t = parse_one(
            "<table><thead><tr><th>H</th></tr></thead><tbody><tr><td>b</td></tr></tbody></table>",
        );
        assert_eq!(t.n_rows(), 2);
        assert!(t.rows[0].cells[0].is_th);
    }

    #[test]
    fn style_background_counts_as_bg() {
        let t = parse_one(r#"<table><tr><td style="background-color: red">x</td></tr></table>"#);
        assert!(t.rows[0].cells[0].has_bg);
    }
}
