//! A forgiving HTML token stream.
//!
//! Produces [`Token`]s from raw HTML text. Handles quoted / unquoted /
//! valueless attributes, self-closing tags, comments, and treats the
//! contents of `<script>` and `<style>` as opaque text that is skipped.
//! Entity decoding covers the named entities that matter for table text
//! plus numeric entities.

/// One lexical HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" ...>`; `self_closing` is true for `<br/>`-style tags.
    Start {
        /// Lowercased tag name.
        name: String,
        /// Attribute `(name, value)` pairs; valueless attributes get `""`.
        attrs: Vec<(String, String)>,
        /// True for `<tag/>`.
        self_closing: bool,
    },
    /// `</name>` with lowercased name.
    End(String),
    /// Text between tags, entity-decoded, whitespace preserved.
    Text(String),
}

/// Tokenizes `html`. Malformed input never panics; garbage degrades to
/// text tokens.
pub fn tokenize(html: &str) -> Vec<Token> {
    let bytes = html.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let n = bytes.len();
    let mut text_start = 0;

    let flush_text = |tokens: &mut Vec<Token>, from: usize, to: usize| {
        if from < to {
            let raw = &html[from..to];
            if !raw.trim().is_empty() {
                tokens.push(Token::Text(decode_entities(raw)));
            }
        }
    };

    while i < n {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if html[i..].starts_with("<!--") {
            flush_text(&mut tokens, text_start, i);
            let end = html[i + 4..]
                .find("-->")
                .map(|p| i + 4 + p + 3)
                .unwrap_or(n);
            i = end;
            text_start = i;
            continue;
        }
        // Doctype / processing instruction: skip to '>'.
        if html[i..].starts_with("<!") || html[i..].starts_with("<?") {
            flush_text(&mut tokens, text_start, i);
            let end = html[i..].find('>').map(|p| i + p + 1).unwrap_or(n);
            i = end;
            text_start = i;
            continue;
        }
        // A real tag must be followed by '/' or an ASCII letter; otherwise
        // the '<' is literal text.
        let next = bytes.get(i + 1).copied();
        let is_tag =
            matches!(next, Some(b'/')) || next.map(|b| b.is_ascii_alphabetic()).unwrap_or(false);
        if !is_tag {
            i += 1;
            continue;
        }
        flush_text(&mut tokens, text_start, i);
        let close = html[i..].find('>').map(|p| i + p);
        let Some(close) = close else {
            // Unterminated tag: treat the rest as text.
            text_start = i;
            break;
        };
        let inner = &html[i + 1..close];
        if let Some(stripped) = inner.strip_prefix('/') {
            let name = stripped.trim().to_ascii_lowercase();
            if !name.is_empty() {
                tokens.push(Token::End(name));
            }
        } else {
            let (name, attrs, self_closing) = parse_tag_body(inner);
            if !name.is_empty() {
                // script/style content is opaque: skip to the end tag.
                if name == "script" || name == "style" {
                    let end_tag = format!("</{name}");
                    let rest = &html[close + 1..];
                    let skip = rest
                        .to_ascii_lowercase()
                        .find(&end_tag)
                        .map(|p| close + 1 + p)
                        .unwrap_or(n);
                    tokens.push(Token::Start {
                        name: name.clone(),
                        attrs,
                        self_closing,
                    });
                    tokens.push(Token::End(name));
                    let after = html[skip..].find('>').map(|p| skip + p + 1).unwrap_or(n);
                    i = after;
                    text_start = i;
                    continue;
                }
                tokens.push(Token::Start {
                    name,
                    attrs,
                    self_closing,
                });
            }
        }
        i = close + 1;
        text_start = i;
    }
    flush_text(&mut tokens, text_start, n);
    tokens
}

/// Parses the inside of a start tag: `name attr=val attr2="v" flag /`.
fn parse_tag_body(inner: &str) -> (String, Vec<(String, String)>, bool) {
    let inner = inner.trim();
    let self_closing = inner.ends_with('/');
    let inner = inner.trim_end_matches('/').trim();
    let mut name_end = inner.len();
    for (idx, ch) in inner.char_indices() {
        if ch.is_whitespace() {
            name_end = idx;
            break;
        }
    }
    let name = inner[..name_end].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let rest = &inner[name_end..];
    let mut j = 0;
    let rb = rest.as_bytes();
    while j < rb.len() {
        while j < rb.len() && rb[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= rb.len() {
            break;
        }
        // attribute name
        let name_start = j;
        while j < rb.len() && !rb[j].is_ascii_whitespace() && rb[j] != b'=' {
            j += 1;
        }
        let aname = rest[name_start..j].to_ascii_lowercase();
        while j < rb.len() && rb[j].is_ascii_whitespace() {
            j += 1;
        }
        let mut aval = String::new();
        if j < rb.len() && rb[j] == b'=' {
            j += 1;
            while j < rb.len() && rb[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < rb.len() && (rb[j] == b'"' || rb[j] == b'\'') {
                let quote = rb[j];
                j += 1;
                let vstart = j;
                while j < rb.len() && rb[j] != quote {
                    j += 1;
                }
                aval = decode_entities(&rest[vstart..j]);
                j = (j + 1).min(rb.len());
            } else {
                let vstart = j;
                while j < rb.len() && !rb[j].is_ascii_whitespace() {
                    j += 1;
                }
                aval = decode_entities(&rest[vstart..j]);
            }
        }
        if !aname.is_empty() {
            attrs.push((aname, aval));
        }
    }
    (name, attrs, self_closing)
}

/// Decodes the common named entities and numeric character references.
pub fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest[..rest.len().min(12)].find(';');
        match semi {
            Some(end) => {
                let ent = &rest[1..end];
                let decoded: Option<String> = match ent {
                    "amp" => Some("&".into()),
                    "lt" => Some("<".into()),
                    "gt" => Some(">".into()),
                    "quot" => Some("\"".into()),
                    "apos" => Some("'".into()),
                    "nbsp" => Some(" ".into()),
                    "mdash" => Some("—".into()),
                    "ndash" => Some("–".into()),
                    "hellip" => Some("…".into()),
                    _ => {
                        if let Some(num) = ent.strip_prefix('#') {
                            let cp = if let Some(hex) = num.strip_prefix(['x', 'X']) {
                                u32::from_str_radix(hex, 16).ok()
                            } else {
                                num.parse::<u32>().ok()
                            };
                            cp.and_then(char::from_u32).map(|c| c.to_string())
                        } else {
                            None
                        }
                    }
                };
                match decoded {
                    Some(d) => {
                        out.push_str(&d);
                        rest = &rest[end + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> Token {
        Token::Start {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_tags_and_text() {
        let toks = tokenize("<p>Hello</p>");
        assert_eq!(
            toks,
            vec![
                start("p"),
                Token::Text("Hello".into()),
                Token::End("p".into())
            ]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_valueless() {
        let toks = tokenize(r#"<td colspan="3" align=center nowrap>"#);
        match &toks[0] {
            Token::Start { name, attrs, .. } => {
                assert_eq!(name, "td");
                assert_eq!(
                    attrs,
                    &vec![
                        ("colspan".to_string(), "3".to_string()),
                        ("align".to_string(), "center".to_string()),
                        ("nowrap".to_string(), String::new()),
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/><hr />");
        assert!(matches!(&toks[0], Token::Start { name, self_closing: true, .. } if name == "br"));
        assert!(matches!(&toks[1], Token::Start { name, self_closing: true, .. } if name == "hr"));
    }

    #[test]
    fn comments_and_doctype_skipped() {
        let toks = tokenize("<!DOCTYPE html><!-- hidden <table> --><b>x</b>");
        assert_eq!(
            toks,
            vec![start("b"), Token::Text("x".into()), Token::End("b".into())]
        );
    }

    #[test]
    fn script_content_opaque() {
        let toks = tokenize("<script>if (a < b) { doc.write('<table>'); }</script><p>y</p>");
        // No table token may leak out of the script body.
        assert!(toks
            .iter()
            .all(|t| !matches!(t, Token::Start { name, .. } if name == "table")));
        assert!(toks.contains(&Token::Text("y".into())));
    }

    #[test]
    fn entities_decoded() {
        let toks = tokenize("<td>Tom &amp; Jerry &lt;3 &#65;&#x42;</td>");
        assert_eq!(toks[1], Token::Text("Tom & Jerry <3 AB".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("3 < 4 but <b>bold</b>");
        assert_eq!(toks[0], Token::Text("3 < 4 but ".into()));
        assert_eq!(toks[1], start("b"));
    }

    #[test]
    fn unterminated_tag_degrades() {
        // No token may be lost; the unterminated tag is kept as text.
        let toks = tokenize("text <table");
        assert_eq!(
            toks,
            vec![Token::Text("text ".into()), Token::Text("<table".into())]
        );
    }

    #[test]
    fn case_insensitive_names() {
        let toks = tokenize("<TABLE><TR></TR></TABLE>");
        assert_eq!(toks[0], start("table"));
        assert_eq!(toks[3], Token::End("table".into()));
    }

    #[test]
    fn decode_entities_edge_cases() {
        assert_eq!(decode_entities("no entities"), "no entities");
        assert_eq!(decode_entities("&bogus; &amp;"), "&bogus; &");
        assert_eq!(decode_entities("trailing &"), "trailing &");
        assert_eq!(decode_entities("&#999999999;"), "&#999999999;");
    }
}
