//! Data-table classification (paper §2.1).
//!
//! The `<table>` tag is mostly used for layout; only ~10% of table tags in
//! the paper's 500M-page crawl carried relational data. The paper relies on
//! heuristics (they lacked labeled data for a learned classifier); we
//! reproduce that design with documented rules. Precision matters more than
//! recall here — query-time relevance judgment filters residual noise
//! (paper §2.1: "we decided to rely on query time relevance judgments to
//! filter away non-data tables").

use crate::extract::RawTable;

/// Why a table was rejected (useful for debugging corpus extraction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// Contains form controls (search boxes, login forms, …).
    Form,
    /// Fewer than 2 rows.
    TooFewRows,
    /// Fewer than 2 columns: vertical lists are out of scope (handled by
    /// the authors' earlier list-extraction system, ref [9]).
    TooFewCols,
    /// Row widths too inconsistent — typical of layout scaffolding.
    RaggedLayout,
    /// Cells hold long prose — layout table carrying paragraphs.
    ProseCells,
    /// Looks like a calendar grid (≥6 columns of day numbers).
    Calendar,
    /// Almost all cells empty.
    Empty,
}

/// Classifies a raw table, returning the rejection reason if it is not a
/// data table.
pub fn classify(t: &RawTable) -> Result<(), Rejection> {
    if t.has_form {
        return Err(Rejection::Form);
    }
    if t.n_rows() < 2 {
        return Err(Rejection::TooFewRows);
    }
    let n_cols = t.n_cols();
    if n_cols < 2 {
        return Err(Rejection::TooFewCols);
    }
    // Row-width consistency: the modal width must cover at least half the
    // rows (±1 tolerance for trailing spans).
    let mut width_counts = std::collections::HashMap::new();
    for r in &t.rows {
        *width_counts.entry(r.cells.len()).or_insert(0usize) += 1;
    }
    let (&modal, _) = width_counts.iter().max_by_key(|(_, &c)| c).unwrap();
    let consistent = t
        .rows
        .iter()
        .filter(|r| (r.cells.len() as i64 - modal as i64).abs() <= 1)
        .count();
    if consistent * 2 < t.n_rows() {
        return Err(Rejection::RaggedLayout);
    }

    let mut n_cells = 0usize;
    let mut n_nonempty = 0usize;
    let mut n_prose = 0usize;
    let mut n_daylike = 0usize;
    for r in &t.rows {
        for c in &r.cells {
            n_cells += 1;
            let len = c.text.chars().count();
            if len > 0 {
                n_nonempty += 1;
            }
            if len > 200 {
                n_prose += 1;
            }
            if let Ok(v) = c.text.trim().parse::<u32>() {
                if (1..=31).contains(&v) {
                    n_daylike += 1;
                }
            }
        }
    }
    if n_cells == 0 || n_nonempty * 4 < n_cells {
        return Err(Rejection::Empty);
    }
    if n_prose * 10 >= n_cells * 3 {
        return Err(Rejection::ProseCells);
    }
    if n_cols >= 6 && n_daylike * 10 >= n_nonempty * 8 {
        return Err(Rejection::Calendar);
    }
    Ok(())
}

/// Convenience wrapper: true iff [`classify`] accepts the table.
pub fn is_data_table(t: &RawTable) -> bool {
    classify(t).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;
    use crate::extract::extract_raw_tables;

    fn raw(html: &str) -> RawTable {
        extract_raw_tables(&Document::parse(html)).remove(0)
    }

    #[test]
    fn accepts_plain_data_table() {
        let t = raw("<table><tr><th>Name</th><th>Area</th></tr>\
                     <tr><td>Shakespeare Hills</td><td>2236</td></tr>\
                     <tr><td>Plains Creek</td><td>880</td></tr></table>");
        assert_eq!(classify(&t), Ok(()));
    }

    #[test]
    fn rejects_form_table() {
        let t = raw("<table><tr><td><input type=text></td><td>go</td></tr>\
                     <tr><td>a</td><td>b</td></tr></table>");
        assert_eq!(classify(&t), Err(Rejection::Form));
    }

    #[test]
    fn rejects_single_row() {
        let t = raw("<table><tr><td>a</td><td>b</td></tr></table>");
        assert_eq!(classify(&t), Err(Rejection::TooFewRows));
    }

    #[test]
    fn rejects_single_column_list() {
        let t = raw("<table><tr><td>one</td></tr><tr><td>two</td></tr></table>");
        assert_eq!(classify(&t), Err(Rejection::TooFewCols));
    }

    #[test]
    fn rejects_calendar() {
        let mut html = String::from("<table>");
        html.push_str("<tr><td>Mo</td><td>Tu</td><td>We</td><td>Th</td><td>Fr</td><td>Sa</td><td>Su</td></tr>");
        for week in 0..4 {
            html.push_str("<tr>");
            for d in 1..=7 {
                html.push_str(&format!("<td>{}</td>", week * 7 + d));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        let t = raw(&html);
        assert_eq!(classify(&t), Err(Rejection::Calendar));
    }

    #[test]
    fn rejects_prose_layout() {
        let para = "lorem ipsum ".repeat(30);
        let t = raw(&format!(
            "<table><tr><td>{para}</td><td>{para}</td></tr><tr><td>{para}</td><td>{para}</td></tr></table>"
        ));
        assert_eq!(classify(&t), Err(Rejection::ProseCells));
    }

    #[test]
    fn rejects_mostly_empty() {
        let t = raw("<table><tr><td></td><td></td><td></td><td>x</td></tr>\
                     <tr><td></td><td></td><td></td><td></td></tr></table>");
        assert_eq!(classify(&t), Err(Rejection::Empty));
    }

    #[test]
    fn rejects_ragged_layout() {
        let t = raw("<table><tr><td>a</td></tr>\
                     <tr><td>a</td><td>b</td><td>c</td><td>d</td><td>e</td></tr>\
                     <tr><td>a</td><td>b</td><td>c</td><td>d</td><td>e</td><td>f</td><td>g</td><td>h</td></tr>\
                     <tr><td>x</td><td>y</td><td>z</td></tr></table>");
        assert_eq!(classify(&t), Err(Rejection::RaggedLayout));
    }

    #[test]
    fn numbers_above_31_not_calendarish() {
        let mut html = String::from("<table>");
        for r in 0..5 {
            html.push_str("<tr>");
            for c in 0..6 {
                html.push_str(&format!("<td>{}</td>", 100 + r * 6 + c));
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        assert!(is_data_table(&raw(&html)));
    }
}
