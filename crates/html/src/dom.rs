//! An arena-backed DOM tree built from the token stream.
//!
//! The builder is tolerant: unclosed elements are closed implicitly, stray
//! end tags are dropped, and the HTML auto-closing rules that matter for
//! tables (`tr`/`td`/`th`/`li`/`p`/`option`) are applied so that
//! tag-soup markup still yields a sensible tree. The context extractor
//! (paper §2.1.2) depends on accurate parent/sibling structure.

use crate::lexer::{tokenize, Token};

/// Index of a node in the [`Document`] arena.
pub type NodeId = usize;

/// One DOM node.
#[derive(Debug, Clone)]
pub enum NodeKind {
    /// The synthetic document root.
    Root,
    /// An element like `<table>`.
    Element {
        /// Lowercased tag name.
        tag: String,
        /// Attribute pairs as they appeared.
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text(String),
}

/// Node with tree links.
#[derive(Debug, Clone)]
pub struct Node {
    /// What the node is.
    pub kind: NodeKind,
    /// Parent id (the root is its own parent).
    pub parent: NodeId,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

/// Elements that implicitly close an open element of the same tag
/// (simplified HTML insertion rules sufficient for table markup).
fn auto_closes(open: &str, incoming: &str) -> bool {
    match open {
        "tr" => matches!(incoming, "tr"),
        "td" | "th" => matches!(incoming, "td" | "th" | "tr"),
        "li" => incoming == "li",
        "p" => matches!(
            incoming,
            "p" | "table" | "ul" | "ol" | "div" | "h1" | "h2" | "h3"
        ),
        "option" => incoming == "option",
        _ => false,
    }
}

/// Void elements that never contain children.
fn is_void(tag: &str) -> bool {
    matches!(
        tag,
        "br" | "hr"
            | "img"
            | "input"
            | "meta"
            | "link"
            | "area"
            | "base"
            | "col"
            | "embed"
            | "source"
            | "track"
            | "wbr"
    )
}

impl Document {
    /// Parses `html` into a DOM tree. Never fails; the worst input yields a
    /// root with text children.
    pub fn parse(html: &str) -> Self {
        let mut doc = Document {
            nodes: vec![Node {
                kind: NodeKind::Root,
                parent: 0,
                children: Vec::new(),
            }],
        };
        let mut stack: Vec<(NodeId, String)> = Vec::new(); // (node, tag)
        for tok in tokenize(html) {
            match tok {
                Token::Start {
                    name,
                    attrs,
                    self_closing,
                } => {
                    while let Some((_, open)) = stack.last() {
                        if auto_closes(open, &name) {
                            stack.pop();
                        } else {
                            break;
                        }
                    }
                    let parent = stack.last().map(|&(id, _)| id).unwrap_or(0);
                    let id = doc.push(
                        NodeKind::Element {
                            tag: name.clone(),
                            attrs,
                        },
                        parent,
                    );
                    if !self_closing && !is_void(&name) {
                        stack.push((id, name));
                    }
                }
                Token::End(name) => {
                    // Pop to the matching open tag if present; otherwise
                    // ignore the stray end tag.
                    if let Some(pos) = stack.iter().rposition(|(_, t)| *t == name) {
                        stack.truncate(pos);
                    }
                }
                Token::Text(text) => {
                    let parent = stack.last().map(|&(id, _)| id).unwrap_or(0);
                    doc.push(NodeKind::Text(text), parent);
                }
            }
        }
        doc
    }

    fn push(&mut self, kind: NodeKind, parent: NodeId) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            parent,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the document contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Tag name of an element node, or `None` for text/root.
    pub fn tag(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { tag, .. } => Some(tag),
            _ => None,
        }
    }

    /// Attribute value on an element node.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.nodes[id].kind {
            NodeKind::Element { attrs, .. } => attrs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Ids of all elements with the given tag, in document order.
    pub fn elements_by_tag(&self, tag: &str) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&id| self.tag(id) == Some(tag))
            .collect()
    }

    /// Depth of `id` (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while cur != 0 {
            cur = self.nodes[cur].parent;
            d += 1;
        }
        d
    }

    /// True iff `ancestor` is `id` or an ancestor of `id`.
    pub fn is_ancestor(&self, ancestor: NodeId, id: NodeId) -> bool {
        let mut cur = id;
        loop {
            if cur == ancestor {
                return true;
            }
            if cur == 0 {
                return false;
            }
            cur = self.nodes[cur].parent;
        }
    }

    /// Concatenated text of the subtree rooted at `id`, whitespace
    /// normalized, excluding any descendant subtrees whose root tag is in
    /// `exclude_tags`.
    pub fn text_of(&self, id: NodeId, exclude_tags: &[&str]) -> String {
        let mut out = String::new();
        self.collect_text(id, exclude_tags, &mut out, true);
        out.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    fn collect_text(&self, id: NodeId, exclude: &[&str], out: &mut String, is_root: bool) {
        match &self.nodes[id].kind {
            NodeKind::Text(t) => {
                out.push(' ');
                out.push_str(t);
            }
            NodeKind::Element { tag, .. } => {
                if !is_root && exclude.contains(&tag.as_str()) {
                    return;
                }
                for &c in &self.nodes[id].children {
                    self.collect_text(c, exclude, out, false);
                }
            }
            NodeKind::Root => {
                for &c in &self.nodes[id].children {
                    self.collect_text(c, exclude, out, false);
                }
            }
        }
    }

    /// True iff the subtree rooted at `id` contains an element with any of
    /// the given tags (the root itself not counted).
    pub fn subtree_contains(&self, id: NodeId, tags: &[&str]) -> bool {
        self.nodes[id].children.iter().any(|&c| {
            if let Some(t) = self.tag(c) {
                if tags.contains(&t) {
                    return true;
                }
            }
            self.subtree_contains(c, tags)
        })
    }

    /// All tag names on the path strictly between `id` and the root, i.e.
    /// the ancestor element tags of `id`.
    pub fn ancestor_tags(&self, id: NodeId) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = self.nodes[id].parent;
        while cur != 0 {
            if let Some(t) = self.tag(cur) {
                out.push(t);
            }
            cur = self.nodes[cur].parent;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tree_shape() {
        let d = Document::parse("<html><body><p>hi</p></body></html>");
        let ps = d.elements_by_tag("p");
        assert_eq!(ps.len(), 1);
        assert_eq!(d.text_of(ps[0], &[]), "hi");
        assert_eq!(d.depth(ps[0]), 3);
    }

    #[test]
    fn unclosed_td_and_tr_autoclose() {
        let d = Document::parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let trs = d.elements_by_tag("tr");
        assert_eq!(trs.len(), 2);
        assert_eq!(d.node(trs[0]).children.len(), 2);
        assert_eq!(d.node(trs[1]).children.len(), 1);
        let tds = d.elements_by_tag("td");
        assert_eq!(d.text_of(tds[1], &[]), "b");
    }

    #[test]
    fn stray_end_tag_ignored() {
        let d = Document::parse("</div><p>x</p>");
        assert_eq!(d.elements_by_tag("p").len(), 1);
        assert_eq!(d.elements_by_tag("div").len(), 0);
    }

    #[test]
    fn nested_tables_structure() {
        let d = Document::parse(
            "<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>",
        );
        let tables = d.elements_by_tag("table");
        assert_eq!(tables.len(), 2);
        assert!(d.is_ancestor(tables[0], tables[1]));
        assert!(!d.is_ancestor(tables[1], tables[0]));
    }

    #[test]
    fn text_of_excludes_subtrees() {
        let d = Document::parse("<div>before<table><tr><td>cell</td></tr></table>after</div>");
        let div = d.elements_by_tag("div")[0];
        assert_eq!(d.text_of(div, &["table"]), "before after");
        assert_eq!(d.text_of(div, &[]), "before cell after");
    }

    #[test]
    fn attributes_accessible() {
        let d = Document::parse(r#"<td colspan="2" class="hd">x</td>"#);
        let td = d.elements_by_tag("td")[0];
        assert_eq!(d.attr(td, "colspan"), Some("2"));
        assert_eq!(d.attr(td, "class"), Some("hd"));
        assert_eq!(d.attr(td, "missing"), None);
    }

    #[test]
    fn void_elements_do_not_nest() {
        let d = Document::parse("<p>a<br>b</p>");
        let p = d.elements_by_tag("p")[0];
        assert_eq!(d.text_of(p, &[]), "a b");
        let br = d.elements_by_tag("br")[0];
        assert!(d.node(br).children.is_empty());
    }

    #[test]
    fn subtree_contains_finds_forms() {
        let d = Document::parse("<table><tr><td><form><input></form></td></tr></table>");
        let t = d.elements_by_tag("table")[0];
        assert!(d.subtree_contains(t, &["form"]));
        assert!(d.subtree_contains(t, &["input"]));
        assert!(!d.subtree_contains(t, &["select"]));
    }

    #[test]
    fn ancestor_tags_order() {
        let d = Document::parse("<div><b><i>x</i></b></div>");
        let i = d.elements_by_tag("i")[0];
        let texts = d.node(i).children.clone();
        assert_eq!(d.ancestor_tags(texts[0]), vec!["i", "b", "div"]);
    }

    #[test]
    fn empty_doc() {
        let d = Document::parse("");
        assert!(d.is_empty());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn p_autocloses_before_table() {
        let d = Document::parse("<p>intro<table><tr><td>x</td></tr></table>");
        let table = d.elements_by_tag("table")[0];
        // The table must be a sibling of the paragraph, not its child.
        let p = d.elements_by_tag("p")[0];
        assert!(!d.is_ancestor(p, table));
    }
}
