//! Header extraction (paper §2.1.1).
//!
//! Only 20% of web tables use the `<th>` tag; the rest mark headers with
//! formatting, layout or content differences. The paper's heuristic, which
//! we reproduce:
//!
//! > The rows of a table are assumed to consist of zero or more title rows,
//! > followed by zero or more header rows, followed by body rows. We scan
//! > rows sequentially from the top as long as we find rows different from
//! > most of the rows below it in terms of formatting (bold, italics,
//! > underline, capitalization, code, header tags), layout (background
//! > color, CSS classes) or content (textual header with numeric body,
//! > number of characters). A 'different' row is labeled a title if all but
//! > the first column is empty*. Else we label the row a header. Subsequent
//! > rows stay headers while similar to the first header row and different
//! > from the rows below. We stop as soon as a row fails the test.
//!
//! *The paper's text reads "non-empty", but its own Figure 1 (Table 3's
//! title "Forest reserves" occupying a single spanned cell) and the usual
//! shape of title rows imply "empty"; we treat this as an erratum and use
//! "all but the first column empty". See DESIGN.md.

use crate::extract::{RawCell, RawRow, RawTable};

/// Maximum number of header rows we will peel off (the paper reports 5% of
/// tables with more than two; beyond four is noise).
const MAX_HEADER_ROWS: usize = 4;

/// Threshold on the weighted signature distance above which a row is
/// "different from the rows below".
const DIFFERENT_THRESHOLD: f64 = 0.55;

/// Threshold under which two header-candidate rows count as "similar".
const SIMILAR_THRESHOLD: f64 = 0.75;

/// Result of splitting a raw table into title / header / body rows.
#[derive(Debug, Clone)]
pub struct HeaderSplit {
    /// Concatenated text of title rows and the `<caption>`, if any.
    pub title: Option<String>,
    /// Header rows, top to bottom.
    pub header_rows: Vec<Vec<RawCell>>,
    /// Body rows.
    pub body_rows: Vec<Vec<RawCell>>,
}

/// Per-row feature signature used for the "different from rows below" test.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct RowSig {
    th: f64,
    bold: f64,
    italic: f64,
    underline: f64,
    code: f64,
    bg: f64,
    class: f64,
    numeric: f64,
    caps: f64,
    len: f64,
}

impl RowSig {
    fn of(row: &RawRow) -> RowSig {
        let n = row.cells.len().max(1) as f64;
        let frac = |pred: fn(&RawCell) -> bool| -> f64 {
            row.cells.iter().filter(|c| pred(c)).count() as f64 / n
        };
        let nonempty: Vec<&RawCell> = row.cells.iter().filter(|c| !c.text.is_empty()).collect();
        let ne = nonempty.len().max(1) as f64;
        RowSig {
            th: frac(|c| c.is_th),
            bold: frac(|c| c.bold),
            italic: frac(|c| c.italic),
            underline: frac(|c| c.underline),
            code: frac(|c| c.code),
            bg: frac(|c| c.has_bg),
            class: frac(|c| c.has_class),
            numeric: nonempty.iter().filter(|c| is_numericish(&c.text)).count() as f64 / ne,
            caps: nonempty
                .iter()
                .filter(|c| starts_capitalized(&c.text))
                .count() as f64
                / ne,
            len: nonempty
                .iter()
                .map(|c| (c.text.chars().count() as f64).min(40.0) / 40.0)
                .sum::<f64>()
                / ne,
        }
    }

    fn mean(sigs: &[RowSig]) -> RowSig {
        let n = sigs.len().max(1) as f64;
        let mut m = RowSig::default();
        for s in sigs {
            m.th += s.th;
            m.bold += s.bold;
            m.italic += s.italic;
            m.underline += s.underline;
            m.code += s.code;
            m.bg += s.bg;
            m.class += s.class;
            m.numeric += s.numeric;
            m.caps += s.caps;
            m.len += s.len;
        }
        m.th /= n;
        m.bold /= n;
        m.italic /= n;
        m.underline /= n;
        m.code /= n;
        m.bg /= n;
        m.class /= n;
        m.numeric /= n;
        m.caps /= n;
        m.len /= n;
        m
    }

    /// Weighted L1 distance. The `<th>` tag and the textual-header /
    /// numeric-body contrast are the strongest cues (paper lists them
    /// first); capitalization and raw length are weak cues.
    fn distance(&self, other: &RowSig) -> f64 {
        3.0 * (self.th - other.th).abs()
            + 1.5 * (self.bold - other.bold).abs()
            + 1.0 * (self.italic - other.italic).abs()
            + 1.0 * (self.underline - other.underline).abs()
            + 1.0 * (self.code - other.code).abs()
            + 1.0 * (self.bg - other.bg).abs()
            + 0.5 * (self.class - other.class).abs()
            + 2.0 * (self.numeric - other.numeric).abs()
            + 0.4 * (self.caps - other.caps).abs()
            + 0.6 * (self.len - other.len).abs()
    }
}

/// True for strings that read as numbers/measurements ("2,236", "$1.5",
/// "42%", "1975").
pub fn is_numericish(s: &str) -> bool {
    let s = s.trim();
    if s.is_empty() {
        return false;
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    let allowed = s
        .chars()
        .filter(|c| c.is_ascii_digit() || " .,%-+$€£#()/:".contains(*c))
        .count();
    digits > 0 && allowed == s.chars().count() && digits * 2 >= s.chars().count()
}

fn starts_capitalized(s: &str) -> bool {
    s.chars().next().map(char::is_uppercase).unwrap_or(false)
}

/// True iff the row is shaped like a title: the first cell has text and
/// every other cell is empty (typically a colspan-expanded single cell).
fn is_title_shaped(row: &RawRow) -> bool {
    row.cells.len() >= 2
        && !row.cells[0].text.is_empty()
        && row.cells[1..].iter().all(|c| c.text.is_empty())
}

/// Splits the rows of `t` into title / header / body per §2.1.1.
pub fn split_rows(t: &RawTable) -> HeaderSplit {
    let sigs: Vec<RowSig> = t.rows.iter().map(RowSig::of).collect();
    let n = t.rows.len();
    let mut title_parts: Vec<String> = Vec::new();
    if let Some(c) = &t.caption {
        title_parts.push(c.clone());
    }
    let mut header_rows: Vec<Vec<RawCell>> = Vec::new();
    let mut i = 0;
    let mut first_header_sig: Option<RowSig> = None;

    while i < n {
        // Keep at least one body row.
        if i + 1 >= n {
            break;
        }
        let below = RowSig::mean(&sigs[i + 1..]);
        let is_different = sigs[i].distance(&below) > DIFFERENT_THRESHOLD
            // A row of <th> cells is a header regardless of the threshold:
            // it is the designated markup.
            || sigs[i].th >= 0.5;
        if !is_different {
            break;
        }
        if is_title_shaped(&t.rows[i]) && header_rows.is_empty() {
            title_parts.push(t.rows[i].cells[0].text.clone());
            i += 1;
            continue;
        }
        match &first_header_sig {
            None => first_header_sig = Some(sigs[i]),
            Some(first) => {
                if sigs[i].distance(first) > SIMILAR_THRESHOLD
                    || header_rows.len() >= MAX_HEADER_ROWS
                {
                    break;
                }
            }
        }
        header_rows.push(t.rows[i].cells.clone());
        i += 1;
    }

    let body_rows: Vec<Vec<RawCell>> = t.rows[i..].iter().map(|r| r.cells.clone()).collect();
    let title = if title_parts.is_empty() {
        None
    } else {
        Some(title_parts.join(" "))
    };
    HeaderSplit {
        title,
        header_rows,
        body_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;
    use crate::extract::extract_raw_tables;

    fn split(html: &str) -> HeaderSplit {
        let t = extract_raw_tables(&Document::parse(html)).remove(0);
        split_rows(&t)
    }

    #[test]
    fn th_row_is_header() {
        let s = split(
            "<table><tr><th>Name</th><th>Area</th></tr>\
             <tr><td>Shakespeare Hills</td><td>2236</td></tr>\
             <tr><td>Plains Creek</td><td>880</td></tr></table>",
        );
        assert_eq!(s.header_rows.len(), 1);
        assert_eq!(s.header_rows[0][0].text, "Name");
        assert_eq!(s.body_rows.len(), 2);
        assert!(s.title.is_none());
    }

    #[test]
    fn bold_text_header_over_numeric_body() {
        let s = split(
            "<table><tr><td><b>City</b></td><td><b>Population</b></td></tr>\
             <tr><td>Mumbai</td><td>20411000</td></tr>\
             <tr><td>Delhi</td><td>16787941</td></tr>\
             <tr><td>Bangalore</td><td>8443675</td></tr></table>",
        );
        assert_eq!(s.header_rows.len(), 1, "bold row must be header");
        assert_eq!(s.body_rows.len(), 3);
    }

    #[test]
    fn headerless_table_detected() {
        let s = split(
            "<table><tr><td>Mumbai</td><td>20411000</td></tr>\
             <tr><td>Delhi</td><td>16787941</td></tr>\
             <tr><td>Bangalore</td><td>8443675</td></tr></table>",
        );
        assert!(s.header_rows.is_empty());
        assert_eq!(s.body_rows.len(), 3);
    }

    #[test]
    fn title_row_peeled_before_headers() {
        let s = split(
            "<table><tr><td colspan=3><b>Forest reserves</b></td></tr>\
             <tr><th>ID</th><th>Name</th><th>Area</th></tr>\
             <tr><td>7</td><td>Shakespeare Hills</td><td>2236</td></tr>\
             <tr><td>9</td><td>Plains Creek</td><td>880</td></tr></table>",
        );
        assert_eq!(s.title.as_deref(), Some("Forest reserves"));
        assert_eq!(s.header_rows.len(), 1);
        assert_eq!(s.header_rows[0][1].text, "Name");
        assert_eq!(s.body_rows.len(), 2);
    }

    #[test]
    fn two_header_rows_split_phrase() {
        // "Main areas" / "explored" split header, as in Figure 1 Table 1.
        let s = split(
            "<table><tr><th>Name</th><th>Nationality</th><th>Main areas</th></tr>\
             <tr><th></th><th></th><th>explored</th></tr>\
             <tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>\
             <tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route to India</td></tr></table>",
        );
        assert_eq!(s.header_rows.len(), 2);
        assert_eq!(s.header_rows[1][2].text, "explored");
        assert_eq!(s.body_rows.len(), 2);
    }

    #[test]
    fn caption_becomes_title() {
        let s = split(
            "<table><caption>Other Formal Reserves</caption>\
             <tr><th>ID</th><th>Name</th></tr>\
             <tr><td>7</td><td>Hills</td></tr></table>",
        );
        assert_eq!(s.title.as_deref(), Some("Other Formal Reserves"));
    }

    #[test]
    fn at_least_one_body_row_kept() {
        // Two rows, both th: second must stay body.
        let s = split("<table><tr><th>A</th><th>B</th></tr><tr><th>C</th><th>D</th></tr></table>");
        assert_eq!(s.header_rows.len(), 1);
        assert_eq!(s.body_rows.len(), 1);
    }

    #[test]
    fn numericish_detector() {
        for good in ["2236", "2,236", "$1.5", "42%", "1975", "12/31", "(880)"] {
            assert!(is_numericish(good), "{good}");
        }
        for bad in ["Mumbai", "", "Route 66 is long", "B12 vitamin", "-"] {
            assert!(!is_numericish(bad), "{bad}");
        }
    }

    #[test]
    fn header_rows_capped() {
        let mut html = String::from("<table>");
        for i in 0..8 {
            html.push_str(&format!("<tr><th>h{i}a</th><th>h{i}b</th></tr>"));
        }
        for i in 0..4 {
            html.push_str(&format!("<tr><td>v{i}</td><td>{i}</td></tr>"));
        }
        html.push_str("</table>");
        let s = split(&html);
        assert!(s.header_rows.len() <= MAX_HEADER_ROWS);
        assert!(s.body_rows.len() >= 4);
    }
}
