//! Context extraction (paper §2.1.2).
//!
//! The *context* of a table is the text in its parent document that says
//! what the table is about. The paper's policy, which we follow, is to be
//! generous about inclusion and attach a score to each snippet instead:
//!
//! * candidate snippets are the text (or element) siblings of every node on
//!   the path from the table node `T` to the document root;
//! * the score combines (1) the tree edge-distance between the snippet and
//!   `T` plus whether the snippet sits to the left (before) or right
//!   (after) of the path, and (2) the relative frequency in the document of
//!   the formatting tags wrapping the snippet — a heading tag that is rare
//!   in the page marks its text as more salient.

use crate::dom::{Document, NodeId, NodeKind};
use wwt_model::ContextSnippet;

/// Formatting tags whose (relative) rarity boosts a snippet's score.
const FORMAT_TAGS: &[&str] = &[
    "h1", "h2", "h3", "h4", "h5", "h6", "b", "strong", "i", "em", "u", "caption", "title",
];

/// Maximum snippets attached to one table.
const MAX_SNIPPETS: usize = 8;

/// Maximum characters kept per snippet (long prose is truncated — the
/// score, not the length, carries the signal).
const MAX_SNIPPET_CHARS: usize = 400;

/// Extracts scored context snippets for the table rooted at `table_node`.
pub fn extract_context(doc: &Document, table_node: NodeId) -> Vec<ContextSnippet> {
    let mut snippets: Vec<ContextSnippet> = Vec::new();
    let format_freq = format_tag_frequencies(doc);

    // The page <title> is always context (highest-level description).
    for &tid in &doc.elements_by_tag("title") {
        let text = doc.text_of(tid, &[]);
        if !text.is_empty() {
            snippets.push(ContextSnippet::new(truncate(&text), 0.9));
        }
    }

    // Walk the path from the table to the root; examine siblings.
    let table_depth = doc.depth(table_node);
    let mut path_child = table_node;
    let mut parent = doc.node(table_node).parent;
    loop {
        let siblings = &doc.node(parent).children;
        let child_pos = siblings.iter().position(|&c| c == path_child).unwrap_or(0);
        for (pos, &sib) in siblings.iter().enumerate() {
            if sib == path_child {
                continue;
            }
            // Skip siblings that are themselves tables (their text is their
            // own content, not our description) and script/style noise.
            if matches!(doc.tag(sib), Some("table") | Some("script") | Some("style")) {
                continue;
            }
            let text = match &doc.node(sib).kind {
                NodeKind::Text(t) => t.trim().to_string(),
                NodeKind::Element { .. } => doc.text_of(sib, &["table"]),
                NodeKind::Root => String::new(),
            };
            if text.split_whitespace().count() < 2 {
                continue; // single tokens are rarely descriptive
            }
            // Edge distance between snippet and table: up from T to the
            // common ancestor (`parent`), then one step down to the sibling.
            let dist = (table_depth - doc.depth(parent)) + 1;
            let is_left = pos < child_pos;
            let mut score = distance_score(dist, is_left);
            score *= format_bonus(doc, sib, &format_freq);
            snippets.push(ContextSnippet::new(truncate(&text), score.min(1.0)));
        }
        if parent == doc.root() {
            break;
        }
        path_child = parent;
        parent = doc.node(parent).parent;
    }

    // Highest scores first; deduplicate identical text, keep the cap.
    snippets.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut seen: Vec<String> = Vec::new();
    snippets.retain(|s| {
        if seen.contains(&s.text) {
            false
        } else {
            seen.push(s.text.clone());
            true
        }
    });
    snippets.truncate(MAX_SNIPPETS);
    snippets
}

/// Base score from tree distance and side. Text *before* the table (left
/// sibling) introduces it and outranks text after it at equal distance.
fn distance_score(dist: usize, is_left: bool) -> f64 {
    let side = if is_left { 1.0 } else { 0.7 };
    side / (1.0 + 0.35 * (dist.saturating_sub(1)) as f64)
}

/// Counts how often each formatting tag occurs in the document.
fn format_tag_frequencies(doc: &Document) -> Vec<(String, usize)> {
    FORMAT_TAGS
        .iter()
        .map(|&t| (t.to_string(), doc.elements_by_tag(t).len()))
        .filter(|(_, n)| *n > 0)
        .collect()
}

/// Bonus for snippets wrapped in formatting tags: a tag that appears rarely
/// in the document marks its contents as salient (paper: "the relative
/// frequency in d of the format tags attached with x").
fn format_bonus(doc: &Document, node: NodeId, freq: &[(String, usize)]) -> f64 {
    let total: usize = freq.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 1.0;
    }
    let mut tags: Vec<&str> = doc.ancestor_tags(node);
    if let Some(t) = doc.tag(node) {
        tags.push(t);
    }
    let mut bonus = 1.0;
    for (tag, n) in freq {
        if tags.contains(&tag.as_str()) {
            let rel = *n as f64 / total as f64;
            bonus *= 1.0 + 0.5 * (1.0 - rel);
        }
    }
    bonus
}

fn truncate(s: &str) -> String {
    if s.chars().count() <= MAX_SNIPPET_CHARS {
        s.to_string()
    } else {
        s.chars().take(MAX_SNIPPET_CHARS).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(html: &str) -> Vec<ContextSnippet> {
        let doc = Document::parse(html);
        let t = doc.elements_by_tag("table")[0];
        extract_context(&doc, t)
    }

    #[test]
    fn heading_before_table_scores_high() {
        let snips = ctx("<html><body><h2>List of explorers</h2>\
             <table><tr><td>a</td><td>b</td></tr></table>\
             <p>unrelated footer text far away</p></body></html>");
        let heading = snips.iter().find(|s| s.text.contains("explorers")).unwrap();
        let footer = snips.iter().find(|s| s.text.contains("footer")).unwrap();
        assert!(
            heading.score > footer.score,
            "heading {} vs footer {}",
            heading.score,
            footer.score
        );
    }

    #[test]
    fn page_title_included() {
        let snips = ctx(
            "<html><head><title>Forest Reserves under the Forestry Act</title></head>\
             <body><table><tr><td>a</td><td>b</td></tr></table></body></html>",
        );
        assert!(snips.iter().any(|s| s.text.contains("Forestry Act")));
    }

    #[test]
    fn left_siblings_beat_right_at_same_distance() {
        let snips = ctx("<body><p>text before the table</p>\
             <table><tr><td>a</td></tr></table>\
             <p>text after the table</p></body>");
        let before = snips.iter().find(|s| s.text.contains("before")).unwrap();
        let after = snips.iter().find(|s| s.text.contains("after")).unwrap();
        assert!(before.score > after.score);
    }

    #[test]
    fn distant_ancestors_score_lower() {
        let snips = ctx("<body><p>far away description of page</p>\
             <div><div><p>immediately near the table</p>\
             <table><tr><td>a</td></tr></table></div></div></body>");
        let near = snips.iter().find(|s| s.text.contains("near the")).unwrap();
        let far = snips.iter().find(|s| s.text.contains("far away")).unwrap();
        assert!(near.score > far.score);
    }

    #[test]
    fn sibling_tables_excluded() {
        let snips = ctx(
            "<body><table><tr><td>first table cell content here</td></tr></table>\
             <table><tr><td>a</td></tr></table></body>",
        );
        assert!(snips.iter().all(|s| !s.text.contains("first table")));
    }

    #[test]
    fn single_token_siblings_skipped() {
        let snips = ctx("<body><p>x</p><table><tr><td>a</td></tr></table></body>");
        assert!(snips.iter().all(|s| s.text != "x"));
    }

    #[test]
    fn snippet_cap_respected() {
        let mut html = String::from("<body>");
        for i in 0..30 {
            html.push_str(&format!("<p>descriptive paragraph number {i}</p>"));
        }
        html.push_str("<table><tr><td>a</td></tr></table></body>");
        let snips = ctx(&html);
        assert!(snips.len() <= MAX_SNIPPETS);
    }

    #[test]
    fn scores_within_unit_interval() {
        let snips = ctx("<body><h1>Big heading near table</h1>\
             <table><tr><td>a</td></tr></table></body>");
        for s in &snips {
            assert!(s.score > 0.0 && s.score <= 1.0, "score {}", s.score);
        }
    }
}
