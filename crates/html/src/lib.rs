//! # wwt-html
//!
//! HTML substrate for WWT (paper §2.1): a small, robust HTML parser plus
//! the three extraction stages that turn a crawled page into [`WebTable`]s:
//!
//! 1. **Table extraction** ([`extract`]) — everything inside `<table>` tags,
//!    with colspan expansion and per-cell formatting flags;
//! 2. **Data-table classification** ([`classify`]) — heuristics that reject
//!    layout tables, forms, calendars and lists (the paper keeps ~10% of
//!    table tags);
//! 3. **Header extraction** ([`headers`], §2.1.1) and **context
//!    extraction** ([`context`], §2.1.2).
//!
//! The parser ([`lexer`] + [`dom`]) is intentionally forgiving: real web
//! pages contain unclosed tags, stray end tags and unquoted attributes, and
//! the corpus generator produces some of those deliberately.
//!
//! Entry point: [`extract_tables`] parses a document and returns fully
//! assembled [`WebTable`]s.
//!
//! [`WebTable`]: wwt_model::WebTable

pub mod classify;
pub mod context;
pub mod dom;
pub mod extract;
pub mod headers;
pub mod lexer;

use wwt_model::{TableId, WebTable};

/// Parses `html` and returns all *data* tables found in the document,
/// with headers, title and context attached. Table ids are assigned
/// sequentially starting from `first_id`.
///
/// This is the offline pipeline of paper §2.1 for a single page.
pub fn extract_tables(html: &str, url: &str, first_id: u32) -> Vec<WebTable> {
    let doc = dom::Document::parse(html);
    let raw_tables = extract::extract_raw_tables(&doc);
    let mut out = Vec::new();
    let mut next = first_id;
    for raw in &raw_tables {
        if !classify::is_data_table(raw) {
            continue;
        }
        let split = headers::split_rows(raw);
        let snippets = context::extract_context(&doc, raw.node);
        let headers: Vec<Vec<String>> = split
            .header_rows
            .iter()
            .map(|r| r.iter().map(|c| c.text.clone()).collect())
            .collect();
        let rows: Vec<Vec<String>> = split
            .body_rows
            .iter()
            .map(|r| r.iter().map(|c| c.text.clone()).collect())
            .collect();
        if let Some(t) = WebTable::new(TableId(next), url, split.title, headers, rows, snippets) {
            // A data table must keep at least one body row after header
            // splitting.
            if t.n_rows() > 0 {
                out.push(t);
                next += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: &str = r#"
      <html><head><title>List of explorers - Wikipedia</title></head>
      <body>
        <h1>List of explorers</h1>
        <p>This article lists the explorations in history.</p>
        <table>
          <tr><th>Name</th><th>Nationality</th><th>Main areas explored</th></tr>
          <tr><td>Abel Tasman</td><td>Dutch</td><td>Oceania</td></tr>
          <tr><td>Vasco da Gama</td><td>Portuguese</td><td>Sea route to India</td></tr>
        </table>
        <table><tr><td><form><input type="text"></form></td></tr></table>
      </body></html>"#;

    #[test]
    fn end_to_end_extraction() {
        let tables = extract_tables(PAGE, "http://x", 0);
        assert_eq!(tables.len(), 1, "form table must be rejected");
        let t = &tables[0];
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_header_rows(), 1);
        assert_eq!(t.header(0, 1), "Nationality");
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.cell(1, 2), "Sea route to India");
        let ctx = t.all_context_text();
        assert!(ctx.contains("explorations in history"), "ctx = {ctx}");
    }

    #[test]
    fn ids_assigned_sequentially() {
        let page = "<table><tr><th>A</th><th>B</th></tr><tr><td>1</td><td>2</td></tr><tr><td>5</td><td>6</td></tr></table>\
                    <table><tr><th>C</th><th>D</th></tr><tr><td>3</td><td>4</td></tr><tr><td>7</td><td>8</td></tr></table>";
        let tables = extract_tables(page, "u", 10);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].id, TableId(10));
        assert_eq!(tables[1].id, TableId(11));
    }

    #[test]
    fn empty_document() {
        assert!(extract_tables("", "u", 0).is_empty());
        assert!(extract_tables("<p>no tables here</p>", "u", 0).is_empty());
    }
}
