//! Criterion microbench: HTTP serving-layer throughput — the full
//! socket round trip through `wwt-server`, cached vs uncached, serial vs
//! a multi-connection load-generator sweep. Compare against
//! `service_throughput` to see what the network boundary itself costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, Engine, WwtConfig};
use wwt_json::Json;
use wwt_server::{run_load, serve, HttpClient, ServerConfig, ServerHandle};
use wwt_service::{ServiceConfig, TableSearchService};

const CONNECTIONS: usize = 8;
const REQUESTS_PER_CONNECTION: usize = 16;

fn start(engine: &Arc<Engine>, cache: bool) -> ServerHandle {
    let config = ServiceConfig {
        cache_capacity: if cache { 1024 } else { 0 },
        ..ServiceConfig::default()
    };
    let service = Arc::new(TableSearchService::with_config(Arc::clone(engine), config));
    serve(service, ServerConfig::default()).expect("bind ephemeral port")
}

fn bench_server(c: &mut Criterion) {
    let specs: Vec<_> = workload().into_iter().take(8).collect();
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: 7,
        scale: 0.15,
        distractors: 60,
    })
    .generate_for(&specs);
    let engine = Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine);
    // Bodies go through the shared codec so any query text stays
    // correctly escaped.
    let bodies: Vec<String> = specs
        .iter()
        .map(|s| Json::obj([("query", Json::from(s.query.to_string()))]).encode())
        .collect();

    let mut group = c.benchmark_group("server_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(bodies.len() as u64));

    // Hot path: one keep-alive connection sweeping warm queries; steady
    // state is cache lookup + HTTP framing. `post_reconnecting` rides
    // over the server's keep-alive rotation at its per-connection cap.
    let cached = start(&engine, true);
    let mut client = HttpClient::connect(cached.addr()).unwrap();
    for body in &bodies {
        assert_eq!(client.post("/query", body).unwrap().status, 200);
    }
    group.bench_function("http_cached_serial", |b| {
        b.iter(|| {
            for body in &bodies {
                let resp = client
                    .post_reconnecting(cached.addr(), "/query", body)
                    .unwrap();
                assert_eq!(resp.status, 200);
            }
        })
    });
    drop(client);
    cached.shutdown();

    // Cold path: every request runs the full pipeline behind the socket.
    let uncached = start(&engine, false);
    let mut client = HttpClient::connect(uncached.addr()).unwrap();
    group.bench_function("http_uncached_serial", |b| {
        b.iter(|| {
            for body in &bodies {
                let resp = client
                    .post_reconnecting(uncached.addr(), "/query", body)
                    .unwrap();
                assert_eq!(resp.status, 200);
            }
        })
    });
    drop(client);
    uncached.shutdown();

    // Load generator: many warm connections at once; reported per sweep
    // of `bodies`, so elem/s stays comparable to the serial runs.
    let loaded = start(&engine, true);
    group.bench_function("http_cached_load_8conn", |b| {
        b.iter(|| {
            let report = run_load(loaded.addr(), &bodies, CONNECTIONS, REQUESTS_PER_CONNECTION);
            assert_eq!(report.errors, 0, "{report:?}");
            report
        })
    });
    let report = run_load(loaded.addr(), &bodies, CONNECTIONS, REQUESTS_PER_CONNECTION);
    println!(
        "load report: {} ok, p50 {:?}, p99 {:?}, max {:?}, {:.0} req/s",
        report.ok,
        report.p50,
        report.p99,
        report.max,
        report.throughput()
    );
    loaded.shutdown();

    // Hot-swap path: the same load while a background thread keeps
    // swapping engine snapshots in. Every swap bumps the generation, so
    // cached entries are continually invalidated — this is the worst
    // case for reload, and the interesting numbers are the error count
    // (must stay 0: zero-downtime) and how far p99 moves vs the
    // steady-state run above.
    let reloading = start(&engine, true);
    let service = std::sync::Arc::clone(reloading.service());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let swapper = {
        let service = Arc::clone(&service);
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                service.reload(Arc::clone(&engine));
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        })
    };
    group.bench_function("http_cached_load_8conn_during_reload", |b| {
        b.iter(|| {
            let report = run_load(
                reloading.addr(),
                &bodies,
                CONNECTIONS,
                REQUESTS_PER_CONNECTION,
            );
            assert_eq!(report.errors, 0, "5xx under concurrent swaps: {report:?}");
            report
        })
    });
    let report = run_load(
        reloading.addr(),
        &bodies,
        CONNECTIONS,
        REQUESTS_PER_CONNECTION,
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    swapper.join().unwrap();
    println!(
        "reload-churn report: {} ok, p50 {:?}, p99 {:?}, max {:?}, {:.0} req/s \
         ({} swaps during the run)",
        report.ok,
        report.p50,
        report.p99,
        report.max,
        report.throughput(),
        service.stats().swap_count,
    );
    reloading.shutdown();

    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
