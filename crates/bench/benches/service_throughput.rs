//! Criterion microbench: serving-layer throughput — cached vs uncached vs
//! batched query answering through `TableSearchService`, anchoring future
//! serving-performance PRs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, QueryRequest, WwtConfig};
use wwt_service::{ServiceConfig, TableSearchService};

fn bench_service(c: &mut Criterion) {
    let specs: Vec<_> = workload().into_iter().take(8).collect();
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: 7,
        scale: 0.15,
        distractors: 60,
    })
    .generate_for(&specs);
    let engine = Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine);
    let requests: Vec<QueryRequest> = specs
        .iter()
        .map(|s| QueryRequest::new(s.query.clone()))
        .collect();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(requests.len() as u64));

    // Cold path: every request runs the full pipeline (cache disabled).
    let uncached = TableSearchService::with_config(
        Arc::clone(&engine),
        ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    group.bench_function("uncached_serial", |b| {
        b.iter(|| {
            for req in &requests {
                uncached.answer(req).unwrap();
            }
        })
    });

    // Hot path: the working set fits the cache, so steady state is pure
    // lookup.
    let cached = TableSearchService::new(Arc::clone(&engine));
    for req in &requests {
        cached.answer(req).unwrap(); // warm the cache
    }
    group.bench_function("cached_serial", |b| {
        b.iter(|| {
            for req in &requests {
                cached.answer(req).unwrap();
            }
        })
    });

    // Fan-out: the same cold requests spread over the scoped worker pool.
    let batched = TableSearchService::with_config(
        Arc::clone(&engine),
        ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        },
    );
    group.bench_function("uncached_batched", |b| {
        b.iter(|| batched.answer_batch(&requests))
    });

    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
