//! Criterion microbench for the interned query path: index build time,
//! ranked top-k probe latency, and cold end-to-end query latency — the
//! three quantities `wwt-bench perf` tracks in `BENCH_query_path.json`.
//! The regression contract: probe/cold latency rides the interning win;
//! index build stays within noise of the pre-interning builder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, WwtConfig};
use wwt_html::extract_tables;
use wwt_index::IndexBuilder;
use wwt_model::WebTable;
use wwt_text::tokenize;

fn bench_query_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_path");
    group.sample_size(10);
    let scale = 0.15f64;
    let specs = workload();
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: 7,
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);

    // Extraction is not under test: materialize the tables once.
    let mut tables: Vec<WebTable> = Vec::new();
    let mut next_id = 0u32;
    for doc in &corpus.documents {
        let extracted = extract_tables(&doc.html, &doc.url, next_id);
        next_id += extracted.len() as u32;
        tables.extend(extracted);
    }

    group.bench_with_input(
        BenchmarkId::new("index_build", format!("scale_{scale}")),
        &tables,
        |b, tables| {
            b.iter(|| {
                let mut builder = IndexBuilder::new();
                for t in tables {
                    builder.add_table(t);
                }
                builder.build()
            })
        },
    );

    let bound = bind_corpus(&corpus, WwtConfig::default());
    let tokens = tokenize("country currency exchange rate");
    group.bench_with_input(
        BenchmarkId::new("probe_top60", format!("scale_{scale}")),
        &bound,
        |b, bound| b.iter(|| bound.engine.index().search(&tokens, 60)),
    );

    let query = specs[14].query.clone(); // country | currency
    group.bench_with_input(
        BenchmarkId::new("cold_answer", format!("scale_{scale}")),
        &bound,
        |b, bound| b.iter(|| bound.engine.answer_query(&query)),
    );
    group.finish();
}

criterion_group!(benches, bench_query_path);
criterion_main!(benches);
