//! Criterion microbench: relative running time of the collective
//! inference algorithms (§5.3 — the paper reports table-centric fastest,
//! α-expansion ~5×, BP ~6×, TRWS ~30× slower).

use criterion::{criterion_group, criterion_main, Criterion};
use wwt_core::colsim::ColumnEdge;
use wwt_core::inference::{edge_centric, table_centric, EdgeCentricAlgorithm};
use wwt_core::potentials::NodePotentials;
use wwt_core::MapperConfig;

/// A synthetic candidate set: `n_tables` tables of 3 columns each, q = 3,
/// mixed strong/weak potentials, chain content edges.
fn instance(n_tables: usize) -> (Vec<NodePotentials>, Vec<ColumnEdge>, Vec<usize>) {
    let q = 3;
    let mut pots = Vec::new();
    let mut state = 99u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for t in 0..n_tables {
        let strong = t % 3 != 0;
        let theta: Vec<Vec<f64>> = (0..3)
            .map(|c| {
                let mut row: Vec<f64> = (0..q)
                    .map(|l| {
                        if strong && l == c {
                            1.0 + next()
                        } else {
                            -0.3 + 0.3 * next()
                        }
                    })
                    .collect();
                row.push(0.0); // na
                row.push(0.3 + 0.2 * next()); // nr
                row
            })
            .collect();
        pots.push(NodePotentials {
            q,
            theta,
            relevance: 0.0,
        });
    }
    let mut edges = Vec::new();
    for t in 1..n_tables {
        for c in 0..3 {
            edges.push(ColumnEdge {
                a: (t - 1, c),
                b: (t, c),
                sim: 0.6,
                nsim_ab: 0.4,
                nsim_ba: 0.4,
            });
        }
    }
    let m_eff = vec![2usize; n_tables];
    (pots, edges, m_eff)
}

fn bench_inference(c: &mut Criterion) {
    let cfg = MapperConfig::default();
    let (pots, edges, m_eff) = instance(24);
    let mut group = c.benchmark_group("inference");
    group.sample_size(10);
    group.bench_function("table_centric", |b| {
        b.iter(|| table_centric(&pots, &edges, &m_eff, &cfg))
    });
    group.bench_function("alpha_expansion", |b| {
        b.iter(|| {
            edge_centric(
                &pots,
                &edges,
                &m_eff,
                &cfg,
                EdgeCentricAlgorithm::AlphaExpansion,
            )
        })
    });
    group.bench_function("belief_propagation", |b| {
        b.iter(|| {
            edge_centric(
                &pots,
                &edges,
                &m_eff,
                &cfg,
                EdgeCentricAlgorithm::BeliefPropagation,
            )
        })
    });
    group.bench_function("trws", |b| {
        b.iter(|| edge_centric(&pots, &edges, &m_eff, &cfg, EdgeCentricAlgorithm::Trws))
    });
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
