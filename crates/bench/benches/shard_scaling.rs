//! Criterion microbench: cold-query latency as the index shard count
//! grows (1 → 8). The engine's two index probes scatter across shards on
//! the pool, so on a multicore machine latency should *drop* from 1 to
//! `min(cores, 8)` shards while answers stay byte-identical (proven by
//! `tests/shard_equivalence.rs`; this bench measures the other half of
//! the bargain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus_sharded, QueryRequest, WwtConfig};

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    let specs = workload();
    // Big enough that the probes dominate and the parallel scatter path
    // engages (it falls back to serial under ~4k docs by design).
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: 7,
        scale: 0.5,
        distractors: 400,
    })
    .generate_for(&specs);
    let requests: Vec<QueryRequest> = ["country | currency", "dog breed", "states of india | gdp"]
        .iter()
        .filter_map(|s| QueryRequest::parse(s).ok())
        .collect();
    for shards in [1usize, 2, 4, 8] {
        let bound = bind_corpus_sharded(&corpus, WwtConfig::default(), Some(shards));
        assert_eq!(bound.engine.n_shards(), shards);
        group.bench_with_input(
            BenchmarkId::new("cold_query", format!("{shards}_shards")),
            &bound,
            |b, bound| {
                let mut i = 0usize;
                b.iter(|| {
                    let request = &requests[i % requests.len()];
                    i += 1;
                    bound
                        .engine
                        .answer(request)
                        .expect("bench requests are valid")
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("retrieve_only", format!("{shards}_shards")),
            &bound,
            |b, bound| {
                let q = &requests[0].query;
                b.iter(|| bound.engine.retrieve(q));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
