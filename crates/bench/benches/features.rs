//! Criterion microbench: node-feature cost — segmented vs unsegmented
//! similarity, and the PMI² probe cost (the paper: PMI² makes queries ~6×
//! slower, 40 s vs 6.7 s).

use criterion::{criterion_group, criterion_main, Criterion};
use wwt_core::features::{cover, pmi2, seg_sim, QueryView};
use wwt_core::{MapperConfig, SimilarityMode, TableView};
use wwt_index::IndexBuilder;
use wwt_model::{ContextSnippet, Query, TableId, WebTable};

fn big_table(id: u32, n_rows: usize) -> WebTable {
    WebTable::new(
        TableId(id),
        "u",
        Some("List of north american mountains".into()),
        vec![
            vec!["Mountain name".into(), "Height".into(), "Range".into()],
            vec!["".into(), "meters".into(), "".into()],
        ],
        (0..n_rows)
            .map(|r| {
                vec![
                    format!("Peak {r} north"),
                    format!("{}", 1000 + r * 13),
                    format!("Range {}", r % 7),
                ]
            })
            .collect(),
        vec![ContextSnippet::new(
            "mountains of north america sorted by height",
            0.9,
        )],
    )
    .unwrap()
}

fn bench_features(c: &mut Criterion) {
    let mut builder = IndexBuilder::new();
    let tables: Vec<WebTable> = (0..50).map(|i| big_table(i, 30)).collect();
    for t in &tables {
        builder.add_table(t);
    }
    let index = builder.build();
    let stats = index.stats();
    let cfg_seg = MapperConfig::default();
    let cfg_unseg = MapperConfig {
        similarity: SimilarityMode::Unsegmented,
        ..MapperConfig::default()
    };
    let query = Query::parse("north american mountains | height").unwrap();
    let qv = QueryView::new(&query, stats);
    let view = TableView::new(&tables[0], stats, cfg_seg.body_freq_frac);

    let mut group = c.benchmark_group("features");
    group.bench_function("segsim_segmented", |b| {
        b.iter(|| {
            (0..3)
                .map(|col| seg_sim(&qv.columns[0], &view, col, &cfg_seg))
                .sum::<f64>()
        })
    });
    group.bench_function("segsim_unsegmented", |b| {
        b.iter(|| {
            (0..3)
                .map(|col| seg_sim(&qv.columns[0], &view, col, &cfg_unseg))
                .sum::<f64>()
        })
    });
    group.bench_function("cover", |b| {
        b.iter(|| {
            (0..3)
                .map(|col| cover(&qv.columns[0], &view, col, &cfg_seg))
                .sum::<f64>()
        })
    });
    group.bench_function("pmi2", |b| {
        b.iter(|| {
            (0..3)
                .map(|col| pmi2(&qv.columns[0], &view, col, &index))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
