//! Criterion microbench: index probe latency as the corpus grows (the
//! dominant cost components of Figure 7 are the two index probes and
//! table reads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, WwtConfig};
use wwt_text::tokenize;

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_probe");
    group.sample_size(10);
    for scale in [0.1f64, 0.3] {
        let specs = workload();
        let corpus = CorpusGenerator::new(CorpusConfig {
            seed: 7,
            scale,
            distractors: 100,
        })
        .generate_for(&specs);
        let bound = bind_corpus(&corpus, WwtConfig::default());
        let tokens = tokenize("country currency exchange rate");
        group.bench_with_input(
            BenchmarkId::new("search_top60", format!("scale_{scale}")),
            &bound,
            |b, bound| b.iter(|| bound.engine.index().search(&tokens, 60)),
        );
        group.bench_with_input(
            BenchmarkId::new("two_stage_retrieve", format!("scale_{scale}")),
            &bound,
            |b, bound| {
                let q = specs[14].query.clone(); // country | currency
                b.iter(|| bound.engine.retrieve(&q))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
