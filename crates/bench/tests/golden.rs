//! Golden snapshot tests for the reproduction binaries: `fig7` and
//! `table2` run on the seed corpus (fixed scale, fixed seed) and their
//! stdout is compared against checked-in snapshots under
//! `tests/golden/`. Any drift — a changed F1 number, a lost query, a
//! reshaped table — fails loudly with a diff-ready message.
//!
//! Wall-clock numbers are *normalized away* before comparison (they are
//! the one legitimately volatile part of the output; in `fig7` they also
//! drive row order, so its data rows are sorted after normalization).
//! Everything else is load-bearing.
//!
//! To accept an intentional change, rerun with `WWT_UPDATE_GOLDEN=1` and
//! commit the rewritten snapshots.

use std::path::PathBuf;
use std::process::Command;

/// The corpus scale the snapshots were recorded at. Small enough to run
/// in test time, large enough that every workload query participates.
const GOLDEN_SCALE: &str = "0.05";

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn run_binary(exe: &str) -> String {
    let output = Command::new(exe)
        .env("WWT_SCALE", GOLDEN_SCALE)
        .env("WWT_THREADS", "2")
        .output()
        .unwrap_or_else(|e| panic!("running {exe}: {e}"));
    assert!(
        output.status.success(),
        "{exe} exited with {:?}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("binary output is utf-8")
}

/// Collapses every digit run to `#` and every whitespace run to one
/// space: numbers and number-width-driven column padding disappear,
/// names and structure stay.
fn strip_numbers(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_digits = false;
    let mut in_space = false;
    for c in line.trim_end().chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('#');
            }
            in_digits = true;
            in_space = false;
        } else if c.is_whitespace() {
            if !in_space {
                out.push(' ');
            }
            in_space = true;
            in_digits = false;
        } else {
            out.push(c);
            in_digits = false;
            in_space = false;
        }
    }
    out.trim_end().to_string()
}

/// `fig7` normalization: all numbers are timings, and total time drives
/// row order — so strip numbers everywhere and sort the lines. What
/// survives is the exact set of queries and the table structure.
fn normalize_fig7(raw: &str) -> String {
    let mut lines: Vec<String> = raw.lines().map(strip_numbers).collect();
    lines.sort();
    let mut out = lines.join("\n");
    out.push('\n');
    out
}

/// `table2` normalization: the F1-error table is deterministic and kept
/// verbatim (modulo number-width padding); only the wall-clock section
/// at the bottom is volatile, so numbers are stripped there.
fn normalize_table2(raw: &str) -> String {
    let mut out = String::new();
    let mut in_timing_section = false;
    for line in raw.lines() {
        if line.starts_with("Wall-clock per full workload pass") {
            in_timing_section = true;
        }
        let collapsed: String = line.split_whitespace().collect::<Vec<_>>().join(" ");
        if in_timing_section {
            out.push_str(&strip_numbers(&collapsed));
        } else {
            out.push_str(&collapsed);
        }
        out.push('\n');
    }
    out
}

fn check_golden(name: &str, normalized: &str) {
    let path = golden_dir().join(format!("{name}.txt"));
    if std::env::var("WWT_UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(golden_dir()).unwrap();
        std::fs::write(&path, normalized).unwrap();
        eprintln!("[golden] updated {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); record it with WWT_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    if expected != normalized {
        let diff: Vec<String> = expected
            .lines()
            .zip(normalized.lines())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .take(12)
            .map(|(i, (a, b))| format!("line {}:\n  golden: {a}\n  actual: {b}", i + 1))
            .collect();
        panic!(
            "{name} drifted from its golden snapshot ({} lines golden vs {} actual).\n{}\n\
             If this change is intentional, rerun with WWT_UPDATE_GOLDEN=1 and commit \
             tests/golden/{name}.txt.",
            expected.lines().count(),
            normalized.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn fig7_output_matches_golden_snapshot() {
    let raw = run_binary(env!("CARGO_BIN_EXE_fig7"));
    check_golden("fig7", &normalize_fig7(&raw));
}

#[test]
fn table2_output_matches_golden_snapshot() {
    let raw = run_binary(env!("CARGO_BIN_EXE_table2"));
    check_golden("table2", &normalize_table2(&raw));
}

#[test]
fn normalizers_strip_volatility_but_keep_structure() {
    assert_eq!(strip_numbers("total 12.7 ms  (3x)"), "total #.# ms (#x)");
    assert_eq!(strip_numbers("  spaced   out  "), " spaced out");
    let fig = normalize_fig7("b 2.0\na 10.5\n");
    assert_eq!(fig, "a #.#\nb #.#\n");
    let t2 =
        normalize_table2("Group  None\n1  33.1\nWall-clock per full workload pass:\n  x 1.23s\n");
    assert!(t2.contains("1 33.1"), "{t2:?}");
    assert!(t2.contains("x #.#s"), "{t2:?}");
}
