//! # wwt-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§5), plus criterion microbenches.
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — per-query candidate/relevant counts |
//! | `fig5` | Figure 5 — error reduction vs Basic by query group |
//! | `fig6` | Figure 6 — answer-row quality, WWT vs Basic |
//! | `fig7` | Figure 7 — per-query running-time breakdown |
//! | `fig8` | Figure 8 — segmented vs unsegmented similarity scatter |
//! | `table2` | Table 2 — collective inference comparison |
//! | `probe_stats` | §2.2.1 — two-stage probe statistics |
//!
//! All binaries accept the `WWT_SCALE` environment variable (default 0.35)
//! scaling the synthetic corpus relative to the paper's Table 1 counts,
//! and `WWT_THREADS` (default: available parallelism).

use std::collections::HashMap;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator, QuerySpec};
use wwt_engine::{bind_corpus, evaluate_workload, BoundCorpus, Method, QueryEvaluation, WwtConfig};

/// A fully prepared experiment environment.
pub struct Experiment {
    /// Engine + ground truth over the generated corpus.
    pub bound: BoundCorpus,
    /// The 59-query workload.
    pub specs: Vec<QuerySpec>,
    /// Worker threads for evaluation.
    pub threads: usize,
    /// Corpus scale used.
    pub scale: f64,
}

/// Reads `WWT_SCALE` / `WWT_THREADS`, generates the corpus, builds the
/// engine and binds ground truth.
pub fn setup() -> Experiment {
    let scale: f64 = std::env::var("WWT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.35);
    let threads: usize = std::env::var("WWT_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let specs = workload();
    let config = CorpusConfig {
        scale,
        ..CorpusConfig::default()
    };
    eprintln!(
        "[setup] generating corpus (scale {scale}, {} queries) ...",
        specs.len()
    );
    let corpus = CorpusGenerator::new(config).generate_for(&specs);
    eprintln!(
        "[setup] extracting + indexing {} documents ...",
        corpus.documents.len()
    );
    let bound = bind_corpus(&corpus, WwtConfig::default());
    eprintln!(
        "[setup] ready: {} tables in store, {} labeled, {} extraction failures",
        bound.engine.store().len(),
        bound.n_labeled(),
        bound.extraction_failures
    );
    Experiment {
        bound,
        specs,
        threads,
        scale,
    }
}

/// Evaluates several methods over the whole workload; returns
/// `results[method_name]` in workload order.
pub fn eval_methods(
    exp: &Experiment,
    methods: &[Method],
) -> HashMap<&'static str, Vec<QueryEvaluation>> {
    let mut out = HashMap::new();
    for &m in methods {
        eprintln!("[eval] {} ...", m.name());
        let evals = evaluate_workload(&exp.bound, &exp.specs, m, exp.threads);
        out.insert(m.name(), evals);
    }
    out
}

/// Splits queries into "easy" (all methods within 0.5 points of each
/// other, the paper's criterion) and "hard" (the rest); queries with no
/// candidates at all are dropped.
pub fn split_easy_hard(
    per_method: &HashMap<&'static str, Vec<QueryEvaluation>>,
    n_queries: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut easy = Vec::new();
    let mut hard = Vec::new();
    for qi in 0..n_queries {
        let errors: Vec<f64> = per_method.values().map(|v| v[qi].f1_error).collect();
        let candidates = per_method
            .values()
            .next()
            .map(|v| v[qi].candidates)
            .unwrap_or(0);
        if candidates == 0 {
            continue;
        }
        let mx = errors.iter().cloned().fold(f64::MIN, f64::max);
        let mn = errors.iter().cloned().fold(f64::MAX, f64::min);
        if mx - mn < 0.5 {
            easy.push(qi);
        } else {
            hard.push(qi);
        }
    }
    (easy, hard)
}

/// Bins hard queries into `n_groups` groups by the Basic method's error,
/// descending (group 1 = highest Basic error), as in Figure 5 / Table 2.
pub fn bin_by_basic_error(
    hard: &[usize],
    basic: &[QueryEvaluation],
    n_groups: usize,
) -> Vec<Vec<usize>> {
    let mut sorted: Vec<usize> = hard.to_vec();
    sorted.sort_by(|&a, &b| {
        basic[b]
            .f1_error
            .partial_cmp(&basic[a].f1_error)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let n = sorted.len();
    let mut groups = vec![Vec::new(); n_groups];
    for (i, qi) in sorted.into_iter().enumerate() {
        let g = (i * n_groups) / n.max(1);
        groups[g.min(n_groups - 1)].push(qi);
    }
    groups
}

/// Mean F1 error of a method over a set of queries (macro-average over
/// queries, like the paper's per-group numbers).
pub fn group_error(evals: &[QueryEvaluation], queries: &[usize]) -> f64 {
    if queries.is_empty() {
        return 0.0;
    }
    queries.iter().map(|&q| evals[q].f1_error).sum::<f64>() / queries.len() as f64
}

/// Renders a simple aligned text table to stdout.
pub fn print_text_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:width$}  ",
                c,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_eval(qi: usize, err: f64, candidates: usize) -> QueryEvaluation {
        QueryEvaluation {
            query_index: qi,
            method: Method::Basic,
            f1_error: err,
            candidates,
            relevant_candidates: 0,
            labelings: vec![],
            candidate_ids: vec![],
        }
    }

    #[test]
    fn easy_hard_split_criterion() {
        let mut per: HashMap<&'static str, Vec<QueryEvaluation>> = HashMap::new();
        per.insert(
            "A",
            vec![
                fake_eval(0, 10.0, 5),
                fake_eval(1, 50.0, 5),
                fake_eval(2, 0.0, 0),
            ],
        );
        per.insert(
            "B",
            vec![
                fake_eval(0, 10.2, 5),
                fake_eval(1, 30.0, 5),
                fake_eval(2, 0.0, 0),
            ],
        );
        let (easy, hard) = split_easy_hard(&per, 3);
        assert_eq!(easy, vec![0]);
        assert_eq!(hard, vec![1]);
    }

    #[test]
    fn binning_descending_by_basic() {
        let basic: Vec<QueryEvaluation> =
            (0..8).map(|i| fake_eval(i, (i as f64) * 10.0, 5)).collect();
        let hard: Vec<usize> = (0..8).collect();
        let groups = bin_by_basic_error(&hard, &basic, 4);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0], vec![7, 6]);
        assert_eq!(groups[3], vec![1, 0]);
        assert!(group_error(&basic, &groups[0]) > group_error(&basic, &groups[3]));
    }

    #[test]
    fn group_error_empty_is_zero() {
        assert_eq!(group_error(&[], &[]), 0.0);
    }
}
