//! Ablation study over WWT's design choices (§3.3's robustness mechanisms
//! and the calibration knobs DESIGN.md documents):
//!
//! * confidence gating of edge potentials (paper: Pr > 0.6) — off = 0.0;
//! * edge potentials entirely (we = 0 reduces collective inference to
//!   independent per-table matching);
//! * probability calibration temperature (sharp 0.5 vs plain 1.0);
//! * the PMI² node feature (off by default in WWT).
//!
//! Prints overall hard-query F1 error per configuration.

use wwt_bench::{eval_methods, group_error, print_text_table, setup, split_easy_hard};
use wwt_core::{InferenceAlgorithm, MapperConfig};
use wwt_engine::Method;

fn main() {
    let exp = setup();
    // Easy/hard split from the default configuration.
    let per = eval_methods(
        &exp,
        &[Method::Basic, Method::Wwt(InferenceAlgorithm::TableCentric)],
    );
    let (_easy, hard) = split_easy_hard(&per, exp.specs.len());

    let base = MapperConfig::default();
    let variants: Vec<(&str, MapperConfig)> = vec![
        ("WWT (default)", base.clone()),
        (
            "no confidence gate",
            MapperConfig {
                confidence_threshold: 0.0,
                ..base.clone()
            },
        ),
        (
            "no edges (we = 0)",
            MapperConfig {
                weights: wwt_core::Weights {
                    we: 0.0,
                    ..base.weights
                },
                ..base.clone()
            },
        ),
        (
            "flat calibration (T = 1)",
            MapperConfig {
                calibration_temperature: 1.0,
                ..base.clone()
            },
        ),
        (
            "with PMI2 feature",
            MapperConfig {
                use_pmi: true,
                ..base.clone()
            },
        ),
    ];

    let mut rows = Vec::new();
    for (name, cfg) in variants {
        eprintln!("[ablation] {name} ...");
        let evals = wwt_engine::evaluate_workload_with(
            &exp.bound,
            &exp.specs,
            Method::Wwt(InferenceAlgorithm::TableCentric),
            exp.threads,
            Some(&cfg),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.1}%", group_error(&evals, &hard)),
        ]);
    }
    println!("\nAblation: overall hard-query F1 error\n");
    print_text_table(&["configuration", "error"], &rows);
    println!("\nExpected: removing the confidence gate or flattening calibration hurts");
    println!("precision; removing edges loses headerless-table recall. PMI2 was ~neutral");
    println!("in the paper; on the synthetic corpus its co-occurrence statistics are");
    println!("cleaner than on the web, so it can help here.");
}
