//! Reproduces the §2.2.1 two-stage probe statistics: the fraction of
//! queries that trigger the second index probe, the share of relevant
//! tables contributed by each stage, and the stage-wise relevant fraction.

use wwt_bench::setup;

fn main() {
    let exp = setup();
    let mut used2 = 0usize;
    let mut n_queries = 0usize;
    let mut s1_total = 0usize;
    let mut s1_rel = 0usize;
    let mut s2_total = 0usize;
    let mut s2_rel = 0usize;
    let mut rel_from_stage2 = Vec::new();

    for spec in &exp.specs {
        let retrieval = exp.bound.engine.retrieve(&spec.query);
        let (stage1, stage2, probe2) = (retrieval.stage1, retrieval.stage2, retrieval.probe2_used);
        if stage1.is_empty() && stage2.is_empty() {
            continue;
        }
        n_queries += 1;
        if probe2 {
            used2 += 1;
        }
        let relevant = |ids: &[wwt_model::TableId]| -> usize {
            ids.iter()
                .filter(|&&id| {
                    let t = exp.bound.engine.store().get(id).unwrap();
                    exp.bound
                        .truth_for(spec.index, id, t.n_cols())
                        .iter()
                        .any(|l| l.is_query_col())
                })
                .count()
        };
        let r1 = relevant(&stage1);
        let r2 = relevant(&stage2);
        s1_total += stage1.len();
        s1_rel += r1;
        s2_total += stage2.len();
        s2_rel += r2;
        if probe2 && r1 + r2 > 0 {
            rel_from_stage2.push(r2 as f64 / (r1 + r2) as f64);
        }
    }

    println!("\nTwo-stage index probe statistics (paper §2.2.1)\n");
    println!(
        "second probe used:          {:.0}% of answered queries   (paper: 65%)",
        100.0 * used2 as f64 / n_queries.max(1) as f64
    );
    let s2_share = if rel_from_stage2.is_empty() {
        0.0
    } else {
        100.0 * rel_from_stage2.iter().sum::<f64>() / rel_from_stage2.len() as f64
    };
    println!("relevant tables from stage2: {s2_share:.0}% (avg over probe-2 queries; paper: 50%)");
    println!(
        "relevant fraction stage 1:   {:.0}%                      (paper: 52%)",
        100.0 * s1_rel as f64 / s1_total.max(1) as f64
    );
    println!(
        "relevant fraction stage 2:   {:.0}%                      (paper: 70%)",
        100.0 * s2_rel as f64 / s2_total.max(1) as f64
    );
}
