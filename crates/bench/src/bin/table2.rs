//! Reproduces **Table 2**: F1 error of the collective inference
//! algorithms — None (independent), constrained α-expansion, BP, TRW-S and
//! Table-centric — over the seven hard-query groups and overall, plus
//! their relative running times (§5.3).

use std::time::Instant;
use wwt_bench::{
    bin_by_basic_error, eval_methods, group_error, print_text_table, setup, split_easy_hard,
};
use wwt_core::InferenceAlgorithm;
use wwt_engine::{evaluate_workload, Method};

fn main() {
    let exp = setup();
    let algorithms = [
        ("None", InferenceAlgorithm::Independent),
        ("alpha-exp", InferenceAlgorithm::AlphaExpansion),
        ("BP", InferenceAlgorithm::BeliefPropagation),
        ("TRWS", InferenceAlgorithm::Trws),
        ("Table-centric", InferenceAlgorithm::TableCentric),
    ];
    // The grouping comes from Basic, as in Figure 5 / Table 2.
    let base_methods = [Method::Basic, Method::Wwt(InferenceAlgorithm::TableCentric)];
    let per_base = eval_methods(&exp, &base_methods);
    let (_easy, hard) = split_easy_hard(&per_base, exp.specs.len());
    let groups = bin_by_basic_error(&hard, &per_base["Basic"], 7);

    let mut results = Vec::new();
    let mut timings = Vec::new();
    for (name, alg) in algorithms {
        eprintln!("[eval] {name} ...");
        let t0 = Instant::now();
        let evals = evaluate_workload(&exp.bound, &exp.specs, Method::Wwt(alg), exp.threads);
        timings.push((name, t0.elapsed().as_secs_f64()));
        results.push((name, evals));
    }

    println!("\nTable 2: collective inference comparison (F1 error %)\n");
    let mut rows = Vec::new();
    for (g, queries) in groups.iter().enumerate() {
        let mut row = vec![format!("{}", g + 1)];
        for (_, evals) in &results {
            row.push(format!("{:.1}", group_error(evals, queries)));
        }
        rows.push(row);
    }
    let mut overall = vec!["Overall".to_string()];
    for (_, evals) in &results {
        overall.push(format!("{:.1}", group_error(evals, &hard)));
    }
    rows.push(overall);
    print_text_table(
        &["Group", "None", "alpha-exp", "BP", "TRWS", "Table-centric"],
        &rows,
    );
    println!("\npaper overall: None 33.1, alpha-exp 31.3, BP 31.5, TRWS 32.3, Table-centric 30.3");

    println!("\nWall-clock per full workload pass (relative to Table-centric):");
    let tc = timings.last().map(|(_, t)| *t).unwrap_or(1.0);
    for (name, t) in &timings {
        println!("  {:14} {:6.2}s  ({:.1}x)", name, t, t / tc);
    }
    println!("paper: table-centric fastest; alpha-exp ~5x, BP ~6x, TRWS ~30x slower.");
}
