//! Reproduces **Figure 5**: error reduction relative to Basic for PMI2,
//! NbrText and WWT over seven hard-query groups (binned by Basic's error),
//! plus the side table of Basic's per-group error and the overall errors
//! reported in §5.1.

use wwt_bench::{
    bin_by_basic_error, eval_methods, group_error, print_text_table, setup, split_easy_hard,
};
use wwt_core::InferenceAlgorithm;
use wwt_engine::Method;

fn main() {
    let exp = setup();
    let methods = [
        Method::Basic,
        Method::NbrText,
        Method::Pmi2,
        Method::Wwt(InferenceAlgorithm::TableCentric),
    ];
    let per = eval_methods(&exp, &methods);
    let (easy, hard) = split_easy_hard(&per, exp.specs.len());
    let basic = &per["Basic"];
    let groups = bin_by_basic_error(&hard, basic, 7);

    println!(
        "\nFigure 5: error reduction over Basic ({} easy / {} hard queries)\n",
        easy.len(),
        hard.len()
    );
    let mut rows = Vec::new();
    for (g, queries) in groups.iter().enumerate() {
        let b = group_error(basic, queries);
        let red = |name: &str| -> String {
            let e = group_error(&per[name], queries);
            format!("{:+.1}%", b - e)
        };
        rows.push(vec![
            format!("{}", g + 1),
            format!("{}", queries.len()),
            format!("{b:.1}%"),
            red("PMI2"),
            red("NbrText"),
            red("WWT"),
        ]);
    }
    print_text_table(
        &[
            "Grp",
            "#Q",
            "Basic err",
            "PMI2 red.",
            "NbrText red.",
            "WWT red.",
        ],
        &rows,
    );

    println!(
        "\nOverall error on hard queries (paper: Basic 34.7, PMI2 34.7, NbrText 34.2, WWT 30.3):"
    );
    for name in ["Basic", "PMI2", "NbrText", "WWT"] {
        println!("  {:8} {:.1}%", name, group_error(&per[name], &hard));
    }
    let all: Vec<usize> = easy.iter().chain(hard.iter()).copied().collect();
    println!("\nOverall error on all answered queries:");
    for name in ["Basic", "PMI2", "NbrText", "WWT"] {
        println!("  {:8} {:.1}%", name, group_error(&per[name], &all));
    }
    println!("\npaper shape: WWT reduces error in every group; NbrText mixed; PMI2 ~neutral.");
}
