//! `perf` — the query-path performance benchmark behind the repo's
//! `BENCH_query_path.json` trajectory.
//!
//! Measures, at a fixed seed and scale:
//!
//! * **index build time** — freezing the extracted tables into the
//!   fielded inverted index (the offline path a reload pays);
//! * **engine bind time** — the full [`EngineBuilder::build`] cost
//!   (index + table store + per-table feature precompute);
//! * **top-k probe latency** — one ranked OR-keyword probe
//!   (`search(tokens, 60)`), the unit of both retrieval stages;
//! * **cold query latency** — the first uncached `answer_query` per
//!   workload query, end to end (probes + mapping + consolidation);
//! * **warm query latency** — repeat runs of the same queries (CPU
//!   caches warm, response cache *not* involved); each query's repeats
//!   collapse to their median so the warm series has the same sample
//!   size as the cold one and the two medians compare like for like;
//! * **cached query latency** — the same repeats through a
//!   [`TableSearchService`] with its response cache, what a repeat
//!   HTTP request actually costs;
//! * **column-map latency** — the per-query `column_map` stage time
//!   (median/p95), the inference-heavy slice of the pipeline, plus a
//!   `column_map_by_algorithm` breakdown (one warm pass of the workload
//!   per inference algorithm via the per-request override);
//! * **trace overhead** — interleaved repeats of the untraced entry
//!   point, the disabled-trace production path, and a fully *enabled*
//!   recording trace; `disabled_delta_pct` proves the always-present
//!   hooks are free when off, `enabled_delta_pct` prices `explain`;
//! * **live-ingest cost** — N single `with_table_added` calls vs one
//!   `with_tables_added` batch over the same tables (`live_ingest` in
//!   the artifact): the batch path pays one delta rebuild where the
//!   sequential path pays N.
//!
//! Results are written as JSON to `BENCH_query_path.json` at the repo
//! root (override with `WWT_BENCH_OUT`). `WWT_BENCH_SMOKE=1` (or a
//! `smoke` argument) shrinks the corpus and repetitions so CI can run it
//! in seconds; smoke numbers are for plumbing checks, not comparisons.
//!
//! Environment: `WWT_SCALE` (default 0.15) sizes the corpus like every
//! other wwt-bench binary.

use std::sync::Arc;
use std::time::{Duration, Instant};
use wwt_core::InferenceAlgorithm;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{Engine, EngineBuilder, QueryRequest, Trace, WwtConfig};
use wwt_html::extract_tables;
use wwt_index::IndexBuilder;
use wwt_json::Json;
use wwt_model::WebTable;
use wwt_service::TableSearchService;

/// Fixed corpus seed: the trajectory only means something if every point
/// measures the same corpus.
const SEED: u64 = 7;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn p95(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

fn stats_json(xs: &[f64]) -> Json {
    Json::obj([
        ("mean_us", Json::from(mean(xs))),
        ("median_us", Json::from(median(xs))),
        ("p95_us", Json::from(p95(xs))),
        (
            "min_us",
            Json::from(if xs.is_empty() {
                0.0
            } else {
                xs.iter().cloned().fold(f64::INFINITY, f64::min)
            }),
        ),
        (
            "max_us",
            Json::from(xs.iter().cloned().fold(0.0f64, f64::max)),
        ),
        ("n", Json::from(xs.len())),
    ])
}

fn main() {
    let smoke = std::env::args().any(|a| a == "smoke")
        || std::env::var("WWT_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0");
    let scale: f64 = std::env::var("WWT_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke { 0.03 } else { 0.15 });
    let build_reps = if smoke { 1 } else { 3 };
    let probe_reps = if smoke { 20 } else { 200 };
    let warm_reps = if smoke { 1 } else { 3 };

    let specs = workload();
    eprintln!("[perf] generating corpus (seed {SEED}, scale {scale}, smoke={smoke}) ...");
    let corpus = CorpusGenerator::new(CorpusConfig {
        seed: SEED,
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);

    // Extraction is not under test: do it once, up front.
    let mut tables: Vec<WebTable> = Vec::new();
    let mut next_id = 0u32;
    for doc in &corpus.documents {
        let extracted = extract_tables(&doc.html, &doc.url, next_id);
        next_id += extracted.len() as u32;
        tables.extend(extracted);
    }
    eprintln!(
        "[perf] {} documents -> {} tables",
        corpus.documents.len(),
        tables.len()
    );

    // Index build: freezing the postings (the structure every probe
    // hits). One untimed warm-up first — the initial build pays page
    // faults and allocator growth the steady state never sees.
    let mut index_build_ms = Vec::new();
    let mut vocab = 0usize;
    for rep in 0..=build_reps {
        let t0 = Instant::now();
        let mut b = IndexBuilder::new();
        for t in &tables {
            b.add_table(t);
        }
        let idx = b.build();
        if rep > 0 {
            index_build_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        vocab = idx.vocab_size();
    }

    // Engine bind: everything `EngineBuilder::build` pays beyond the raw
    // index (store assembly, feature precompute). Serial first — one
    // bind thread — then the pooled default, so the artifact records how
    // much the worker-pool fan-out (per-shard freeze + per-table feature
    // precompute) buys on this machine.
    let t0 = Instant::now();
    let serial: Engine = {
        let mut b = EngineBuilder::with_config(WwtConfig::default());
        b.add_tables(tables.iter().cloned());
        b.bind_threads(1);
        b.build()
    };
    let engine_bind_serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(serial);
    let bind_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t0 = Instant::now();
    let engine: Engine = {
        let mut b = EngineBuilder::with_config(WwtConfig::default());
        b.add_tables(tables.iter().cloned());
        b.build()
    };
    let engine_bind_ms = t0.elapsed().as_secs_f64() * 1e3;
    // Shared from here on: the cached-query series routes through a
    // TableSearchService over the same engine.
    let engine = Arc::new(engine);

    // Top-k probe latency: a representative OR-keyword probe.
    let probes = [
        "country currency exchange rate",
        "name of explorers nationality",
        "dog breed origin size",
    ];
    let mut probe_us = Vec::new();
    for probe in probes {
        let tokens = wwt_text::tokenize(probe);
        // One warm-up probe, then timed repetitions.
        let _ = engine.index().search(&tokens, 60);
        for _ in 0..probe_reps {
            let t0 = Instant::now();
            let hits = engine.index().search(&tokens, 60);
            probe_us.push(micros(t0.elapsed()));
            std::hint::black_box(hits);
        }
    }

    // Cold query latency: the first end-to-end run of each workload
    // query against a fresh engine (no response cache in the loop).
    let n_queries = if smoke { 4 } else { specs.len().min(16) };
    let mut cold_us = Vec::new();
    let mut column_map_us = Vec::new();
    let mut per_query = Vec::new();
    for spec in specs.iter().take(n_queries) {
        let t0 = Instant::now();
        let out = engine.answer_query(&spec.query);
        let us = micros(t0.elapsed());
        cold_us.push(us);
        let t = &out.diagnostics.timing;
        column_map_us.push(t.column_map.as_secs_f64() * 1e6);
        per_query.push(Json::obj([
            ("query", Json::from(spec.query.to_string())),
            ("cold_us", Json::from(us)),
            ("rows", Json::from(out.table.len())),
            (
                "index_us",
                Json::from((t.index1 + t.index2).as_micros() as u64),
            ),
            (
                "read_us",
                Json::from((t.read1 + t.read2).as_micros() as u64),
            ),
            ("column_map_us", Json::from(t.column_map.as_micros() as u64)),
            (
                "consolidate_us",
                Json::from(t.consolidate.as_micros() as u64),
            ),
        ]));
    }

    // Warm repeats of the same queries. This is the *uncached* engine
    // path rerun with warm CPU caches — the response cache is
    // deliberately not in the loop — so warm_query tracks cold_query
    // rather than beating it; the response-cache win is measured
    // separately as `cached_query` below. Each query's repeats collapse
    // to their median, so the warm series has n = n_queries like the
    // cold one and scheduler outliers in any single rep can't skew the
    // series-level comparison.
    let mut warm_us = Vec::new();
    for spec in specs.iter().take(n_queries) {
        let mut reps_us = Vec::new();
        for _ in 0..warm_reps {
            let t0 = Instant::now();
            let out = engine.answer_query(&spec.query);
            reps_us.push(micros(t0.elapsed()));
            column_map_us.push(out.diagnostics.timing.column_map.as_secs_f64() * 1e6);
            std::hint::black_box(out);
        }
        warm_us.push(median(&reps_us));
    }

    // Column-map cost per inference algorithm: one warm pass of the
    // workload per algorithm through the per-request override, isolating
    // what each solver adds to the stage the tentpole optimises.
    let algorithms = [
        InferenceAlgorithm::Independent,
        InferenceAlgorithm::TableCentric,
        InferenceAlgorithm::AlphaExpansion,
        InferenceAlgorithm::BeliefPropagation,
        InferenceAlgorithm::Trws,
    ];
    let mut column_map_by_algorithm = Vec::new();
    for algorithm in algorithms {
        let mut alg_us = Vec::new();
        for spec in specs.iter().take(n_queries) {
            let request = QueryRequest::new(spec.query.clone()).algorithm(algorithm);
            let out = engine.answer(&request).expect("no deadline");
            alg_us.push(out.diagnostics.timing.column_map.as_secs_f64() * 1e6);
            std::hint::black_box(out);
        }
        column_map_by_algorithm.push((format!("{algorithm:?}"), stats_json(&alg_us)));
    }

    // Trace overhead, measured interleaved (each query runs the three
    // variants back to back, so clock drift and cache state cancel):
    //
    // * `untraced` — `answer_query`, the pre-tracing entry point;
    // * `disabled` — `answer_traced` with a disabled trace, the path
    //   every non-explain production query takes. Its hooks are a
    //   branch on `Option::None`, and `disabled_delta_pct` vs untraced
    //   is the proof the instrumentation is free when off (< 2%);
    // * `enabled` — a full recording trace (spans, notes, per-shard
    //   children), what an `explain:true` request opts into.
    let trace_reps = if smoke { 1 } else { 5 };
    let mut untraced_us = Vec::new();
    let mut disabled_us = Vec::new();
    let mut traced_us = Vec::new();
    for _ in 0..trace_reps {
        for spec in specs.iter().take(n_queries) {
            let request = QueryRequest::new(spec.query.clone());
            // Untimed warm-up: without it the first timed variant pays
            // the switch from the previous query's working set and the
            // comparison is biased against whichever runs first.
            std::hint::black_box(engine.answer_query(&spec.query));
            let t0 = Instant::now();
            std::hint::black_box(engine.answer_query(&spec.query));
            untraced_us.push(micros(t0.elapsed()));
            let t0 = Instant::now();
            std::hint::black_box(
                engine
                    .answer_traced(&request, &Trace::disabled())
                    .expect("no deadline"),
            );
            disabled_us.push(micros(t0.elapsed()));
            let trace = Trace::enabled("perf");
            let t0 = Instant::now();
            std::hint::black_box(engine.answer_traced(&request, &trace).expect("no deadline"));
            traced_us.push(micros(t0.elapsed()));
        }
    }
    let delta_pct = |xs: &[f64]| {
        if median(&untraced_us) > 0.0 {
            (median(xs) - median(&untraced_us)) / median(&untraced_us) * 100.0
        } else {
            0.0
        }
    };
    let disabled_delta_pct = delta_pct(&disabled_us);
    let enabled_delta_pct = delta_pct(&traced_us);

    // Fail-soft overhead: the same interleaved off/on protocol as the
    // trace measurement, with no fault armed — what the `fail_soft`
    // option costs when nothing degrades (the answer bytes are
    // identical, so any delta is pure bookkeeping).
    let mut soft_off_us = Vec::new();
    let mut soft_on_us = Vec::new();
    for _ in 0..trace_reps {
        for spec in specs.iter().take(n_queries) {
            let request = QueryRequest::new(spec.query.clone());
            let soft_request = request.clone().fail_soft(true);
            std::hint::black_box(engine.answer_query(&spec.query));
            let t0 = Instant::now();
            std::hint::black_box(engine.answer(&request).expect("no deadline"));
            soft_off_us.push(micros(t0.elapsed()));
            let t0 = Instant::now();
            std::hint::black_box(engine.answer(&soft_request).expect("no deadline"));
            soft_on_us.push(micros(t0.elapsed()));
        }
    }
    let fail_soft_delta_pct = if median(&soft_off_us) > 0.0 {
        (median(&soft_on_us) - median(&soft_off_us)) / median(&soft_off_us) * 100.0
    } else {
        0.0
    };

    // Cached-query latency: the service path with its response cache —
    // what a repeat HTTP request actually costs.
    let cached_reps = if smoke { 2 } else { 10 };
    let service = TableSearchService::new(Arc::clone(&engine));
    let mut cached_us = Vec::new();
    for spec in specs.iter().take(n_queries) {
        let request = QueryRequest::new(spec.query.clone());
        drop(service.answer(&request)); // populate the cache entry
        for _ in 0..cached_reps {
            let t0 = Instant::now();
            std::hint::black_box(service.answer(&request).expect("cached repeat"));
            cached_us.push(micros(t0.elapsed()));
        }
    }

    // Live-ingest cost: applying N tables to a frozen base one
    // `with_table_added` call at a time (each call rebuilds the delta
    // index — O(delta) per call, quadratic over the batch) vs one
    // `with_tables_added` batch (all set mutations, then a single delta
    // rebuild). Both produce the same engine state; the ratio is what
    // routing mutations through the batch apply path buys.
    let ingest_n = (if smoke { 8 } else { 32 }).min(tables.len() / 2);
    let (base_tables, delta_tables) = tables.split_at(tables.len() - ingest_n);
    let base_engine = {
        let mut b = EngineBuilder::with_config(WwtConfig::default());
        b.add_tables(base_tables.iter().cloned());
        b.build()
    };
    let t0 = Instant::now();
    let mut sequential = base_engine.clone();
    for t in delta_tables {
        sequential = sequential.with_table_added(t.clone());
    }
    let ingest_sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let batched = base_engine.with_tables_added(delta_tables.to_vec());
    let ingest_batch_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sequential.delta_len(), batched.delta_len());
    std::hint::black_box((sequential, batched));
    let ingest_speedup = if ingest_batch_ms > 0.0 {
        ingest_sequential_ms / ingest_batch_ms
    } else {
        0.0
    };

    let out = Json::obj([
        ("bench", Json::from("query_path")),
        ("seed", Json::from(SEED)),
        ("scale", Json::from(scale)),
        ("smoke", Json::from(smoke)),
        ("n_tables", Json::from(engine.store().len())),
        ("index_shards", Json::from(engine.n_shards())),
        ("vocab", Json::from(vocab)),
        ("index_build_ms", Json::from(mean(&index_build_ms))),
        ("engine_bind_ms", Json::from(engine_bind_ms)),
        ("engine_bind_serial_ms", Json::from(engine_bind_serial_ms)),
        ("bind_threads", Json::from(bind_threads)),
        ("probe_topk", stats_json(&probe_us)),
        ("cold_query", stats_json(&cold_us)),
        ("warm_query", stats_json(&warm_us)),
        ("cached_query", stats_json(&cached_us)),
        ("column_map", stats_json(&column_map_us)),
        (
            "column_map_by_algorithm",
            Json::obj(column_map_by_algorithm),
        ),
        (
            "trace_overhead",
            Json::obj([
                ("untraced_median_us", Json::from(median(&untraced_us))),
                ("disabled_median_us", Json::from(median(&disabled_us))),
                ("disabled_delta_pct", Json::from(disabled_delta_pct)),
                ("enabled_median_us", Json::from(median(&traced_us))),
                ("enabled_delta_pct", Json::from(enabled_delta_pct)),
            ]),
        ),
        (
            "fail_soft_overhead",
            Json::obj([
                ("off_median_us", Json::from(median(&soft_off_us))),
                ("on_median_us", Json::from(median(&soft_on_us))),
                ("on_delta_pct", Json::from(fail_soft_delta_pct)),
            ]),
        ),
        (
            "live_ingest",
            Json::obj([
                ("tables", Json::from(ingest_n)),
                ("sequential_ms", Json::from(ingest_sequential_ms)),
                ("batch_ms", Json::from(ingest_batch_ms)),
                ("speedup", Json::from(ingest_speedup)),
            ]),
        ),
        ("per_query", Json::Arr(per_query)),
    ]);
    let path = std::env::var("WWT_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query_path.json").to_string()
    });
    std::fs::write(&path, format!("{}\n", out.encode())).expect("write bench artifact");
    eprintln!("[perf] wrote {path}");
    println!(
        "index_build {:.1} ms | engine_bind {:.1} ms ({bind_threads} threads; \
         {engine_bind_serial_ms:.1} ms serial) | probe_topk {:.1} us (median) | \
         cold_query {:.0} us (median) / {:.0} us (mean) | warm_query {:.0} us (median) | \
         cached_query {:.0} us (median) | column_map {:.0} us (median) / {:.0} us (p95) | \
         trace_overhead {disabled_delta_pct:+.2}% disabled / {enabled_delta_pct:+.2}% enabled | \
         fail_soft_overhead {fail_soft_delta_pct:+.2}% | \
         live_ingest x{ingest_n}: {ingest_sequential_ms:.1} ms sequential vs \
         {ingest_batch_ms:.1} ms batched ({ingest_speedup:.1}x)",
        mean(&index_build_ms),
        engine_bind_ms,
        median(&probe_us),
        median(&cold_us),
        mean(&cold_us),
        median(&warm_us),
        median(&cached_us),
        median(&column_map_us),
        p95(&column_map_us),
    );
}
