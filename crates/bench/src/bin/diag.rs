//! Diagnostic: per-query error decomposition for WWT — how much error
//! comes from relevant tables marked `nr` (recall), irrelevant tables
//! marked relevant (precision), and column mix-ups within correctly
//! relevance-judged tables. Not a paper experiment; a tuning aid.

use wwt_bench::setup;
use wwt_core::InferenceAlgorithm;
use wwt_engine::{evaluate_query, Method};

fn main() {
    let exp = setup();
    let mut rows = Vec::new();
    for spec in &exp.specs {
        let eval = evaluate_query(
            &exp.bound,
            spec,
            Method::Wwt(InferenceAlgorithm::TableCentric),
        );
        if eval.candidates == 0 {
            continue;
        }
        let mut rel_as_nr = 0usize;
        let mut nr_as_rel = 0usize;
        let mut col_mix = 0usize;
        let mut rel_total = 0usize;
        for (lab, &id) in eval.labelings.iter().zip(&eval.candidate_ids) {
            let t = exp.bound.engine.store().get(id).unwrap();
            let truth = exp.bound.truth_for(spec.index, id, t.n_cols());
            let truth_rel = truth.iter().any(|l| l.is_query_col());
            if truth_rel {
                rel_total += 1;
            }
            match (lab.is_relevant(), truth_rel) {
                (false, true) => rel_as_nr += 1,
                (true, false) => nr_as_rel += 1,
                (true, true)
                    if lab
                        .labels
                        .iter()
                        .zip(&truth)
                        .any(|(p, t)| t.is_query_col() && p != t) =>
                {
                    col_mix += 1;
                }
                _ => {}
            }
        }
        rows.push((
            eval.f1_error,
            format!(
                "{:52} err {:5.1}  cand {:3} rel {:3}  rel->nr {:3}  nr->rel {:3}  mixcol {:3}",
                spec.query.to_string().chars().take(52).collect::<String>(),
                eval.f1_error,
                eval.candidates,
                rel_total,
                rel_as_nr,
                nr_as_rel,
                col_mix
            ),
        ));
    }
    rows.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    for (_, line) in &rows {
        println!("{line}");
    }
}
