//! Reproduces **Figure 7**: the per-query running-time breakdown of the
//! online pipeline (1st index probe, 1st table read, 2nd index probe, 2nd
//! table read, column map, consolidate), queries sorted by total time.

use wwt_bench::{print_text_table, setup};
use wwt_engine::QueryRequest;

fn main() {
    let exp = setup();
    let mut rows: Vec<(f64, Vec<String>)> = Vec::new();
    for spec in &exp.specs {
        let request = QueryRequest::new(spec.query.clone());
        let out = exp
            .bound
            .engine
            .answer(&request)
            .expect("default options are always valid");
        let t = out.diagnostics.timing;
        let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let total = ms(t.total());
        rows.push((
            total,
            vec![
                spec.query.to_string(),
                format!("{:.1}", ms(t.index1)),
                format!("{:.1}", ms(t.read1)),
                format!("{:.1}", ms(t.index2)),
                format!("{:.1}", ms(t.read2)),
                format!("{:.1}", ms(t.column_map)),
                format!("{:.1}", ms(t.consolidate)),
                format!("{total:.1}"),
            ],
        ));
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!("\nFigure 7: per-query running time (ms), queries sorted by total\n");
    print_text_table(
        &[
            "Query",
            "1st Index",
            "1st Read",
            "2nd Index",
            "2nd Read",
            "Column Map",
            "Consolidate",
            "Total",
        ],
        &rows.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
    );
    let totals: Vec<f64> = rows.iter().map(|(t, _)| *t).collect();
    let avg = totals.iter().sum::<f64>() / totals.len().max(1) as f64;
    println!(
        "\nmeasured: min {:.1} ms, max {:.1} ms, avg {:.1} ms",
        totals.first().copied().unwrap_or(0.0),
        totals.last().copied().unwrap_or(0.0),
        avg
    );
    println!(
        "paper    : 1.5–14 s, avg 6.7 s (disk-backed 25M-table index; ours is in-memory & tiny)"
    );
    println!("paper shape to check: column-map time is a small fraction of the total.");
}
