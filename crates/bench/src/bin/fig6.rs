//! Reproduces **Figure 6**: answer quality — the error between the rows of
//! the consolidated answer produced under each method's predicted column
//! mapping and under the true mapping, per hard-query group.

use wwt_bench::{bin_by_basic_error, eval_methods, print_text_table, setup, split_easy_hard};
use wwt_consolidate::{consolidate, row_set_error, RelevantInput};
use wwt_core::InferenceAlgorithm;
use wwt_engine::{Method, QueryEvaluation};
use wwt_model::Labeling;

/// Consolidates candidates under the given labelings (relevance weight 1
/// for every relevant table: Figure 6 isolates the mapping's effect).
fn answer_under(
    exp: &wwt_bench::Experiment,
    eval: &QueryEvaluation,
    labelings: &[Labeling],
    query: &wwt_model::Query,
) -> wwt_model::AnswerTable {
    let tables: Vec<_> = eval
        .candidate_ids
        .iter()
        .filter_map(|&id| exp.bound.engine.store().get(id))
        .collect();
    let inputs: Vec<RelevantInput<'_>> = tables
        .iter()
        .zip(labelings)
        .filter(|(_, l)| l.is_relevant())
        .map(|(t, l)| RelevantInput {
            table: t,
            labeling: l,
            relevance: 1.0,
        })
        .collect();
    consolidate(query, &inputs)
}

fn main() {
    let exp = setup();
    let methods = [Method::Basic, Method::Wwt(InferenceAlgorithm::TableCentric)];
    let per = eval_methods(&exp, &methods);
    let (_easy, hard) = split_easy_hard(&per, exp.specs.len());
    let groups = bin_by_basic_error(&hard, &per["Basic"], 7);

    // Per-query row error for each method.
    let row_err = |name: &str, qi: usize| -> f64 {
        let eval = &per[name][qi];
        let spec = &exp.specs[qi];
        let truth_labelings: Vec<Labeling> = eval
            .candidate_ids
            .iter()
            .map(|&id| {
                let t = exp.bound.engine.store().get(id).unwrap();
                Labeling::new(id, exp.bound.truth_for(spec.index, id, t.n_cols()))
            })
            .collect();
        let predicted = answer_under(&exp, eval, &eval.labelings, &spec.query);
        let reference = answer_under(&exp, eval, &truth_labelings, &spec.query);
        row_set_error(&predicted, &reference)
    };

    println!("\nFigure 6: error in answer rows vs true-mapping consolidation\n");
    let mut rows = Vec::new();
    for (g, queries) in groups.iter().enumerate() {
        let avg = |name: &str| -> f64 {
            if queries.is_empty() {
                return 0.0;
            }
            queries.iter().map(|&q| row_err(name, q)).sum::<f64>() / queries.len() as f64
        };
        rows.push(vec![
            format!("{}", g + 1),
            format!("{:.1}%", avg("WWT")),
            format!("{:.1}%", avg("Basic")),
        ]);
    }
    print_text_table(&["Grp", "WWT row err", "Basic row err"], &rows);
    println!(
        "\npaper shape: WWT's answer rows are closer to the true-mapping answer in every group."
    );
}
