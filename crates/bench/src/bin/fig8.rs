//! Reproduces **Figure 8**: per-query scatter of the F1 error under the
//! segmented similarity (SegSim/Cover, Eq. 1) vs the unsegmented
//! whole-string IR similarity, on the hard queries.

use wwt_bench::{eval_methods, group_error, print_text_table, setup, split_easy_hard};
use wwt_core::InferenceAlgorithm;
use wwt_engine::Method;

fn main() {
    let exp = setup();
    let methods = [
        Method::Basic, // used only for the easy/hard split
        Method::Wwt(InferenceAlgorithm::TableCentric),
        Method::WwtUnsegmented,
    ];
    let per = eval_methods(&exp, &methods);
    let (_easy, hard) = split_easy_hard(&per, exp.specs.len());

    println!("\nFigure 8: segmented vs unsegmented similarity (hard queries)\n");
    let mut rows = Vec::new();
    let mut better = 0usize;
    let mut worse = 0usize;
    let mut big_wins = 0usize;
    for &qi in &hard {
        let seg = per["WWT"][qi].f1_error;
        let unseg = per["WWT-Unseg"][qi].f1_error;
        if seg < unseg - 1e-9 {
            better += 1;
            if unseg - seg > 10.0 {
                big_wins += 1;
            }
        } else if seg > unseg + 1e-9 {
            worse += 1;
        }
        rows.push(vec![
            exp.specs[qi].query.to_string(),
            format!("{unseg:.1}"),
            format!("{seg:.1}"),
            if seg < unseg - 1e-9 {
                "below diagonal"
            } else if seg > unseg + 1e-9 {
                "ABOVE"
            } else {
                "on"
            }
            .to_string(),
        ]);
    }
    print_text_table(
        &["Query", "Unsegmented err", "Segmented err", "vs 45° line"],
        &rows,
    );
    println!(
        "\nmeasured: segmented better on {better}, worse on {worse} of {} hard queries; >10-point wins: {big_wins}",
        hard.len()
    );
    println!(
        "measured overall (hard): segmented {:.1}% vs unsegmented {:.1}%",
        group_error(&per["WWT"], &hard),
        group_error(&per["WWT-Unseg"], &hard)
    );
    println!(
        "paper    : segmented below the 45° line for all but 3 of 32 queries; 8 wins >10 points;"
    );
    println!("           overall 30.3% vs 33.3%.");
}
