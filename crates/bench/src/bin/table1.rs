//! Reproduces **Table 1**: the query set with per-query total and relevant
//! source-table counts, as measured by the two-stage index probe over the
//! synthetic corpus, next to the paper's counts.

use wwt_bench::{print_text_table, setup};

fn main() {
    let exp = setup();
    let mut rows = Vec::new();
    let mut sum_total = 0usize;
    let mut sum_rel = 0usize;
    for spec in &exp.specs {
        let retrieval = exp.bound.engine.retrieve(&spec.query);
        let candidates = retrieval.candidates();
        let relevant = candidates
            .iter()
            .filter(|&&id| {
                let t = exp.bound.engine.store().get(id).unwrap();
                exp.bound
                    .truth_for(spec.index, id, t.n_cols())
                    .iter()
                    .any(|l| l.is_query_col())
            })
            .count();
        sum_total += candidates.len();
        sum_rel += relevant;
        rows.push(vec![
            spec.query.to_string(),
            format!("{}", candidates.len()),
            format!("{relevant}"),
            format!("{}", spec.total),
            format!("{}", spec.relevant),
        ]);
    }
    println!(
        "\nTable 1: query set (measured at corpus scale {})\n",
        exp.scale
    );
    print_text_table(
        &[
            "Query",
            "Total",
            "Relevant",
            "Paper Total",
            "Paper Relevant",
        ],
        &rows,
    );
    let n = exp.specs.len() as f64;
    println!(
        "\nmeasured: avg candidates/query = {:.2}, relevant fraction = {:.0}%",
        sum_total as f64 / n,
        100.0 * sum_rel as f64 / sum_total.max(1) as f64
    );
    println!("paper   : avg candidates/query = 32.29, relevant fraction = 60%");
}
