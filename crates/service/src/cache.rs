//! Sharded LRU response cache.
//!
//! Keys are hashed to one of N independently locked shards, so concurrent
//! lookups for different queries rarely contend on the same mutex. Each
//! shard is a classic intrusive-list LRU: `HashMap<key, slot>` over a
//! slab of doubly linked entries, giving O(1) get/insert/evict.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: String,
    value: V,
    prev: usize,
    next: usize,
}

/// Single-shard LRU with a fixed capacity.
struct LruShard<V> {
    map: HashMap<String, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<V: Clone> LruShard<V> {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slab[slot].prev, self.slab[slot].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slab[slot].prev = NIL;
        self.slab[slot].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slab[slot].value.clone())
    }

    fn insert(&mut self, key: String, value: V) {
        if let Some(&slot) = self.map.get(&key) {
            self.slab[slot].value = value;
            self.unlink(slot);
            self.push_front(slot);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::take(&mut self.slab[victim].key);
            self.map.remove(&old_key);
            self.free.push(victim);
        }
        let entry = Entry {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot] = entry;
                slot
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A thread-safe LRU cache split over independently locked shards.
pub(crate) struct ShardedCache<V> {
    shards: Vec<Mutex<LruShard<V>>>,
}

impl<V: Clone> ShardedCache<V> {
    /// `capacity` entries total, spread over `shards` locks (both floored
    /// at 1).
    pub(crate) fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<LruShard<V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Fetches a value, refreshing its recency.
    pub(crate) fn get(&self, key: &str) -> Option<V> {
        self.shard(key).lock().unwrap().get(key)
    }

    /// Inserts (or refreshes) a value, evicting the shard's LRU entry if
    /// the shard is full.
    pub(crate) fn insert(&self, key: String, value: V) {
        self.shard(&key).lock().unwrap().insert(key, value);
    }

    /// Total number of cached entries.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Number of shards (for stats reporting).
    pub(crate) fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Drops every entry.
    pub(crate) fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_refreshes_recency() {
        let mut s = LruShard::new(2);
        s.insert("a".into(), 1);
        s.insert("b".into(), 2);
        assert_eq!(s.get("a"), Some(1)); // a is now most recent
        s.insert("c".into(), 3); // evicts b
        assert_eq!(s.get("b"), None);
        assert_eq!(s.get("a"), Some(1));
        assert_eq!(s.get("c"), Some(3));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut s = LruShard::new(2);
        s.insert("a".into(), 1);
        s.insert("a".into(), 9);
        assert_eq!(s.get("a"), Some(9));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn eviction_cycles_through_slab_slots() {
        let mut s = LruShard::new(3);
        for i in 0..50 {
            s.insert(format!("k{i}"), i);
        }
        assert_eq!(s.len(), 3);
        assert!(s.slab.len() <= 4, "slab must reuse freed slots");
        assert_eq!(s.get("k49"), Some(49));
        assert_eq!(s.get("k46"), None);
    }

    #[test]
    fn sharded_cache_routes_and_counts() {
        let c: ShardedCache<u32> = ShardedCache::new(64, 8);
        assert_eq!(c.n_shards(), 8);
        for i in 0..40u32 {
            c.insert(format!("key-{i}"), i);
        }
        assert_eq!(c.len(), 40);
        for i in 0..40u32 {
            assert_eq!(c.get(&format!("key-{i}")), Some(i));
        }
        assert_eq!(c.get("missing"), None);
        c.clear();
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        // Capacity exceeds the combined working set (4 × 200 = 800), so a
        // key inserted by one thread can never be evicted by another and
        // every read-back must hit.
        let c: std::sync::Arc<ShardedCache<usize>> =
            std::sync::Arc::new(ShardedCache::new(4096, 4));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}-{i}");
                        c.insert(key.clone(), i);
                        assert_eq!(c.get(&key), Some(i));
                    }
                });
            }
        });
        assert_eq!(c.len(), 800);
    }

    #[test]
    fn concurrent_eviction_never_loses_capacity_bound() {
        // Undersized cache hammered from 4 threads: entries may be evicted
        // at any time, but the structure stays consistent and bounded.
        let c: std::sync::Arc<ShardedCache<usize>> = std::sync::Arc::new(ShardedCache::new(128, 4));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("t{t}-{i}");
                        c.insert(key.clone(), i);
                        // A concurrent evict may have removed it already;
                        // a hit must at least return the right value.
                        if let Some(v) = c.get(&key) {
                            assert_eq!(v, i);
                        }
                    }
                });
            }
        });
        assert!(c.len() <= 128, "len {} exceeds capacity", c.len());
    }
}
