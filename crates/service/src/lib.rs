//! # wwt-service
//!
//! The concurrent serving layer over an immutable [`Engine`] — the piece
//! that turns the paper's pipeline into the interactive, many-user system
//! its introduction describes.
//!
//! [`TableSearchService`] holds the current engine behind an
//! [`EngineSlot`] — a hot-swappable, generation-tagged snapshot holder —
//! and adds:
//!
//! * a **sharded LRU response cache** keyed by the snapshot generation
//!   plus the normalized query and its per-request option fingerprint
//!   ([`QueryRequest::cache_key`]), returning `Arc<QueryResponse>` so
//!   hits are zero-copy;
//! * **singleflight coalescing**: N concurrent identical cold queries
//!   run the engine once — followers block on the leader's flight and
//!   share its response, always one computed against the same generation
//!   they observed;
//! * **zero-downtime reloads**: [`TableSearchService::reload`] swaps in
//!   a rebuilt engine while queries keep being answered; the generation
//!   bump logically invalidates stale cache entries and in-flight
//!   coalescing without a stop-the-world clear;
//! * [`TableSearchService::answer_batch`], fanning a slice of requests
//!   across a scoped worker pool (work-stealing over a shared cursor);
//! * hit/miss/coalesce/entry/generation/deadline counters
//!   ([`ServiceStats`]) for capacity planning.
//!
//! Everything takes `&self`; one service instance can be shared across
//! any number of threads.

mod cache;
mod singleflight;
mod slot;

use cache::ShardedCache;
use singleflight::{FlightGroup, Role};
pub use slot::{EngineSlot, EngineSnapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wwt_engine::{Engine, QueryRequest, QueryResponse};
use wwt_index::{table_to_json, Journal, JournalRecord};
use wwt_model::{Query, TableId, WebTable, WwtError};
pub use wwt_obs::{FlightRecord, QueryOutcome, RecorderConfig, RecorderCounters};
use wwt_obs::{FlightRecorder, SpanRecord, Trace, TraceReport};

/// Serving knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Total response-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Number of independently locked cache shards.
    pub cache_shards: usize,
    /// Worker threads used by [`TableSearchService::answer_batch`]
    /// (capped by the batch size).
    pub batch_threads: usize,
    /// Slow-query flight recorder retention
    /// ([`TableSearchService::answer_observed`] feeds it).
    pub recorder: RecorderConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            batch_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            recorder: RecorderConfig::default(),
        }
    }
}

/// Serving counters, taken as a consistent-enough snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that ran the engine (one per actual engine execution).
    pub misses: u64,
    /// Requests served by joining an identical in-flight computation
    /// (singleflight followers).
    pub coalesced: u64,
    /// Entries currently cached (stale generations included until the
    /// LRU ages them out).
    pub entries: usize,
    /// Number of cache shards.
    pub shards: usize,
    /// Number of *index* shards the serving engine scatter-gathers over
    /// (1 = unsharded; sharding never changes answers, only parallelism).
    pub index_shards: usize,
    /// Generation of the engine snapshot currently serving (0 until the
    /// first reload).
    pub generation: u64,
    /// Engine swaps performed by [`TableSearchService::reload`].
    pub swap_count: u64,
    /// Requests aborted because their `deadline_ms` budget expired.
    pub deadline_exceeded: u64,
    /// Entries resident in the index's doc-set probe memo (facade +
    /// shards) — bounded and striped, so this gauge plateaus at the
    /// cache capacity instead of growing forever under PMI-heavy
    /// traffic.
    pub docset_cache_entries: usize,
    /// Tables currently living in the serving engine's mutable delta
    /// segment (0 when the engine is fully compacted).
    pub delta_tables: usize,
    /// Frozen tables currently shadowed by a tombstone or a re-ingested
    /// delta copy (0 when the engine is fully compacted).
    pub delta_tombstones: usize,
    /// Tables accepted by [`TableSearchService::ingest_table`] since
    /// startup.
    pub tables_ingested: u64,
    /// Tables removed by [`TableSearchService::remove_table`] since
    /// startup.
    pub tables_deleted: u64,
    /// Delta-into-frozen compactions performed by
    /// [`TableSearchService::compact`] since startup.
    pub compactions: u64,
    /// Batches accepted by [`TableSearchService::ingest_tables`] since
    /// startup (each batch also counts its tables in `tables_ingested`).
    pub batches_ingested: u64,
    /// Whether a write-ahead journal is attached — live mutations are
    /// fsync'd to disk before they are acknowledged and replay at boot.
    pub journal_attached: bool,
    /// Intact records currently in the attached journal (0 without one;
    /// drops to 0 when compaction truncates it).
    pub journal_records: u64,
    /// Bytes of intact records currently in the attached journal.
    pub journal_bytes: u64,
    /// Flight-recorder totals over every query that went through
    /// [`TableSearchService::answer_observed`] (queries answered via the
    /// plain [`TableSearchService::answer`] path are not recorded).
    pub recorder: RecorderCounters,
    /// Column pairs whose exact similarity was computed during edge
    /// construction, summed over every engine run.
    pub map_edge_pairs_scored: u64,
    /// Column pairs the content-signature edge index skipped (their
    /// similarity is provably zero), summed over every engine run.
    pub map_edge_pairs_skipped: u64,
    /// Column pairs replayed from the engine's cross-query pair memo
    /// instead of being recomputed, summed over every engine run.
    pub map_edge_pairs_memoized: u64,
    /// Tables whose relevant upper bound could not beat all-`nr` (the
    /// exact solver early exit), summed over every engine run.
    pub map_early_exit_tables: u64,
    /// Tables the `early_exit` request knob excluded from edge
    /// construction, summed over every engine run.
    pub map_pruned_tables: u64,
    /// Pipeline panics caught at the service boundary and converted to
    /// [`WwtError::Internal`] (HTTP 500) instead of killing a worker.
    pub internal_errors: u64,
    /// Fail-soft responses served with `degraded: true` — partial
    /// answers that survived a shard failure, panic or deadline squeeze.
    pub degraded_queries: u64,
    /// Journal appends that succeeded only after at least one retry
    /// (transient write errors absorbed by the bounded backoff loop).
    pub journal_retries: u64,
    /// Whether the service is in sticky read-only degraded mode:
    /// journal appends exhausted their retries, mutations are refused
    /// with [`WwtError::Unavailable`] (HTTP 503) until an operator
    /// recovers it; queries are unaffected.
    pub read_only: bool,
}

impl ServiceStats {
    /// Fraction of requests in `[0, 1]` that avoided an engine run —
    /// cache hits plus coalesced followers over everything served.
    /// Exactly `0.0` (never `NaN`) when nothing was served yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.coalesced) as f64 / total as f64
        }
    }
}

/// The attached write-ahead journal plus the directory compaction
/// persists the folded index into (when the engine was booted from a
/// saved index directory).
struct JournalState {
    journal: Journal,
    /// Where compaction saves the folded frozen index before truncating
    /// the journal. `None` when the engine has no on-disk home (e.g.
    /// booted from a raw corpus): compaction then *keeps* the journal,
    /// because a restart rebuilds the pre-mutation corpus and needs the
    /// full mutation history to catch up.
    persist_dir: Option<PathBuf>,
}

/// A thread-safe table-search front end over a hot-swappable engine
/// snapshot.
pub struct TableSearchService {
    slot: EngineSlot,
    cache: Option<ShardedCache<Arc<QueryResponse>>>,
    inflight: FlightGroup<Arc<QueryResponse>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    swap_count: AtomicU64,
    deadline_exceeded: AtomicU64,
    /// Serializes live mutations (ingest / remove / compact) so each one
    /// applies to the engine the previous one published. Queries never
    /// take this lock.
    live_lock: Mutex<()>,
    /// The write-ahead journal (if attached) and where compaction
    /// persists the folded index. Only touched under `live_lock` on the
    /// mutation path; `stats()` reads the mirrored atomics instead.
    journal: Mutex<Option<JournalState>>,
    tables_ingested: AtomicU64,
    tables_deleted: AtomicU64,
    compactions: AtomicU64,
    batches_ingested: AtomicU64,
    journal_attached: std::sync::atomic::AtomicBool,
    journal_records: AtomicU64,
    journal_bytes: AtomicU64,
    map_edge_pairs_scored: AtomicU64,
    map_edge_pairs_skipped: AtomicU64,
    map_edge_pairs_memoized: AtomicU64,
    map_early_exit_tables: AtomicU64,
    map_pruned_tables: AtomicU64,
    internal_errors: AtomicU64,
    degraded_queries: AtomicU64,
    journal_retries: AtomicU64,
    /// Sticky read-only degraded mode: set when a journal append
    /// exhausts its retries, cleared only by
    /// [`TableSearchService::clear_read_only`]. Mutations check it up
    /// front; queries never look at it.
    read_only: std::sync::atomic::AtomicBool,
    recorder: FlightRecorder,
    config: ServiceConfig,
}

/// Which serving path produced a response — the flight recorder's
/// `cache` note.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CachePath {
    /// Served straight from the response cache.
    Hit,
    /// Joined an identical in-flight computation.
    Shared,
    /// Ran the engine as the singleflight leader.
    Leader,
    /// Ran the engine after an abandoned flight (no coalescing).
    Fallback,
}

impl CachePath {
    fn label(self) -> &'static str {
        match self {
            CachePath::Hit => "hit",
            CachePath::Shared => "shared",
            CachePath::Leader => "miss (leader)",
            CachePath::Fallback => "miss (fallback)",
        }
    }
}

/// What [`TableSearchService::answer_observed`] returns: the response
/// plus whether *this* call executed the engine (as opposed to serving
/// cached or coalesced bytes) — so callers feeding per-stage histograms
/// never re-observe a pipeline run that already happened.
#[derive(Debug, Clone)]
pub struct ObservedAnswer {
    /// The answer, shared exactly as [`TableSearchService::answer`]
    /// would return it.
    pub response: Arc<QueryResponse>,
    /// True when this call ran the pipeline (singleflight leader,
    /// post-flight fallback, or an explain bypass).
    pub engine_ran: bool,
}

// One service serves many threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableSearchService>();
};

impl TableSearchService {
    /// A service with default configuration.
    pub fn new(engine: Arc<Engine>) -> Self {
        Self::with_config(engine, ServiceConfig::default())
    }

    /// A service with explicit serving knobs.
    pub fn with_config(engine: Arc<Engine>, config: ServiceConfig) -> Self {
        let cache = (config.cache_capacity > 0)
            .then(|| ShardedCache::new(config.cache_capacity, config.cache_shards));
        TableSearchService {
            slot: EngineSlot::new(engine),
            cache,
            inflight: FlightGroup::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            swap_count: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            live_lock: Mutex::new(()),
            journal: Mutex::new(None),
            tables_ingested: AtomicU64::new(0),
            tables_deleted: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            batches_ingested: AtomicU64::new(0),
            journal_attached: std::sync::atomic::AtomicBool::new(false),
            journal_records: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            map_edge_pairs_scored: AtomicU64::new(0),
            map_edge_pairs_skipped: AtomicU64::new(0),
            map_edge_pairs_memoized: AtomicU64::new(0),
            map_early_exit_tables: AtomicU64::new(0),
            map_pruned_tables: AtomicU64::new(0),
            internal_errors: AtomicU64::new(0),
            degraded_queries: AtomicU64::new(0),
            journal_retries: AtomicU64::new(0),
            read_only: std::sync::atomic::AtomicBool::new(false),
            recorder: FlightRecorder::new(config.recorder),
            config,
        }
    }

    /// The engine currently serving. A concurrent [`reload`] may replace
    /// it the moment this returns; one *request* always runs against a
    /// single coherent snapshot internally.
    ///
    /// [`reload`]: TableSearchService::reload
    pub fn engine(&self) -> Arc<Engine> {
        Arc::clone(&self.slot.load().engine)
    }

    /// The current generation-tagged engine snapshot.
    pub fn snapshot(&self) -> Arc<EngineSnapshot> {
        self.slot.load()
    }

    /// The current engine generation (0 until the first reload).
    pub fn generation(&self) -> u64 {
        self.slot.generation()
    }

    /// Swaps in a rebuilt engine and returns its generation. Queries in
    /// flight finish against the snapshot they observed; new queries see
    /// the new engine immediately. Cached responses of earlier
    /// generations are logically invalidated by the generation-qualified
    /// cache key and age out of the LRU — there is no stop-the-world
    /// clear, so the hit rate of unrelated traffic is undisturbed.
    pub fn reload(&self, engine: Arc<Engine>) -> u64 {
        let generation = self.slot.swap(engine);
        self.swap_count.fetch_add(1, Ordering::Relaxed);
        generation
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Ingests one table into the serving engine's mutable delta segment
    /// and publishes the result as a new generation — no full rebuild.
    /// A table whose id already exists (frozen or delta) is replaced.
    /// Returns the generation now serving the table.
    ///
    /// Mutations are serialized by an internal lock so concurrent
    /// ingests/removals/compactions compose instead of clobbering each
    /// other; queries keep flowing against whichever snapshot they
    /// observed.
    pub fn ingest_table(&self, table: WebTable) -> Result<u64, WwtError> {
        self.check_writable()?;
        let _guard = self.live_lock.lock().unwrap();
        let record = JournalRecord::AddTable(table_to_json(&table));
        let next = self.engine().with_table_added(table);
        self.journal_append(std::slice::from_ref(&record))?;
        let generation = self.reload(Arc::new(next));
        self.tables_ingested.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Ingests a whole batch of tables with **one** delta rebuild, one
    /// journal flush and one generation bump — the cost of N single
    /// ingests collapses to roughly the cost of one. Returns the
    /// generation now serving every table in the batch; an empty batch
    /// is a no-op returning the current generation.
    pub fn ingest_tables(&self, tables: Vec<WebTable>) -> Result<u64, WwtError> {
        if tables.is_empty() {
            return Ok(self.generation());
        }
        self.check_writable()?;
        let _guard = self.live_lock.lock().unwrap();
        let records: Vec<JournalRecord> = tables
            .iter()
            .map(|t| JournalRecord::AddTable(table_to_json(t)))
            .collect();
        let count = tables.len() as u64;
        let next = self.engine().with_tables_added(tables);
        self.journal_append(&records)?;
        let generation = self.reload(Arc::new(next));
        self.tables_ingested.fetch_add(count, Ordering::Relaxed);
        self.batches_ingested.fetch_add(1, Ordering::Relaxed);
        Ok(generation)
    }

    /// Removes one table (delta eviction or frozen tombstone) and
    /// publishes the result as a new generation. Returns `Ok(None)` when
    /// the id is unknown (or already tombstoned) — nothing is swapped,
    /// no generation is burned and nothing is journaled.
    pub fn remove_table(&self, id: TableId) -> Result<Option<u64>, WwtError> {
        self.check_writable()?;
        let _guard = self.live_lock.lock().unwrap();
        let Some(next) = self.engine().with_table_removed(id) else {
            return Ok(None);
        };
        self.journal_append(&[JournalRecord::RemoveTable(id)])?;
        let generation = self.reload(Arc::new(next));
        self.tables_deleted.fetch_add(1, Ordering::Relaxed);
        Ok(Some(generation))
    }

    /// Folds the delta segment and tombstones into a freshly built frozen
    /// engine — byte-identical to building from scratch over the live
    /// logical corpus — and publishes it. A no-op (returning the current
    /// generation, swapping nothing) when the engine has no live
    /// mutations. Returns the generation now serving.
    ///
    /// With a journal attached and an on-disk index home configured, the
    /// folded index is persisted first (write-new, rename) and the
    /// journal truncated after — its records are redundant once the fold
    /// is durable. If persisting fails the journal is kept and the error
    /// surfaces; the freshly compacted engine still serves.
    pub fn compact(&self) -> Result<u64, WwtError> {
        self.check_writable()?;
        let _guard = self.live_lock.lock().unwrap();
        let engine = self.engine();
        if !engine.is_live() {
            return Ok(self.generation());
        }
        let next = Arc::new(engine.compacted());
        let generation = self.reload(Arc::clone(&next));
        self.compactions.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.journal.lock().unwrap();
        if let Some(state) = guard.as_mut() {
            if let Some(dir) = state.persist_dir.clone() {
                next.save_to_dir_atomic(&dir)?;
                state.journal.truncate().map_err(WwtError::Io)?;
                self.journal_records
                    .store(state.journal.records(), Ordering::Relaxed);
                self.journal_bytes
                    .store(state.journal.bytes(), Ordering::Relaxed);
            }
        }
        Ok(generation)
    }

    /// Attaches a write-ahead journal: every subsequent live mutation is
    /// appended (and fsync'd, per the journal's policy) *before* it is
    /// acknowledged, so an uncompacted delta survives a crash and
    /// replays at the next boot. `persist_dir` names the engine's
    /// on-disk home (the `--index-path` directory) when it has one:
    /// compaction then persists the folded index there and truncates the
    /// journal; without one the journal is kept across compactions so a
    /// rebuilt-from-source boot can still catch up.
    ///
    /// The caller replays the journal's recovered records into the
    /// engine *before* constructing the service (see
    /// [`Engine::with_journal_replayed`]) and hands the opened journal
    /// here.
    pub fn attach_journal(&self, journal: Journal, persist_dir: Option<PathBuf>) {
        let _guard = self.live_lock.lock().unwrap();
        self.journal_records
            .store(journal.records(), Ordering::Relaxed);
        self.journal_bytes.store(journal.bytes(), Ordering::Relaxed);
        self.journal_attached
            .store(true, std::sync::atomic::Ordering::Relaxed);
        *self.journal.lock().unwrap() = Some(JournalState {
            journal,
            persist_dir,
        });
    }

    /// The attached journal's path, if one is attached.
    pub fn journal_path(&self) -> Option<PathBuf> {
        self.journal
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.journal.path().to_path_buf())
    }

    /// Appends records to the attached journal (a no-op without one),
    /// returning only once they are durable per the fsync policy — the
    /// call that must succeed before a mutation is acknowledged.
    ///
    /// Transient append errors are retried a bounded number of times
    /// with a short backoff (the journal rolls back partial records, so
    /// a retry starts from a clean tail). If every attempt fails the
    /// service enters **sticky read-only degraded mode**: this and all
    /// further mutations are refused with [`WwtError::Unavailable`]
    /// until [`TableSearchService::clear_read_only`], while queries
    /// keep being answered from the already-published engine.
    fn journal_append(&self, records: &[JournalRecord]) -> Result<(), WwtError> {
        const ATTEMPTS: u32 = 3;
        let mut guard = self.journal.lock().unwrap();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        let mut last = None;
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                // 2ms, then 4ms: long enough to ride out an fsync hiccup,
                // short enough that the mutation caller never notices.
                std::thread::sleep(Duration::from_millis(1 << attempt));
            }
            match state.journal.append_all(records) {
                Ok(()) => {
                    self.journal_records
                        .store(state.journal.records(), Ordering::Relaxed);
                    self.journal_bytes
                        .store(state.journal.bytes(), Ordering::Relaxed);
                    if attempt > 0 {
                        self.journal_retries
                            .fetch_add(u64::from(attempt), Ordering::Relaxed);
                    }
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        let e = last.expect("at least one append attempt ran");
        self.read_only
            .store(true, std::sync::atomic::Ordering::Relaxed);
        Err(WwtError::Unavailable(format!(
            "journal append failed {ATTEMPTS} times ({e}); service is read-only until recovery"
        )))
    }

    /// Fast-fail gate at the top of every mutation: refuses with
    /// [`WwtError::Unavailable`] while the service is in sticky
    /// read-only degraded mode.
    fn check_writable(&self) -> Result<(), WwtError> {
        if self.read_only() {
            Err(WwtError::Unavailable(
                "service is read-only (journal degraded); mutations are refused until recovery"
                    .to_string(),
            ))
        } else {
            Ok(())
        }
    }

    /// Whether the service is in sticky read-only degraded mode
    /// (mutations refused, queries unaffected).
    pub fn read_only(&self) -> bool {
        self.read_only.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Clears sticky read-only degraded mode — the operator's recovery
    /// lever (`POST /admin/recover`) once the journal's storage is
    /// healthy again. A no-op when the service is already writable.
    pub fn clear_read_only(&self) {
        self.read_only
            .store(false, std::sync::atomic::Ordering::Relaxed);
    }

    /// Tables currently in the serving engine's delta segment.
    pub fn delta_len(&self) -> usize {
        self.engine().delta_len()
    }

    /// Answers one request: response cache first, then singleflight — if
    /// an identical request is already executing, this caller blocks and
    /// shares the leader's response instead of re-running the engine.
    /// Errors (bad options, expired deadlines) are never cached and
    /// never shared: a failed flight makes each caller compute (and
    /// fail) for itself.
    ///
    /// The snapshot is loaded once up front and the cache/singleflight
    /// key is qualified by its generation, so everything this request
    /// touches — cache hits, shared flights, the engine run itself —
    /// belongs to the one generation the caller observed, even while a
    /// concurrent [`TableSearchService::reload`] swaps the slot.
    pub fn answer(&self, request: &QueryRequest) -> Result<Arc<QueryResponse>, WwtError> {
        self.answer_path(request).map(|(response, _)| response)
    }

    /// [`answer`](TableSearchService::answer) plus which serving path
    /// produced the response, for the flight recorder.
    fn answer_path(
        &self,
        request: &QueryRequest,
    ) -> Result<(Arc<QueryResponse>, CachePath), WwtError> {
        let snapshot = self.slot.load();
        let key = format!("g{}\u{1f}{}", snapshot.generation, request.cache_key());
        if let Some(hit) = self.cache_get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, CachePath::Hit));
        }
        match self.inflight.join(&key, || self.cache_get(&key)) {
            Role::Cached(hit) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((hit, CachePath::Hit))
            }
            Role::Shared(Some(shared)) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Ok((shared, CachePath::Shared))
            }
            // The leader failed (or unwound); coalescing is best-effort,
            // so compute directly — error paths fail fast anyway.
            Role::Shared(None) => self
                .run_engine(&snapshot, request, &key)
                .map(|response| (response, CachePath::Fallback)),
            Role::Leader(guard) => match self.execute(&snapshot, request) {
                Ok(response) => {
                    let response = Arc::new(response);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    // The cache insert happens while the flight closes, so
                    // late joiners either share the flight or hit the cache
                    // in their recheck — never a second engine run.
                    guard.publish(Some(Arc::clone(&response)), || {
                        if let Some(cache) = &self.cache {
                            cache.insert(key.clone(), Arc::clone(&response));
                        }
                    });
                    Ok((response, CachePath::Leader))
                }
                Err(e) => {
                    guard.publish(None, || {});
                    Err(e)
                }
            },
        }
    }

    /// Answers one request under the flight recorder's watch, stamping it
    /// with the caller-supplied `request_id` (the `x-request-id` of the
    /// HTTP layer).
    ///
    /// * `explain` requests bypass the response cache and singleflight
    ///   entirely: each one runs the engine with a fresh enabled
    ///   [`Trace`], so the returned
    ///   [`trace`](wwt_engine::QueryDiagnostics::trace) is this
    ///   execution's, never a cached stranger's — and no trace-carrying
    ///   response is ever cached where a plain request could share it.
    /// * Plain requests take the exact
    ///   [`answer`](TableSearchService::answer) path (byte-identical
    ///   responses, zero tracing overhead in the engine); afterwards a
    ///   stage-level trace is synthesized from the response's
    ///   [`StageTimings`](wwt_engine::StageTimings) for the recorder.
    ///
    /// Every query lands in the flight recorder: the N slowest and N most
    /// recent are retained, and deadline-exceeded / zero-result queries
    /// are additionally kept in the anomaly buffer.
    pub fn answer_observed(
        &self,
        request: &QueryRequest,
        request_id: &str,
    ) -> Result<ObservedAnswer, WwtError> {
        let t0 = Instant::now();
        if request.options.explain {
            let snapshot = self.slot.load();
            let trace = Trace::enabled(request_id);
            trace.note("cache", "bypass (explain)");
            trace.note("generation", snapshot.generation.to_string());
            let result = self.run_isolated(|| snapshot.engine.answer_traced(request, &trace));
            if matches!(result, Err(WwtError::DeadlineExceeded(_))) {
                self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            if let Ok(response) = &result {
                if response.diagnostics.degraded {
                    self.degraded_queries.fetch_add(1, Ordering::Relaxed);
                }
            }
            return match result {
                Ok(response) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let response = Arc::new(response);
                    self.record_flight(request, request_id, t0.elapsed(), Ok(&response), None);
                    Ok(ObservedAnswer {
                        response,
                        engine_ran: true,
                    })
                }
                Err(e) => {
                    self.record_flight(request, request_id, t0.elapsed(), Err(&e), None);
                    Err(e)
                }
            };
        }
        match self.answer_path(request) {
            Ok((response, path)) => {
                self.record_flight(request, request_id, t0.elapsed(), Ok(&response), Some(path));
                Ok(ObservedAnswer {
                    response,
                    engine_ran: matches!(path, CachePath::Leader | CachePath::Fallback),
                })
            }
            Err(e) => {
                self.record_flight(request, request_id, t0.elapsed(), Err(&e), None);
                Err(e)
            }
        }
    }

    /// Captures one finished query in the flight recorder.
    fn record_flight(
        &self,
        request: &QueryRequest,
        request_id: &str,
        elapsed: Duration,
        result: Result<&Arc<QueryResponse>, &WwtError>,
        path: Option<CachePath>,
    ) {
        let (outcome, rows) = match result {
            Ok(response) if response.table.is_empty() => (QueryOutcome::ZeroResults, 0),
            Ok(response) => (QueryOutcome::Ok, response.table.len()),
            Err(WwtError::DeadlineExceeded(_)) => (QueryOutcome::DeadlineExceeded, 0),
            Err(_) => (QueryOutcome::Error, 0),
        };
        let trace = match result {
            // An explain run already carries its own full trace.
            Ok(response) => match &response.diagnostics.trace {
                Some(report) => report.clone(),
                None => synthetic_trace(request_id, response, path, elapsed),
            },
            Err(e) => error_trace(request_id, e, elapsed),
        };
        self.recorder.record(FlightRecord {
            seq: 0, // assigned by the recorder
            request_id: request_id.to_string(),
            query: request.query.to_string(),
            duration_us: elapsed.as_micros() as u64,
            outcome,
            generation: self.slot.generation(),
            rows,
            trace,
        });
    }

    /// The N slowest recorded queries, slowest first.
    pub fn slow_queries(&self) -> Vec<FlightRecord> {
        self.recorder.slowest()
    }

    /// The N most recently recorded queries, newest first.
    pub fn recent_queries(&self) -> Vec<FlightRecord> {
        self.recorder.recent()
    }

    /// Recently recorded deadline-exceeded / zero-result / failed
    /// queries, newest first.
    pub fn anomalous_queries(&self) -> Vec<FlightRecord> {
        self.recorder.anomalies()
    }

    /// The most recent retained record for `request_id`, if any buffer
    /// still holds one.
    pub fn find_trace(&self, request_id: &str) -> Option<FlightRecord> {
        self.recorder.find(request_id)
    }

    fn cache_get(&self, key: &str) -> Option<Arc<QueryResponse>> {
        self.cache.as_ref().and_then(|cache| cache.get(key))
    }

    /// Runs one engine call behind a panic barrier. A pipeline panic
    /// (a poisoned shard worker, an injected `probe.shard=panic`, a
    /// plain bug) becomes [`WwtError::Internal`] instead of unwinding
    /// into the serving stack — so a singleflight leader still closes
    /// its flight with an explicit failure and an HTTP worker answers
    /// 500 instead of dying. Every caught panic ticks
    /// [`ServiceStats::internal_errors`]; the error text carries the
    /// panic message so `/flights` anomalies stay attributable.
    fn run_isolated(
        &self,
        f: impl FnOnce() -> Result<QueryResponse, WwtError>,
    ) -> Result<QueryResponse, WwtError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                self.internal_errors.fetch_add(1, Ordering::Relaxed);
                Err(WwtError::Internal(format!(
                    "query pipeline panicked: {}",
                    wwt_pool::panic_message(payload.as_ref())
                )))
            }
        }
    }

    /// One engine execution against a pinned snapshot, with the
    /// deadline-abort counter maintained and panics isolated.
    fn execute(
        &self,
        snapshot: &EngineSnapshot,
        request: &QueryRequest,
    ) -> Result<QueryResponse, WwtError> {
        let result = self.run_isolated(|| snapshot.engine.answer(request));
        if matches!(result, Err(WwtError::DeadlineExceeded(_))) {
            self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        }
        if let Ok(response) = &result {
            if response.diagnostics.degraded {
                self.degraded_queries.fetch_add(1, Ordering::Relaxed);
            }
            let ms = response.diagnostics.map_stats;
            self.map_edge_pairs_scored
                .fetch_add(ms.edge_pairs_scored, Ordering::Relaxed);
            self.map_edge_pairs_skipped
                .fetch_add(ms.edge_pairs_skipped, Ordering::Relaxed);
            self.map_edge_pairs_memoized
                .fetch_add(ms.edge_pairs_memoized, Ordering::Relaxed);
            self.map_early_exit_tables
                .fetch_add(ms.early_exit_tables, Ordering::Relaxed);
            self.map_pruned_tables
                .fetch_add(ms.pruned_tables, Ordering::Relaxed);
        }
        result
    }

    /// Runs the engine outside any flight (the fallback when a flight
    /// this caller joined was abandoned by its leader).
    fn run_engine(
        &self,
        snapshot: &EngineSnapshot,
        request: &QueryRequest,
        key: &str,
    ) -> Result<Arc<QueryResponse>, WwtError> {
        let response = Arc::new(self.execute(snapshot, request)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(cache) = &self.cache {
            cache.insert(key.to_string(), Arc::clone(&response));
        }
        Ok(response)
    }

    /// Parses and answers a raw `"kw kw | kw kw | ..."` query string.
    pub fn answer_str(&self, query: &str) -> Result<Arc<QueryResponse>, WwtError> {
        let query = Query::parse(query)?;
        self.answer(&QueryRequest::new(query))
    }

    /// Answers a batch of requests concurrently, fanning them over up to
    /// `batch_threads` scoped workers ([`wwt_engine::fan_out`]). Results
    /// come back in input order; each slot carries its own request's
    /// result.
    pub fn answer_batch(
        &self,
        requests: &[QueryRequest],
    ) -> Vec<Result<Arc<QueryResponse>, WwtError>> {
        wwt_engine::fan_out(requests.len(), self.config.batch_threads, |i| {
            self.answer(&requests[i])
        })
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServiceStats {
        let snapshot = self.slot.load();
        ServiceStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: self.cache.as_ref().map(ShardedCache::len).unwrap_or(0),
            shards: self.cache.as_ref().map(ShardedCache::n_shards).unwrap_or(0),
            index_shards: snapshot.engine.n_shards(),
            generation: self.slot.generation(),
            swap_count: self.swap_count.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            docset_cache_entries: snapshot.engine.docset_cache_entries(),
            delta_tables: snapshot.engine.delta_len(),
            delta_tombstones: snapshot.engine.tombstone_len(),
            tables_ingested: self.tables_ingested.load(Ordering::Relaxed),
            tables_deleted: self.tables_deleted.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            batches_ingested: self.batches_ingested.load(Ordering::Relaxed),
            journal_attached: self
                .journal_attached
                .load(std::sync::atomic::Ordering::Relaxed),
            journal_records: self.journal_records.load(Ordering::Relaxed),
            journal_bytes: self.journal_bytes.load(Ordering::Relaxed),
            recorder: self.recorder.counters(),
            map_edge_pairs_scored: self.map_edge_pairs_scored.load(Ordering::Relaxed),
            map_edge_pairs_skipped: self.map_edge_pairs_skipped.load(Ordering::Relaxed),
            map_edge_pairs_memoized: self.map_edge_pairs_memoized.load(Ordering::Relaxed),
            map_early_exit_tables: self.map_early_exit_tables.load(Ordering::Relaxed),
            map_pruned_tables: self.map_pruned_tables.load(Ordering::Relaxed),
            internal_errors: self.internal_errors.load(Ordering::Relaxed),
            degraded_queries: self.degraded_queries.load(Ordering::Relaxed),
            journal_retries: self.journal_retries.load(Ordering::Relaxed),
            read_only: self.read_only(),
        }
    }

    /// Drops every cached response (counters are kept).
    pub fn clear_cache(&self) {
        if let Some(cache) = &self.cache {
            cache.clear();
        }
    }
}

/// A stage-level trace reconstructed from a finished response's
/// [`StageTimings`] — what the flight recorder stores for plain
/// (non-explain) queries, whose hot path records no spans of its own.
/// For cached/coalesced responses the stage spans describe the engine run
/// that originally produced the shared bytes, flagged by the `cache`
/// note.
///
/// [`StageTimings`]: wwt_engine::StageTimings
fn synthetic_trace(
    request_id: &str,
    response: &QueryResponse,
    path: Option<CachePath>,
    elapsed: Duration,
) -> TraceReport {
    let trace = Trace::enabled(request_id);
    if let Some(path) = path {
        trace.note("cache", path.label());
    }
    let timing = &response.diagnostics.timing;
    trace.push_span(stage_span("probe1", timing.index1, &timing.probe1_shards));
    trace.span("read1", timing.read1);
    trace.push_span(stage_span("probe2", timing.index2, &timing.probe2_shards));
    trace.span("read2", timing.read2);
    trace.span("column_map", timing.column_map);
    trace.span("consolidate", timing.consolidate);
    trace.note("candidates", response.diagnostics.n_candidates.to_string());
    trace.note("rows", response.table.len().to_string());
    trace
        .finish(elapsed)
        .expect("an enabled trace always yields a report")
}

/// The minimal trace recorded for a failed query.
fn error_trace(request_id: &str, error: &WwtError, elapsed: Duration) -> TraceReport {
    let trace = Trace::enabled(request_id);
    trace.note("error", error.to_string());
    trace
        .finish(elapsed)
        .expect("an enabled trace always yields a report")
}

/// One pipeline-stage span with its per-shard scatter-gather children.
fn stage_span(name: &'static str, elapsed: Duration, shards: &[Duration]) -> SpanRecord {
    let mut span = SpanRecord::new(name, elapsed);
    for (i, d) in shards.iter().enumerate() {
        span = span.with_child(SpanRecord::new(format!("shard{i}"), *d));
    }
    span
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_core::InferenceAlgorithm;
    use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
    use wwt_engine::{bind_corpus, EngineBuilder, WwtConfig};

    fn small_engine() -> Arc<Engine> {
        let specs: Vec<_> = workload()
            .into_iter()
            .filter(|s| {
                let q = s.query.to_string();
                q.starts_with("country | currency") || q.starts_with("dog breed")
            })
            .collect();
        let corpus = CorpusGenerator::new(CorpusConfig::small()).generate_for(&specs);
        Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine)
    }

    fn tiny_engine() -> Arc<Engine> {
        let page = "<html><body><p>countries and currency</p><table>\
             <tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>India</td><td>Rupee</td></tr>\
             <tr><td>Japan</td><td>Yen</td></tr></table></body></html>";
        let mut b = EngineBuilder::new();
        b.add_html(page);
        Arc::new(b.build())
    }

    #[test]
    fn concurrent_answers_match_serial() {
        let engine = small_engine();
        let requests: Vec<QueryRequest> = [
            "country | currency",
            "dog breed",
            "country | currency | xyz",
            "currency",
        ]
        .iter()
        .map(|s| QueryRequest::parse(s).unwrap())
        .collect();

        // Serial reference answers through a cache-less service.
        let no_cache = ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let serial_service = TableSearchService::with_config(Arc::clone(&engine), no_cache);
        let serial: Vec<_> = requests
            .iter()
            .map(|r| serial_service.answer(r).unwrap())
            .collect();

        // ≥ 4 threads hammer one shared (caching) service.
        let service = Arc::new(TableSearchService::new(engine));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                let requests = &requests;
                let serial = &serial;
                scope.spawn(move || {
                    for _ in 0..3 {
                        for (req, reference) in requests.iter().zip(serial) {
                            let out = service.answer(req).unwrap();
                            assert_eq!(out.table, reference.table);
                            assert_eq!(out.candidates, reference.candidates);
                        }
                    }
                });
            }
        });
        let stats = service.stats();
        assert_eq!(
            stats.hits + stats.misses + stats.coalesced,
            4 * 3 * requests.len() as u64
        );
        assert!(stats.hits > 0, "repeats must hit the cache: {stats:?}");
    }

    #[test]
    fn repeated_request_hits_cache_and_override_misses() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();

        let first = service.answer(&req).unwrap();
        assert_eq!(service.stats().hits, 0);
        assert_eq!(service.stats().misses, 1);

        // Identical request: cache hit, same shared response.
        let second = service.answer(&req).unwrap();
        assert_eq!(service.stats().hits, 1);
        assert_eq!(service.stats().misses, 1);
        assert!(Arc::ptr_eq(&first, &second));

        // An option override changes the key: miss.
        let tuned = service.answer(&req.clone().max_rows(1)).unwrap();
        let stats = service.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!(tuned.table.len() <= 1);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn answer_str_parses_and_rejects() {
        let service = TableSearchService::new(tiny_engine());
        assert!(service.answer_str("country | currency").is_ok());
        assert!(matches!(service.answer_str(" | "), Err(WwtError::Query(_))));
    }

    #[test]
    fn errors_are_not_cached() {
        let service = TableSearchService::new(tiny_engine());
        let bad = QueryRequest::parse("country | currency")
            .unwrap()
            .probe1_k(0);
        assert!(service.answer(&bad).is_err());
        assert!(service.answer(&bad).is_err());
        assert_eq!(service.stats().entries, 0);
    }

    #[test]
    fn batch_matches_individual_answers_and_preserves_order() {
        let service = TableSearchService::new(tiny_engine());
        let requests: Vec<QueryRequest> = vec![
            QueryRequest::parse("country | currency").unwrap(),
            QueryRequest::parse("currency").unwrap(),
            QueryRequest::parse("country | currency")
                .unwrap()
                .probe1_k(0), // error slot
            QueryRequest::parse("country | currency")
                .unwrap()
                .algorithm(InferenceAlgorithm::Independent),
        ];
        let batch = service.answer_batch(&requests);
        assert_eq!(batch.len(), requests.len());
        assert!(batch[2].is_err(), "error requests keep their slot");
        for (i, req) in requests.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let individual = service.answer(req).unwrap();
            let batched = batch[i].as_ref().unwrap();
            assert_eq!(batched.table, individual.table);
        }
    }

    #[test]
    fn cache_disabled_still_serves() {
        let service = TableSearchService::with_config(
            tiny_engine(),
            ServiceConfig {
                cache_capacity: 0,
                cache_shards: 0,
                batch_threads: 2,
                recorder: RecorderConfig::default(),
            },
        );
        let req = QueryRequest::parse("country | currency").unwrap();
        let a = service.answer(&req).unwrap();
        let b = service.answer(&req).unwrap();
        assert_eq!(a.table, b.table);
        let stats = service.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_before_any_request() {
        let service = TableSearchService::new(tiny_engine());
        let stats = service.stats();
        assert_eq!(stats.hits + stats.misses + stats.coalesced, 0);
        let rate = stats.hit_rate();
        assert!(!rate.is_nan(), "hit_rate must never be NaN");
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn singleflight_runs_engine_once_for_concurrent_identical_queries() {
        const CALLERS: usize = 8;
        let service = Arc::new(TableSearchService::new(small_engine()));
        let request = QueryRequest::parse("country | currency").unwrap();
        let barrier = std::sync::Barrier::new(CALLERS);
        let answers: Vec<Arc<QueryResponse>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CALLERS)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let request = request.clone();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        service.answer(&request).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for answer in &answers[1..] {
            assert_eq!(answer.table, answers[0].table);
        }
        let stats = service.stats();
        // Exactly one engine execution: late joiners either shared the
        // flight (coalesced) or hit the cache the leader filled while
        // closing it (hits) — the `misses` counter is the engine-run
        // count.
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(
            stats.hits + stats.coalesced,
            (CALLERS - 1) as u64,
            "{stats:?}"
        );
        // How the 7 followers split between `coalesced` (joined the
        // in-flight computation) and `hits` (arrived after the leader
        // cached) is a scheduling race — on a single core a fast engine
        // can finish before any follower starts, so neither side is
        // asserted non-zero here. `singleflight_coalesces_even_without_a
        // _cache` pins the coalescing path itself.
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn singleflight_coalesces_even_without_a_cache() {
        const CALLERS: usize = 6;
        let no_cache = ServiceConfig {
            cache_capacity: 0,
            ..ServiceConfig::default()
        };
        let service = Arc::new(TableSearchService::with_config(small_engine(), no_cache));
        let request = QueryRequest::parse("country | currency").unwrap();
        let barrier = std::sync::Barrier::new(CALLERS);
        std::thread::scope(|scope| {
            for _ in 0..CALLERS {
                let service = Arc::clone(&service);
                let request = request.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    service.answer(&request).unwrap();
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.misses + stats.coalesced, CALLERS as u64, "{stats:?}");
        // Without a cache a caller arriving after the flight closed runs
        // the engine itself, so allow a straggler — but the barrier makes
        // genuine concurrency overwhelmingly likely.
        assert!(stats.coalesced > 0, "no caller coalesced: {stats:?}");
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn singleflight_errors_stay_per_caller() {
        let service = Arc::new(TableSearchService::new(tiny_engine()));
        let bad = QueryRequest::parse("country | currency")
            .unwrap()
            .probe1_k(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let service = Arc::clone(&service);
                let bad = bad.clone();
                scope.spawn(move || {
                    assert!(matches!(service.answer(&bad), Err(WwtError::Invalid(_))));
                });
            }
        });
        assert_eq!(service.stats().entries, 0);
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();
        service.answer(&req).unwrap();
        service.clear_cache();
        assert_eq!(service.stats().entries, 0);
        service.answer(&req).unwrap();
        assert_eq!(service.stats().misses, 2);
    }

    /// A second tiny engine over a different corpus, to make swaps
    /// observable in answers.
    fn brazil_engine() -> Arc<Engine> {
        let page = "<html><body><p>countries and currency</p><table>\
             <tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>Brazil</td><td>Real</td></tr>\
             <tr><td>India</td><td>Rupee</td></tr></table></body></html>";
        let mut b = EngineBuilder::new();
        b.add_html(page);
        Arc::new(b.build())
    }

    #[test]
    fn reload_swaps_the_engine_and_bumps_generation() {
        let service = TableSearchService::new(tiny_engine());
        assert_eq!(service.generation(), 0);
        let req = QueryRequest::parse("country | currency").unwrap();
        let before = service.answer(&req).unwrap();
        assert!(before.table.rows.iter().all(|r| r.cells[0] != "Brazil"));

        assert_eq!(service.reload(brazil_engine()), 1);
        let stats = service.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.swap_count, 1);

        let after = service.answer(&req).unwrap();
        assert!(
            after.table.rows.iter().any(|r| r.cells[0] == "Brazil"),
            "post-swap answers must reflect the new corpus: {:?}",
            after.table
        );
    }

    #[test]
    fn cache_entries_never_cross_generations() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();
        service.answer(&req).unwrap();
        assert_eq!(service.stats().misses, 1);
        assert_eq!(service.stats().entries, 1);

        // Swapping in *the same* engine must still miss: the key carries
        // the generation, so the gen-0 entry is logically invalidated.
        service.reload(service.engine());
        service.answer(&req).unwrap();
        let stats = service.stats();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.misses, 2, "gen-0 cache entry served across a swap");
        // The stale entry lingers in the LRU until evicted — by design.
        assert_eq!(stats.entries, 2);

        // Within the new generation, repeats hit again.
        service.answer(&req).unwrap();
        assert_eq!(service.stats().hits, 1);
    }

    #[test]
    fn answers_stay_clean_while_reloads_hammer_the_slot() {
        const WORKERS: usize = 4;
        const SWAPS: usize = 30;
        let service = Arc::new(TableSearchService::new(tiny_engine()));
        let req = QueryRequest::parse("country | currency").unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                let service = Arc::clone(&service);
                let req = req.clone();
                let stop = &stop;
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let out = service.answer(&req).unwrap();
                        // Every answer is complete and from one coherent
                        // snapshot — never empty, never torn.
                        assert_eq!(out.table.columns.len(), 2);
                        assert!(!out.table.is_empty());
                    }
                });
            }
            let tiny = tiny_engine();
            let brazil = brazil_engine();
            for i in 0..SWAPS {
                let next = if i % 2 == 0 { &brazil } else { &tiny };
                service.reload(Arc::clone(next));
            }
            stop.store(true, Ordering::Relaxed);
        });
        let stats = service.stats();
        assert_eq!(stats.swap_count, SWAPS as u64);
        assert_eq!(stats.generation, SWAPS as u64);
    }

    fn volcano_table() -> WebTable {
        WebTable::new(
            TableId(9_000),
            "live://volcano",
            Some("Volcano heights".into()),
            vec![vec!["Volcano".into(), "Elevation".into()]],
            vec![
                vec!["Etna".into(), "3329".into()],
                vec!["Fuji".into(), "3776".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn ingest_makes_a_table_queryable_and_bumps_generation() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("volcano | elevation").unwrap();
        assert!(service.answer(&req).unwrap().table.is_empty());

        let generation = service.ingest_table(volcano_table()).unwrap();
        assert_eq!(generation, 1);
        let out = service.answer(&req).unwrap();
        assert!(
            out.table.rows.iter().any(|r| r.cells[0] == "Etna"),
            "ingested table must answer: {:?}",
            out.table
        );

        let stats = service.stats();
        assert_eq!(stats.generation, 1);
        assert_eq!(stats.swap_count, 1);
        assert_eq!(stats.delta_tables, 1);
        assert_eq!(stats.tables_ingested, 1);
        assert_eq!(stats.tables_deleted, 0);
        assert_eq!(stats.compactions, 0);
    }

    #[test]
    fn remove_unknown_table_is_none_and_swaps_nothing() {
        let service = TableSearchService::new(tiny_engine());
        assert_eq!(service.remove_table(TableId(123_456)).unwrap(), None);
        let stats = service.stats();
        assert_eq!(stats.generation, 0);
        assert_eq!(stats.swap_count, 0);
        assert_eq!(stats.tables_deleted, 0);
    }

    #[test]
    fn compact_folds_the_delta_and_keeps_answers() {
        let service = TableSearchService::new(tiny_engine());
        // Compacting a fully frozen engine is a free no-op.
        assert_eq!(service.compact().unwrap(), 0);
        assert_eq!(service.stats().compactions, 0);

        service.ingest_table(volcano_table()).unwrap();
        assert_eq!(service.delta_len(), 1);
        let req = QueryRequest::parse("volcano | elevation").unwrap();
        let before = service.answer(&req).unwrap();

        let generation = service.compact().unwrap();
        assert_eq!(generation, 2);
        let stats = service.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.delta_tables, 0);
        assert_eq!(stats.delta_tombstones, 0);
        assert!(!service.engine().is_live());

        let after = service.answer(&req).unwrap();
        assert_eq!(after.table, before.table);

        // Removing the now-frozen table tombstones it.
        assert_eq!(service.remove_table(TableId(9_000)).unwrap(), Some(3));
        assert!(service.answer(&req).unwrap().table.is_empty());
        let stats = service.stats();
        assert_eq!(stats.tables_deleted, 1);
        assert_eq!(stats.delta_tombstones, 1);
    }

    #[test]
    fn concurrent_ingests_all_land() {
        const WRITERS: usize = 4;
        let service = Arc::new(TableSearchService::new(tiny_engine()));
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let t = WebTable::new(
                        TableId(9_100 + w as u32),
                        "live://w",
                        None,
                        vec![vec!["Volcano".into(), "Elevation".into()]],
                        vec![vec![format!("Peak{w}"), "1000".into()]],
                        vec![],
                    )
                    .unwrap();
                    service.ingest_table(t).unwrap();
                });
            }
        });
        let stats = service.stats();
        assert_eq!(stats.delta_tables, WRITERS);
        assert_eq!(stats.tables_ingested, WRITERS as u64);
        assert_eq!(stats.swap_count, WRITERS as u64);
        assert_eq!(service.engine().n_tables(), 1 + WRITERS);
    }

    #[test]
    fn batch_ingest_is_one_generation_for_n_tables() {
        let service = TableSearchService::new(tiny_engine());
        let tables: Vec<WebTable> = (0..3u32)
            .map(|i| {
                WebTable::new(
                    TableId(9_200 + i),
                    "live://batch",
                    None,
                    vec![vec!["Volcano".into(), "Elevation".into()]],
                    vec![vec![format!("Peak{i}"), "1000".into()]],
                    vec![],
                )
                .unwrap()
            })
            .collect();
        let generation = service.ingest_tables(tables).unwrap();
        assert_eq!(generation, 1, "N tables, one generation bump");
        let stats = service.stats();
        assert_eq!(stats.tables_ingested, 3);
        assert_eq!(stats.batches_ingested, 1);
        assert_eq!(stats.swap_count, 1);
        assert_eq!(stats.delta_tables, 3);
        let req = QueryRequest::parse("volcano | elevation").unwrap();
        assert_eq!(service.answer(&req).unwrap().table.len(), 3);
        // An empty batch swaps nothing and counts nothing.
        assert_eq!(service.ingest_tables(Vec::new()).unwrap(), 1);
        assert_eq!(service.stats().batches_ingested, 1);
    }

    #[test]
    fn journal_makes_mutations_durable_and_truncates_on_compact() {
        let dir = std::env::temp_dir().join(format!("wwt-svc-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = tiny_engine();
        let frozen_tables = engine.n_tables();
        engine.save_to_dir(&dir).unwrap();
        let wal = dir.join("journal.wal");
        let req = QueryRequest::parse("volcano | elevation").unwrap();

        // Boot 1: attach a journal, ingest, then "crash" (drop).
        {
            let service = TableSearchService::new(engine);
            let (journal, replay) = Journal::open(&wal, wwt_index::FsyncPolicy::Never).unwrap();
            assert!(replay.records.is_empty());
            service.attach_journal(journal, Some(dir.clone()));
            service.ingest_table(volcano_table()).unwrap();
            let stats = service.stats();
            assert!(stats.journal_attached);
            assert_eq!(stats.journal_records, 1);
            assert!(stats.journal_bytes > 0);
        }

        // Boot 2: the frozen dir alone has no volcano table; dir +
        // journal replay reconstructs the pre-crash corpus.
        let (journal, replay) = Journal::open(&wal, wwt_index::FsyncPolicy::Never).unwrap();
        assert_eq!(replay.records.len(), 1);
        let recovered = Engine::load_from_dir(&dir, WwtConfig::default())
            .unwrap()
            .with_journal_replayed(&replay.records)
            .unwrap();
        assert_eq!(recovered.delta_len(), 1);
        let service = TableSearchService::new(Arc::new(recovered));
        service.attach_journal(journal, Some(dir.clone()));
        assert!(service
            .answer(&req)
            .unwrap()
            .table
            .rows
            .iter()
            .any(|r| r.cells[0] == "Etna"));

        // Compaction persists the fold into the dir and truncates the
        // journal — the records are redundant once the fold is durable.
        service.compact().unwrap();
        let stats = service.stats();
        assert_eq!(stats.journal_records, 0);
        assert_eq!(stats.journal_bytes, 0);
        assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
        drop(service);

        // Boot 3: the dir alone now carries the folded table.
        let fresh = Engine::load_from_dir(&dir, WwtConfig::default()).unwrap();
        assert_eq!(fresh.n_tables(), frozen_tables + 1);
        assert!(!fresh.is_live());
        let service = TableSearchService::new(Arc::new(fresh));
        assert!(service
            .answer(&req)
            .unwrap()
            .table
            .rows
            .iter()
            .any(|r| r.cells[0] == "Etna"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_without_an_index_home_keeps_the_journal() {
        let dir = std::env::temp_dir().join(format!("wwt-svc-nohome-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("journal.wal");
        let service = TableSearchService::new(tiny_engine());
        let (journal, _) = Journal::open(&wal, wwt_index::FsyncPolicy::Never).unwrap();
        // No persist_dir: the engine was built from a source the journal
        // cannot re-create, so its records stay until an on-disk fold.
        service.attach_journal(journal, None);
        service.ingest_table(volcano_table()).unwrap();
        service.compact().unwrap();
        let stats = service.stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(
            stats.journal_records, 1,
            "journal must survive a fold that was not persisted"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_bypasses_the_cache_and_attaches_a_fresh_trace() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();

        // Warm the plain entry first; explain must not hit it.
        service.answer(&req).unwrap();
        assert_eq!(service.stats().entries, 1);

        let traced = req.clone().explain(true);
        let first = service.answer_observed(&traced, "rid-1").unwrap();
        assert!(first.engine_ran, "explain always runs the engine");
        let first = first.response;
        let second = service.answer_observed(&traced, "rid-2").unwrap().response;

        // Each explain run executed the engine itself and cached nothing.
        let stats = service.stats();
        assert_eq!(stats.hits, 0, "{stats:?}");
        assert_eq!(stats.misses, 3, "{stats:?}");
        assert_eq!(stats.entries, 1, "explain responses must never be cached");

        // Each response carries its own trace, stamped with its own id.
        let report1 = first.diagnostics.trace.as_ref().unwrap();
        let report2 = second.diagnostics.trace.as_ref().unwrap();
        assert_eq!(report1.request_id, "rid-1");
        assert_eq!(report2.request_id, "rid-2");
        assert!(report1.spans.iter().any(|s| s.name == "probe1"));
        assert!(report1.spans.iter().any(|s| s.name == "consolidate"));
        assert_eq!(
            report1.notes.iter().find(|(k, _)| k == "cache").unwrap().1,
            "bypass (explain)"
        );

        // And the answer itself matches the plain path.
        let plain = service.answer(&req).unwrap();
        assert_eq!(first.table, plain.table);
        assert_eq!(first.candidates, plain.candidates);
    }

    #[test]
    fn flight_recorder_captures_outcomes_paths_and_finds_traces() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();

        // Engine run (leader), then a cache hit of the same query.
        assert!(
            service
                .answer_observed(&req, "rid-cold")
                .unwrap()
                .engine_ran
        );
        assert!(
            !service
                .answer_observed(&req, "rid-warm")
                .unwrap()
                .engine_ran
        );
        // A zero-result query and a deadline-exceeded one.
        let empty = QueryRequest::parse("xylophone | zzzz").unwrap();
        service.answer_observed(&empty, "rid-empty").unwrap();
        // An uncached query: deadlines share cache keys with plain
        // requests, so a cached one would be a (successful) free hit.
        let hurried = QueryRequest::parse("currency").unwrap().deadline_ms(0);
        assert!(service.answer_observed(&hurried, "rid-late").is_err());

        let stats = service.stats();
        assert_eq!(stats.recorder.recorded, 4, "{stats:?}");
        assert_eq!(stats.recorder.zero_results, 1, "{stats:?}");
        assert_eq!(stats.recorder.deadline_exceeded, 1, "{stats:?}");

        let cold = service.find_trace("rid-cold").unwrap();
        assert_eq!(cold.outcome, QueryOutcome::Ok);
        assert!(cold.rows > 0);
        assert!(cold.trace.spans.iter().any(|s| s.name == "column_map"));
        assert_eq!(
            cold.trace
                .notes
                .iter()
                .find(|(k, _)| k == "cache")
                .unwrap()
                .1,
            "miss (leader)"
        );
        let warm = service.find_trace("rid-warm").unwrap();
        assert_eq!(
            warm.trace
                .notes
                .iter()
                .find(|(k, _)| k == "cache")
                .unwrap()
                .1,
            "hit"
        );
        let late = service.find_trace("rid-late").unwrap();
        assert_eq!(late.outcome, QueryOutcome::DeadlineExceeded);
        assert!(late.trace.notes.iter().any(|(k, _)| k == "error"));
        assert_eq!(
            service.find_trace("rid-empty").unwrap().outcome,
            QueryOutcome::ZeroResults
        );
        assert!(service.find_trace("rid-unknown").is_none());

        // Anomalies retain exactly the empty and late queries.
        let anomalies = service.anomalous_queries();
        assert_eq!(anomalies.len(), 2);
        // Slowest + recent both see all four.
        assert_eq!(service.recent_queries().len(), 4);
        assert_eq!(service.slow_queries().len(), 4);
    }

    #[test]
    fn expired_deadlines_surface_and_are_counted_not_cached() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();
        let hurried = req.clone().deadline_ms(0);
        assert!(matches!(
            service.answer(&hurried),
            Err(WwtError::DeadlineExceeded(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.entries, 0, "failed requests must not be cached");

        // A generous budget answers normally and shares the cache entry
        // with the unbudgeted form of the query.
        let relaxed = service.answer(&req.clone().deadline_ms(60_000)).unwrap();
        let plain = service.answer(&req).unwrap();
        assert!(Arc::ptr_eq(&relaxed, &plain));
        let stats = service.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.deadline_exceeded, 1);
    }

    #[test]
    fn read_only_mode_refuses_mutations_but_answers_queries() {
        let service = TableSearchService::new(tiny_engine());
        let req = QueryRequest::parse("country | currency").unwrap();
        assert!(!service.read_only());
        assert!(!service.stats().read_only);

        // Force the sticky degraded mode (journal_append sets this when
        // its retries are exhausted; see tests/chaos_resilience.rs for
        // the fault-injected end-to-end path).
        service
            .read_only
            .store(true, std::sync::atomic::Ordering::Relaxed);

        for result in [
            service.ingest_table(volcano_table()).map(Some),
            service.ingest_tables(vec![volcano_table()]).map(Some),
            service.remove_table(TableId(0)).map(|_| None),
            service.compact().map(Some),
        ] {
            match result {
                Err(WwtError::Unavailable(m)) => {
                    assert!(m.contains("read-only"), "message names the mode: {m}")
                }
                other => panic!("mutations must 503 in read-only mode, got {other:?}"),
            }
        }
        // An empty batch is a no-op even in read-only mode.
        assert_eq!(service.ingest_tables(Vec::new()).unwrap(), 0);

        // Queries are untouched by the degraded write path.
        assert!(!service.answer(&req).unwrap().table.is_empty());
        let stats = service.stats();
        assert!(stats.read_only);
        assert_eq!(stats.tables_ingested, 0);
        assert_eq!(stats.swap_count, 0, "no generation was burned");

        // Operator recovery restores the write path.
        service.clear_read_only();
        assert!(!service.read_only());
        assert!(service.ingest_table(volcano_table()).is_ok());
    }
}
