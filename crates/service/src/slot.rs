//! A hot-swappable, generation-tagged engine snapshot holder.
//!
//! [`EngineSlot`] is the std-only primitive behind zero-downtime index
//! rebuilds: readers [`EngineSlot::load`] the current
//! [`EngineSnapshot`] lock-free (two atomic RMWs plus an `Arc` clone —
//! no mutex on the read path), while an admin path
//! [`EngineSlot::swap`]s in a freshly built engine. Each swap bumps a
//! monotonically increasing *generation*, which the service layer folds
//! into cache and singleflight keys so a swap logically invalidates
//! every stale entry without a stop-the-world clear.
//!
//! ## How the lock-free read works
//!
//! The slot owns one strong reference to the current snapshot, stored as
//! a raw pointer ([`Arc::into_raw`]). A reader *pins* itself in one of
//! two epoch-parity reader counters, loads the pointer, clones the `Arc`
//! (bumping the strong count), and unpins. A swapper publishes the new
//! pointer first, *then* flips the epoch, and only drops the old
//! snapshot's reference after the **old** parity's counter drains to
//! zero — readers pinned after the flip land on the new parity, so the
//! wait cannot be starved by fresh load traffic. A reader that pinned
//! before the flip either sees the new pointer (fine: it clones the new
//! snapshot) or the old one, and in the latter case the swapper is still
//! waiting on its pin, so the old snapshot cannot be freed under it.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use wwt_engine::Engine;

/// One immutable engine generation: the engine plus the tag that names
/// it. Everything computed against this snapshot (cache entries,
/// singleflight flights) is keyed by `generation`, so responses never
/// cross from one index build into the next.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    /// The immutable engine of this generation.
    pub engine: Arc<Engine>,
    /// Monotonically increasing swap counter; the boot engine is
    /// generation 0.
    pub generation: u64,
}

/// An atomic holder of the current [`EngineSnapshot`]. Reads are
/// lock-free; swaps are serialized and briefly wait for in-progress
/// reads of the previous snapshot before releasing it.
pub struct EngineSlot {
    /// Raw pointer from `Arc::into_raw`; the slot owns one strong
    /// reference to the pointee until `swap`/`drop` releases it.
    current: AtomicPtr<EngineSnapshot>,
    /// Swap counter; its low bit selects which `readers` slot new
    /// readers pin.
    epoch: AtomicUsize,
    /// In-progress reads pinned per epoch parity.
    readers: [AtomicUsize; 2],
    /// Serializes swappers (readers never take it).
    swap_lock: Mutex<()>,
    /// Cached copy of the current generation for cheap stats reads.
    generation: AtomicU64,
}

// One slot serves many threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineSlot>();
};

impl EngineSlot {
    /// A slot holding `engine` as generation 0.
    pub fn new(engine: Arc<Engine>) -> Self {
        let snapshot = Arc::new(EngineSnapshot {
            engine,
            generation: 0,
        });
        EngineSlot {
            current: AtomicPtr::new(Arc::into_raw(snapshot).cast_mut()),
            epoch: AtomicUsize::new(0),
            readers: [AtomicUsize::new(0), AtomicUsize::new(0)],
            swap_lock: Mutex::new(()),
            generation: AtomicU64::new(0),
        }
    }

    /// The current snapshot. Lock-free: pins an epoch counter, clones
    /// the `Arc`, unpins. The returned snapshot stays valid for as long
    /// as the caller holds it, across any number of concurrent swaps.
    pub fn load(&self) -> Arc<EngineSnapshot> {
        let parity = self.pin();
        let ptr = self.current.load(Ordering::SeqCst);
        // SAFETY: `ptr` came from `Arc::into_raw` and the slot holds one
        // strong reference to it. A swapper that published a different
        // pointer cannot release this one until the epoch parity we are
        // pinned in drains, so the pointee is alive for the whole clone.
        // The temporary `Arc` is forgotten to leave the slot's own
        // reference count untouched.
        let loaded = unsafe {
            let current = Arc::from_raw(ptr.cast_const());
            let clone = Arc::clone(&current);
            std::mem::forget(current);
            clone
        };
        self.readers[parity].fetch_sub(1, Ordering::SeqCst);
        loaded
    }

    /// Pins the calling reader in the current epoch's counter and
    /// returns the parity it pinned. The recheck loop closes the race
    /// where a swap flips the epoch between the parity read and the
    /// increment: pinning the *old* parity after its drain began could
    /// otherwise let the swapper miss this reader.
    fn pin(&self) -> usize {
        loop {
            let parity = self.epoch.load(Ordering::SeqCst) & 1;
            self.readers[parity].fetch_add(1, Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) & 1 == parity {
                return parity;
            }
            self.readers[parity].fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Publishes `engine` as the next generation and returns that
    /// generation. Readers that already loaded the previous snapshot
    /// keep using it (their `Arc` keeps it alive); new loads observe the
    /// new one immediately. Blocks only until reads in progress at the
    /// moment of the swap finish their clone — typically nanoseconds.
    pub fn swap(&self, engine: Arc<Engine>) -> u64 {
        let _serialize = self.swap_lock.lock().unwrap();
        let generation = self.generation.load(Ordering::SeqCst) + 1;
        let snapshot = Arc::new(EngineSnapshot { engine, generation });
        let old = self
            .current
            .swap(Arc::into_raw(snapshot).cast_mut(), Ordering::SeqCst);
        self.generation.store(generation, Ordering::SeqCst);
        // Flip the epoch *after* publishing: readers pinned on the old
        // parity may hold the old pointer; wait them out. Readers that
        // pin from here on land on the new parity and cannot delay the
        // drain.
        let old_parity = self.epoch.fetch_add(1, Ordering::SeqCst) & 1;
        while self.readers[old_parity].load(Ordering::SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `old` is the pointer this slot previously owned one
        // strong reference to; no pinned reader of the old parity
        // remains, and any reader that cloned it already bumped the
        // strong count, so reconstructing and dropping our reference is
        // balanced.
        unsafe { drop(Arc::from_raw(old.cast_const())) };
        generation
    }

    /// The current generation (0 until the first swap). May trail a
    /// concurrent [`EngineSlot::swap`] by an instant; use
    /// [`EngineSlot::load`] when the generation must match an engine.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

impl Drop for EngineSlot {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no reader or swapper is active; the
        // slot still owns exactly one strong reference to `current`.
        unsafe {
            drop(Arc::from_raw(
                self.current.load(Ordering::SeqCst).cast_const(),
            ))
        };
    }
}

impl std::fmt::Debug for EngineSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSlot")
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_engine::EngineBuilder;

    fn engine(marker: &str) -> Arc<Engine> {
        let mut b = EngineBuilder::new();
        b.add_html(&format!(
            "<html><body><p>{marker} currency</p><table>\
             <tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>{marker}</td><td>Rupee</td></tr></table></body></html>"
        ));
        Arc::new(b.build())
    }

    #[test]
    fn boot_snapshot_is_generation_zero() {
        let slot = EngineSlot::new(engine("India"));
        let snap = slot.load();
        assert_eq!(snap.generation, 0);
        assert_eq!(slot.generation(), 0);
        assert_eq!(snap.engine.store().len(), 1);
    }

    #[test]
    fn swap_bumps_generation_and_replaces_engine() {
        let slot = EngineSlot::new(engine("India"));
        let before = slot.load();
        assert_eq!(slot.swap(engine("Japan")), 1);
        assert_eq!(slot.swap(engine("Brazil")), 2);
        let after = slot.load();
        assert_eq!(after.generation, 2);
        assert_eq!(slot.generation(), 2);
        assert!(!Arc::ptr_eq(&before.engine, &after.engine));
        // The pre-swap snapshot the reader held stays alive and intact.
        assert_eq!(before.generation, 0);
        assert_eq!(before.engine.store().len(), 1);
    }

    #[test]
    fn concurrent_loads_and_swaps_stay_coherent() {
        const READERS: usize = 4;
        const SWAPS: usize = 100;
        let slot = Arc::new(EngineSlot::new(engine("g0")));
        let stop = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0u64;
                    while stop.load(Ordering::SeqCst) == 0 {
                        let snap = slot.load();
                        // Generations observed by one reader never go
                        // backwards, and every snapshot is a usable
                        // engine.
                        assert!(snap.generation >= last, "{} < {last}", snap.generation);
                        last = snap.generation;
                        assert_eq!(snap.engine.store().len(), 1);
                    }
                });
            }
            let swapper = {
                let slot = Arc::clone(&slot);
                scope.spawn(move || {
                    for i in 1..=SWAPS {
                        assert_eq!(slot.swap(engine(&format!("g{i}"))), i as u64);
                    }
                })
            };
            swapper.join().unwrap();
            stop.store(1, Ordering::SeqCst);
        });
        assert_eq!(slot.load().generation, SWAPS as u64);
    }
}
