//! Singleflight request coalescing: N concurrent identical cold queries
//! run the engine once.
//!
//! The first caller for a key becomes the *leader* and computes; callers
//! arriving while the flight is open block on a condvar and receive a
//! clone of the leader's successful result. Failed flights publish
//! "no result" and followers retry (typed errors stay per-caller, and
//! engine errors are cheap option-validation failures).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight computation. `state` is `None` while the leader runs,
/// then `Some(result)`; a `None` result means the leader failed.
struct Flight<T> {
    state: Mutex<Option<Option<T>>>,
    cv: Condvar,
}

impl<T> Flight<T> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn publish(&self, result: Option<T>) {
        *self.state.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

impl<T: Clone> Flight<T> {
    /// Blocks until the leader publishes, then returns its result.
    fn wait(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap();
        while state.is_none() {
            state = self.cv.wait(state).unwrap();
        }
        state.clone().unwrap()
    }
}

/// The caller's role for one key, from [`FlightGroup::join`].
pub(crate) enum Role<'a, T> {
    /// This caller must compute and then [`LeaderGuard::publish`].
    Leader(LeaderGuard<'a, T>),
    /// The `recheck` closure produced the value (a cache hit that landed
    /// between the caller's fast-path miss and the flight lock).
    Cached(T),
    /// Another caller computed; here is its result (`None` = it failed;
    /// compute directly, coalescing is best-effort).
    Shared(Option<T>),
}

/// Deduplicates concurrent computations by key.
pub(crate) struct FlightGroup<T> {
    inflight: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> FlightGroup<T> {
    pub(crate) fn new() -> Self {
        FlightGroup {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`. `recheck` runs under the group lock
    /// before a new flight opens — the cache double-check: a leader that
    /// completed between the caller's cache miss and this call has
    /// already populated the cache, and without the recheck this caller
    /// would needlessly recompute.
    pub(crate) fn join(&self, key: &str, recheck: impl FnOnce() -> Option<T>) -> Role<'_, T> {
        let flight = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.entry(key.to_string()) {
                Entry::Occupied(entry) => Arc::clone(entry.get()),
                Entry::Vacant(entry) => {
                    if let Some(hit) = recheck() {
                        return Role::Cached(hit);
                    }
                    let flight = Arc::new(Flight::new());
                    entry.insert(Arc::clone(&flight));
                    return Role::Leader(LeaderGuard {
                        group: self,
                        key: key.to_string(),
                        flight,
                        published: false,
                    });
                }
            }
        };
        Role::Shared(flight.wait())
    }
}

/// Publishes the leader's result and closes the flight. If the leader
/// unwinds without publishing (engine panic), `Drop` publishes a failure
/// so followers never deadlock.
pub(crate) struct LeaderGuard<'a, T> {
    group: &'a FlightGroup<T>,
    key: String,
    flight: Arc<Flight<T>>,
    published: bool,
}

impl<T: Clone> LeaderGuard<'_, T> {
    /// Publishes the result to followers. `commit` runs under the group
    /// lock *before* the flight closes — the service inserts into the
    /// response cache here, so any caller that misses the closed flight
    /// is guaranteed to hit the cache in its `recheck`.
    pub(crate) fn publish(mut self, result: Option<T>, commit: impl FnOnce()) {
        let mut inflight = self.group.inflight.lock().unwrap();
        commit();
        inflight.remove(&self.key);
        drop(inflight);
        self.flight.publish(result);
        self.published = true;
    }
}

impl<T> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.published {
            self.group.inflight.lock().unwrap().remove(&self.key);
            self.flight.publish(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn leader_computes_once_followers_share() {
        let group: Arc<FlightGroup<u64>> = Arc::new(FlightGroup::new());
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(scope.spawn(|| {
                    barrier.wait();
                    match group.join("k", || None) {
                        Role::Leader(guard) => {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the flight open long enough that the
                            // other 7 join as followers.
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            guard.publish(Some(42), || {});
                            42u64
                        }
                        Role::Shared(v) => v.expect("leader succeeded"),
                        Role::Cached(_) => unreachable!("recheck always misses here"),
                    }
                }));
            }
            for h in handles {
                assert_eq!(h.join().unwrap(), 42);
            }
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn failed_leader_lets_followers_retry() {
        let group: FlightGroup<u64> = FlightGroup::new();
        // First caller fails.
        match group.join("k", || None) {
            Role::Leader(guard) => guard.publish(None, || {}),
            _ => panic!("must lead an empty group"),
        }
        // The flight is closed; the next caller leads again.
        assert!(matches!(group.join("k", || None), Role::Leader(_)));
    }

    #[test]
    fn dropped_leader_publishes_failure() {
        let group: Arc<FlightGroup<u64>> = Arc::new(FlightGroup::new());
        let Role::Leader(guard) = group.join("k", || None) else {
            panic!("must lead");
        };
        let waiter = {
            let group = Arc::clone(&group);
            std::thread::spawn(move || match group.join("k", || None) {
                Role::Shared(v) => v,
                Role::Cached(v) => Some(v),
                Role::Leader(guard) => {
                    // The drop below may close the flight before this
                    // thread joins; then leading (and succeeding) is the
                    // correct outcome.
                    guard.publish(Some(7), || {});
                    Some(7)
                }
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(guard); // leader "panicked": unwound without publishing
        let observed = waiter.join().unwrap();
        assert!(observed.is_none() || observed == Some(7));
        // Either way the group is open for a fresh leader afterwards.
        assert!(matches!(group.join("k", || None), Role::Leader(_)));
    }

    #[test]
    fn recheck_short_circuits_new_flight() {
        let group: FlightGroup<u64> = FlightGroup::new();
        match group.join("k", || Some(9)) {
            Role::Cached(9) => {}
            _ => panic!("recheck hit must be returned without a flight"),
        }
        // No flight was left behind.
        assert!(group.inflight.lock().unwrap().is_empty());
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let group: FlightGroup<u64> = FlightGroup::new();
        let Role::Leader(a) = group.join("a", || None) else {
            panic!()
        };
        let Role::Leader(b) = group.join("b", || None) else {
            panic!()
        };
        a.publish(Some(1), || {});
        b.publish(Some(2), || {});
    }
}
