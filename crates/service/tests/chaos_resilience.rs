//! Fault-injected resilience tests for the serving layer.
//!
//! These live in their own integration-test binary because `wwt_chaos`
//! failpoints are process-global: arming one here cannot poison the
//! service's unit tests, which run in a different process. Within this
//! binary every test serializes on [`CHAOS`].

use std::sync::{Arc, Barrier, Mutex};
use wwt_engine::{EngineBuilder, QueryRequest};
use wwt_index::{FsyncPolicy, Journal};
use wwt_model::{TableId, WebTable, WwtError};
use wwt_service::TableSearchService;

/// Failpoints are process-global; every test arms under this lock.
static CHAOS: Mutex<()> = Mutex::new(());

fn tiny_service() -> TableSearchService {
    let page = "<html><body><p>countries and currency</p><table>\
         <tr><th>Country</th><th>Currency</th></tr>\
         <tr><td>India</td><td>Rupee</td></tr>\
         <tr><td>Japan</td><td>Yen</td></tr></table></body></html>";
    let mut b = EngineBuilder::new();
    b.add_html(page);
    TableSearchService::new(Arc::new(b.build()))
}

fn volcano_table() -> WebTable {
    WebTable::new(
        TableId(9_000),
        "live://volcano",
        Some("Volcano heights".into()),
        vec![vec!["Volcano".into(), "Elevation".into()]],
        vec![
            vec!["Etna".into(), "3329".into()],
            vec!["Fuji".into(), "3776".into()],
        ],
        vec![],
    )
    .unwrap()
}

/// A pipeline panic under a singleflight leader must neither hang the
/// followers nor kill any thread: every concurrent caller gets a typed
/// `WwtError::Internal`, and once the fault clears the same query
/// answers normally.
#[test]
fn panicking_leader_never_hangs_followers() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    let service = Arc::new(tiny_service());
    let req = QueryRequest::parse("country | currency").unwrap();

    wwt_chaos::arm("probe.shard=panic").unwrap();
    const CALLERS: usize = 6;
    let barrier = Barrier::new(CALLERS);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..CALLERS {
            let service = Arc::clone(&service);
            let req = req.clone();
            let barrier = &barrier;
            handles.push(scope.spawn(move || {
                barrier.wait();
                service.answer(&req)
            }));
        }
        for h in handles {
            // join() returning at all proves no follower hung on the
            // abandoned flight; the leader's panic was converted, not
            // propagated, so no test thread dies either.
            match h.join().expect("caller thread must not die") {
                Err(WwtError::Internal(m)) => {
                    assert!(m.contains("panicked"), "error names the panic: {m}")
                }
                other => panic!("expected Internal from an injected panic, got {other:?}"),
            }
        }
    });
    let stats = service.stats();
    assert!(
        stats.internal_errors >= 1,
        "caught panics must be counted: {stats:?}"
    );
    assert_eq!(stats.entries, 0, "failed flights must cache nothing");

    // The fault clears; the very same query now answers.
    wwt_chaos::disarm_all();
    assert!(!service.answer(&req).unwrap().table.is_empty());
}

/// The explain path bypasses singleflight but shares the same panic
/// barrier: an injected panic surfaces as `Internal` with the request
/// recorded, never an unwound worker.
#[test]
fn explain_path_isolates_panics_too() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    let service = tiny_service();
    let req = QueryRequest::parse("country | currency")
        .unwrap()
        .explain(true);

    wwt_chaos::arm("map.batch=panic").unwrap();
    let result = service.answer_observed(&req, "rid-chaos");
    wwt_chaos::disarm_all();

    assert!(matches!(result, Err(WwtError::Internal(_))), "{result:?}");
    assert_eq!(service.stats().internal_errors, 1);
    // The failed flight is retained and attributable by request id.
    let record = service.find_trace("rid-chaos").expect("anomaly retained");
    assert!(record
        .trace
        .notes
        .iter()
        .any(|(k, v)| k == "error" && v.contains("internal error")));
}

/// Transient journal-append faults are absorbed by the bounded retry;
/// a persistent fault trips sticky read-only degraded mode (mutations
/// 503, queries unaffected) until the operator recovers the service.
#[test]
fn journal_faults_retry_then_stick_read_only_then_recover() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    let dir = std::env::temp_dir().join(format!("wwt-chaos-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let service = tiny_service();
    let (journal, _) = Journal::open(&dir.join("journal.wal"), FsyncPolicy::Never).unwrap();
    service.attach_journal(journal, None);
    let query = QueryRequest::parse("country | currency").unwrap();

    // One transient fault: the retry loop rides it out and the mutation
    // is acknowledged as if nothing happened.
    wwt_chaos::arm("journal.append=error*1").unwrap();
    service.ingest_table(volcano_table()).unwrap();
    let stats = service.stats();
    assert!(stats.journal_retries >= 1, "{stats:?}");
    assert!(!stats.read_only);
    assert_eq!(stats.journal_records, 1);

    // A persistent fault exhausts the retries: the mutation is refused
    // and the service turns sticky read-only.
    wwt_chaos::arm("journal.append=error").unwrap();
    match service.remove_table(TableId(9_000)) {
        Err(WwtError::Unavailable(m)) => assert!(m.contains("journal append failed"), "{m}"),
        other => panic!("exhausted retries must map to Unavailable, got {other:?}"),
    }
    assert!(service.read_only());
    // Stickiness: even though the next mutation might succeed, it is
    // refused up front — no half-durable acknowledgements.
    match service.ingest_table(volcano_table()) {
        Err(WwtError::Unavailable(m)) => assert!(m.contains("read-only"), "{m}"),
        other => panic!("read-only mode must fail fast, got {other:?}"),
    }
    // Queries never consult the write path.
    assert!(!service.answer(&query).unwrap().table.is_empty());

    // Operator recovery: clear the fault and the mode; mutations flow
    // and land in the journal again.
    wwt_chaos::disarm_all();
    service.clear_read_only();
    service.remove_table(TableId(9_000)).unwrap();
    let stats = service.stats();
    assert!(!stats.read_only);
    assert_eq!(stats.journal_records, 2, "{stats:?}");
    std::fs::remove_dir_all(&dir).ok();
}
