//! The accept loop, worker pool and request dispatch.
//!
//! One acceptor thread feeds accepted connections into a *bounded*
//! `mpsc` channel drained by a fixed pool of worker threads (the channel
//! mutex is the classic std work queue — workers block in `recv` one at
//! a time). When the queue is full the acceptor answers 503 and closes,
//! so an accept flood cannot grow memory without limit; keep-alive
//! connections are additionally bounded by a per-connection request cap
//! and the idle read timeout, so slow clients cannot pin workers
//! forever. Shutdown is graceful by construction: the acceptor stops
//! accepting and drops the channel sender, workers finish every request
//! already accepted — in-flight and queued — and then exit on channel
//! disconnect; [`ServerHandle::shutdown`] joins them all before
//! returning.

use crate::http::{self, ReadError, Request};
use crate::metrics::{Metrics, Route};
use crate::source::EngineSource;
use crate::wire;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wwt_json::Json;
use wwt_model::WwtError;
use wwt_obs::{log, LogLevel, Stage};
use wwt_service::TableSearchService;

/// Process-wide sequence for generated request ids (clients that send no
/// `x-request-id` still get a correlatable one back).
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// The request's `x-request-id`, or a generated `wwt-{pid}-{seq}` one.
/// Echoed on every response and stamped on the query's flight record.
fn request_id_of(request: &Request) -> String {
    match request.header("x-request-id") {
        // Bound and sanitize: the id is echoed into a response header,
        // so strip anything that could split a header line.
        Some(id) if !id.is_empty() && id.len() <= 128 => id
            .chars()
            .filter(|c| c.is_ascii_graphic())
            .collect::<String>(),
        _ => generated_request_id(),
    }
}

fn generated_request_id() -> String {
    format!(
        "wwt-{}-{}",
        std::process::id(),
        REQUEST_SEQ.fetch_add(1, Ordering::Relaxed) + 1
    )
}

/// Serving knobs for one [`serve`] call.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-read socket timeout; an idle keep-alive connection is closed
    /// after this long.
    pub read_timeout: Duration,
    /// Maximum accepted request-body size (413 above it).
    pub max_body_bytes: usize,
    /// Accepted connections allowed to wait for a free worker. Beyond
    /// this the acceptor answers 503 and closes instead of queueing
    /// without bound.
    pub pending_connections: usize,
    /// Requests served on one keep-alive connection before the server
    /// closes it, so a long-lived client cannot pin a worker of the
    /// fixed pool indefinitely.
    pub max_requests_per_connection: usize,
    /// Shared secret required by the admin routes (`POST
    /// /admin/shutdown`, `POST /admin/reload`), via an `x-admin-token`
    /// or `Authorization: Bearer …` header. `None` disables the admin
    /// routes entirely (they answer 404) — remote shutdown/reload must
    /// be opted into, never reachable by default.
    pub admin_token: Option<String>,
    /// Where `POST /admin/reload` rebuilds the engine from. `None`
    /// leaves the route answering 409: the server then has no way to
    /// reconstruct its index.
    pub engine_source: Option<EngineSource>,
    /// Per-route concurrency limit on the expensive routes (`POST
    /// /query` + `POST /query/batch` share one budget, each batch
    /// weighing its slot count): once this many queries are in flight,
    /// further query requests answer 429 with `Retry-After` instead of
    /// queueing behind a saturated engine. Cheap routes (health, stats,
    /// metrics, admin) are never limited, so the server stays observable
    /// under load. `0` disables the limit.
    ///
    /// Sizing note: single-query traffic is also bounded by the worker
    /// pool (at most `workers` requests are ever in dispatch), so for
    /// `/query` alone the gate only engages when set *below* `workers`.
    /// The default of 256 exists for batch traffic, where a handful of
    /// admitted requests can represent hundreds of engine-bound queries.
    pub max_concurrent_queries: usize,
    /// Delta-segment size that triggers a background compaction after a
    /// live ingest (`POST /admin/tables`): once the delta holds this
    /// many tables, the server folds it into a freshly built frozen
    /// engine off the request path. `0` disables auto-compaction —
    /// operators then compact explicitly via `POST /admin/compact`.
    pub max_delta_tables: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(16))
                .unwrap_or(4),
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            pending_connections: 256,
            max_requests_per_connection: 1024,
            admin_token: None,
            engine_source: None,
            max_concurrent_queries: 256,
            max_delta_tables: 0,
        }
    }
}

/// State shared by the acceptor, the workers and the handle.
struct Shared {
    service: Arc<TableSearchService>,
    metrics: Metrics,
    config: ServerConfig,
    addr: SocketAddr,
    /// Once true, the acceptor stops and finished responses close their
    /// connections. Never unset.
    stopping: AtomicBool,
    /// Signalled when `POST /admin/shutdown` asks the owner to stop
    /// (`bool` = a request was seen).
    shutdown_requested: (Mutex<bool>, Condvar),
    /// True while a background engine rebuild is running; a second
    /// `POST /admin/reload` is refused (409) instead of racing it.
    reloading: AtomicBool,
    /// The most recent reload failure, surfaced by the next `/admin/reload`
    /// response so operators see why the generation never bumped.
    last_reload_error: Mutex<Option<String>>,
    /// True while a background delta compaction is running; further
    /// triggers (auto or explicit) are skipped/refused instead of piling
    /// up rebuild threads. The service's own mutation lock keeps the
    /// data safe either way — this flag only bounds thread count.
    compacting: AtomicBool,
    /// Query/batch requests currently being dispatched, gated by
    /// `config.max_concurrent_queries`.
    queries_in_flight: std::sync::atomic::AtomicUsize,
}

/// Acquired slots of the query-concurrency budget; released on drop
/// (including on a panicking dispatch, so a crash never leaks capacity).
struct QueryPermit<'a> {
    shared: &'a Shared,
    weight: usize,
}

impl Drop for QueryPermit<'_> {
    fn drop(&mut self) {
        self.shared
            .queries_in_flight
            .fetch_sub(self.weight, Ordering::SeqCst);
    }
}

/// The shared 429 answer for a saturated query budget.
fn reject_at_capacity(shared: &Shared, route: Route) -> (Route, u16, &'static str, String) {
    shared.metrics.note_query_rejected();
    let err = wire::ApiError {
        status: 429,
        message: format!(
            "query concurrency limit ({}) reached; retry later",
            shared.config.max_concurrent_queries
        ),
    };
    (route, 429, "application/json", wire::encode_error(&err))
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::SeqCst)
    }

    /// Tries to take `weight` slots of the query-concurrency budget
    /// (one per query, so a 64-slot batch weighs 64). Admission is
    /// saturation-based: a request is admitted while the budget is not
    /// yet full and may overshoot it by its own weight — otherwise a
    /// batch heavier than the whole cap could never run — but once
    /// saturated, everything is refused until slots free up. `None`
    /// means answer 429.
    fn try_acquire_query_slots(&self, weight: usize) -> Option<Option<QueryPermit<'_>>> {
        let cap = self.config.max_concurrent_queries;
        if cap == 0 {
            return Some(None); // unlimited: nothing to hold or release
        }
        let prev = self.queries_in_flight.fetch_add(weight, Ordering::SeqCst);
        if prev >= cap {
            self.queries_in_flight.fetch_sub(weight, Ordering::SeqCst);
            None
        } else {
            Some(Some(QueryPermit {
                shared: self,
                weight,
            }))
        }
    }

    /// Flips the stop flag (the polling acceptor observes it within one
    /// poll interval) and wakes anyone parked in
    /// [`ServerHandle::wait_shutdown_requested`].
    fn begin_stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let (lock, cv) = &self.shutdown_requested;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
}

/// A running server: join handles plus the shared state.
///
/// Dropping the handle shuts the server down gracefully; call
/// [`ServerHandle::shutdown`] to do it explicitly.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The service this server fronts.
    pub fn service(&self) -> &Arc<TableSearchService> {
        &self.shared.service
    }

    /// The serving-layer counters.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Blocks until a `POST /admin/shutdown` arrives (or shutdown is
    /// triggered some other way). The binary parks its main thread here.
    pub fn wait_shutdown_requested(&self) {
        let (lock, cv) = &self.shared.shutdown_requested;
        let mut requested = lock.lock().unwrap();
        while !*requested {
            requested = cv.wait(requested).unwrap();
        }
    }

    /// Graceful shutdown: stop accepting, finish every accepted request
    /// (in-flight and queued), join all threads. Returns the total
    /// number of requests served, read *after* the drain so requests
    /// completed during shutdown are counted.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_impl();
        self.shared.metrics.requests_total()
    }

    fn shutdown_impl(&mut self) {
        self.shared.begin_stop();
        if let Some(acceptor) = self.acceptor.take() {
            drop(acceptor.join());
        }
        for worker in self.workers.drain(..) {
            drop(worker.join());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_impl();
        }
    }
}

/// Binds the address and starts serving `service` on a worker pool.
pub fn serve(
    service: Arc<TableSearchService>,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        service,
        metrics: Metrics::new(),
        config,
        addr,
        stopping: AtomicBool::new(false),
        shutdown_requested: (Mutex::new(false), Condvar::new()),
        reloading: AtomicBool::new(false),
        last_reload_error: Mutex::new(None),
        compacting: AtomicBool::new(false),
        queries_in_flight: std::sync::atomic::AtomicUsize::new(0),
    });

    // Bounded: an accept flood beyond the backlog is answered 503 and
    // dropped instead of queueing connections without limit.
    let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
        mpsc::sync_channel(shared.config.pending_connections.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("wwt-http-{i}"))
                .spawn(move || worker_loop(&shared, &rx))
                .expect("spawn http worker")
        })
        .collect();

    // Non-blocking accept with a short poll: the acceptor re-checks the
    // stop flag at least every poll interval, so shutdown can never hang
    // on a blocked `accept` even if the wake-up poke connection fails
    // (firewalled self-connects, exhausted local ports, …).
    listener.set_nonblocking(true)?;
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("wwt-http-accept".to_string())
            .spawn(move || {
                // `tx` lives in this thread: when the loop breaks, the
                // sender drops and workers drain out.
                while !shared.stopping() {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // The worker side expects blocking reads.
                            if stream.set_nonblocking(false).is_err() {
                                continue;
                            }
                            match tx.try_send(stream) {
                                Ok(()) => {}
                                Err(TrySendError::Full(mut stream)) => {
                                    // Backpressure: tell the client to
                                    // retry rather than parking its
                                    // connection in an unbounded queue.
                                    let err = wire::ApiError {
                                        status: 503,
                                        message: "server at capacity; retry later".to_string(),
                                    };
                                    shared.metrics.observe(Route::Other, 503, Duration::ZERO);
                                    // Retry-After tells well-behaved
                                    // clients when backing off is enough
                                    // (the queue drains in well under a
                                    // second unless the pool is wedged).
                                    // The request was never read, so the
                                    // echoed id is a generated one.
                                    let request_id = generated_request_id();
                                    drop(http::write_response_with(
                                        &mut stream,
                                        503,
                                        "application/json",
                                        wire::encode_error(&err).as_bytes(),
                                        false,
                                        &[("retry-after", "1"), ("x-request-id", &request_id)],
                                    ));
                                    // Best-effort drain of request bytes
                                    // that already arrived: closing with
                                    // unread data RSTs the connection,
                                    // which can discard the buffered 503
                                    // before the client reads it.
                                    // Non-blocking and bounded so a
                                    // streaming client cannot stall the
                                    // acceptor.
                                    if stream.set_nonblocking(true).is_ok() {
                                        let mut sink = [0u8; 4096];
                                        for _ in 0..16 {
                                            match stream.read(&mut sink) {
                                                Ok(n) if n > 0 => {}
                                                _ => break,
                                            }
                                        }
                                    }
                                }
                                Err(TrySendError::Disconnected(_)) => break,
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(1)),
                    }
                }
            })
            .expect("spawn http acceptor")
    };

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_loop(shared: &Arc<Shared>, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        // Lock only for the `recv` itself; handling runs unlocked.
        let stream = match rx.lock().unwrap().recv() {
            Ok(stream) => stream,
            Err(_) => break, // acceptor gone and queue drained
        };
        handle_connection(shared, stream);
    }
}

/// Serves one connection until it closes, errors, times out, or the
/// server begins stopping (the current request always completes).
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    drop(stream.set_nodelay(true));
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut served = 0usize;
    loop {
        // Framing errors are observed with the time since the read
        // started (includes keep-alive idle — still truer than zero).
        let read_start = Instant::now();
        let request = match http::read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Disconnected) => return,
            Err(ReadError::Malformed(message)) => {
                let err = wire::ApiError {
                    status: 400,
                    message,
                };
                let body = wire::encode_error(&err);
                shared
                    .metrics
                    .observe(Route::Other, 400, read_start.elapsed());
                // The request never parsed, so no client id was read:
                // a generated one still gives the error a handle in logs.
                let request_id = generated_request_id();
                log!(
                    LogLevel::Warn,
                    "wwt-server",
                    id = request_id;
                    "malformed request: {}", err.message
                );
                drop(http::write_response_with(
                    &mut stream,
                    400,
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[("x-request-id", &request_id)],
                ));
                return;
            }
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let err = wire::ApiError {
                    status: 413,
                    message: format!("body of {declared} bytes exceeds the {limit} byte limit"),
                };
                let body = wire::encode_error(&err);
                shared
                    .metrics
                    .observe(Route::Other, 413, read_start.elapsed());
                let request_id = generated_request_id();
                log!(
                    LogLevel::Warn,
                    "wwt-server",
                    id = request_id;
                    "rejected oversized body: {}", err.message
                );
                drop(http::write_response_with(
                    &mut stream,
                    413,
                    "application/json",
                    body.as_bytes(),
                    false,
                    &[("x-request-id", &request_id)],
                ));
                return;
            }
        };
        let request_id = request_id_of(&request);
        let start = Instant::now();
        shared.metrics.request_started();
        let (route, status, content_type, body) = dispatch(shared, &request, &request_id);
        shared.metrics.observe(route, status, start.elapsed());
        shared.metrics.request_finished();
        served += 1;
        // Finish the in-flight response even while stopping; just do not
        // keep the connection afterwards. The request cap rotates
        // long-lived clients out so they cannot pin a pooled worker
        // forever.
        let keep_alive = request.keep_alive
            && !shared.stopping()
            && served < shared.config.max_requests_per_connection.max(1);
        // Backpressure statuses carry Retry-After: 429 means the
        // concurrency budget is saturated and frees up as soon as an
        // in-flight query finishes (one second is plenty); 503 means
        // the service is in read-only degraded mode, where recovery is
        // an operator action — tell clients to back off longer.
        let extra_headers: &[(&str, &str)] = match status {
            429 => &[("retry-after", "1"), ("x-request-id", &request_id)],
            503 => &[("retry-after", "5"), ("x-request-id", &request_id)],
            _ => &[("x-request-id", &request_id)],
        };
        if http::write_response_with(
            &mut stream,
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
            extra_headers,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// Routes one request; returns `(route label, status, content type,
/// body)`.
fn dispatch(
    shared: &Arc<Shared>,
    request: &Request,
    request_id: &str,
) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    const PROM: &str = "text/plain; version=0.0.4";
    let route = match request.path.as_str() {
        "/query" => Route::Query,
        "/query/batch" => Route::QueryBatch,
        "/healthz" => Route::Healthz,
        "/stats" => Route::Stats,
        "/metrics" => Route::Metrics,
        "/version" => Route::Version,
        "/admin/shutdown" => Route::Shutdown,
        "/admin/reload" => Route::Reload,
        "/admin/recover" => Route::Recover,
        "/admin/tables" => Route::TablesIngest,
        // The exact arm must precede the `/admin/tables/` prefix arm
        // below, or "batch" would be parsed as a table id.
        "/admin/tables/batch" => Route::TablesBatch,
        "/admin/compact" => Route::Compact,
        "/debug/slow_queries" => Route::DebugSlowQueries,
        path if path.starts_with("/admin/tables/") => Route::TableDelete,
        path if path.starts_with("/debug/trace/") => Route::DebugTrace,
        _ => {
            let err = wire::ApiError {
                status: 404,
                message: format!("no route {}", request.path),
            };
            return (Route::Other, 404, JSON, wire::encode_error(&err));
        }
    };
    let expected = match route {
        Route::Query
        | Route::QueryBatch
        | Route::Shutdown
        | Route::Reload
        | Route::Recover
        | Route::TablesIngest
        | Route::TablesBatch
        | Route::Compact => "POST",
        Route::TableDelete => "DELETE",
        _ => "GET",
    };
    if request.method != expected {
        let err = wire::ApiError {
            status: 405,
            message: format!("{} requires {expected}", request.path),
        };
        return (route, 405, JSON, wire::encode_error(&err));
    }
    // The admin routes share one gate: unconfigured ⇒ the routes do not
    // exist (a reachable unauthenticated shutdown/reload would let any
    // client that can hit the socket kill or churn the service); a bad
    // token ⇒ 403. The debug routes sit behind the same gate: flight
    // records replay full query text, which is operator data.
    if matches!(
        route,
        Route::Shutdown
            | Route::Reload
            | Route::Recover
            | Route::TablesIngest
            | Route::TablesBatch
            | Route::TableDelete
            | Route::Compact
            | Route::DebugSlowQueries
            | Route::DebugTrace
    ) {
        match shared.config.admin_token.as_deref() {
            None => {
                let err = wire::ApiError {
                    status: 404,
                    message: "admin routes are disabled (no admin token configured)".to_string(),
                };
                return (route, 404, JSON, wire::encode_error(&err));
            }
            Some(expected) if !admin_authorized(request, expected) => {
                let err = wire::ApiError {
                    status: 403,
                    message: "missing or invalid admin token".to_string(),
                };
                return (route, 403, JSON, wire::encode_error(&err));
            }
            Some(_) => {}
        }
    }
    match route {
        Route::Query => {
            // One query = one slot of the shared budget, taken *before*
            // parsing (rejection must stay cheap under exactly the load
            // that triggers it); the permit is dropped with the arm.
            let Some(_permit) = shared.try_acquire_query_slots(1) else {
                return reject_at_capacity(shared, route);
            };
            match wire::parse_query_request(&request.body) {
                Ok(req) => {
                    // Admission-time shedding: a request that arrives
                    // with its deadline budget already spent can only
                    // burn pipeline work to produce the same 504 —
                    // refuse it before it touches the service. This
                    // stays a hard refusal even under fail_soft:
                    // degraded answers still need *some* budget.
                    if req.options.deadline_ms == Some(0) {
                        shared.metrics.note_query_shed();
                        shared.metrics.note_deadline_exceeded();
                        let err = wire::api_error(&WwtError::DeadlineExceeded("admission".into()));
                        log!(
                            LogLevel::Debug,
                            "wwt-server",
                            id = request_id;
                            "query shed at admission: zero deadline budget"
                        );
                        return (route, err.status, JSON, wire::encode_error(&err));
                    }
                    let answer_start = Instant::now();
                    match shared.service.answer_observed(&req, request_id) {
                        Ok(observed) => {
                            let answer_elapsed = answer_start.elapsed();
                            let response = &observed.response;
                            if observed.engine_ran {
                                // Feed the per-stage histograms from the
                                // timings the engine already measured —
                                // only for runs this request performed,
                                // so cached bytes never re-observe the
                                // pipeline that originally built them.
                                let t = &response.diagnostics.timing;
                                for (stage, elapsed) in [
                                    (Stage::Probe1, t.index1),
                                    (Stage::Read1, t.read1),
                                    (Stage::Probe2, t.index2),
                                    (Stage::Read2, t.read2),
                                    (Stage::ColumnMap, t.column_map),
                                    (Stage::Consolidate, t.consolidate),
                                ] {
                                    shared.metrics.observe_stage(stage, elapsed);
                                }
                            } else {
                                // Cache/coalesced path: the end-to-end
                                // service time *is* the lookup cost.
                                shared
                                    .metrics
                                    .observe_stage(Stage::CacheLookup, answer_elapsed);
                            }
                            let serialize_start = Instant::now();
                            let body = wire::encode_response(&req, response);
                            shared
                                .metrics
                                .observe_stage(Stage::Serialize, serialize_start.elapsed());
                            log!(
                                LogLevel::Debug,
                                "wwt-server",
                                id = request_id;
                                "query answered: {} rows in {} us",
                                response.table.len(),
                                answer_elapsed.as_micros()
                            );
                            (route, 200, JSON, body)
                        }
                        Err(e) => {
                            let err = wire::api_error(&e);
                            if err.status == 504 {
                                shared.metrics.note_deadline_exceeded();
                            }
                            log!(
                                LogLevel::Debug,
                                "wwt-server",
                                id = request_id;
                                "query failed ({}): {}", err.status, err.message
                            );
                            (route, err.status, JSON, wire::encode_error(&err))
                        }
                    }
                }
                Err(err) => (route, err.status, JSON, wire::encode_error(&err)),
            }
        }
        Route::QueryBatch => match wire::parse_batch_request(&request.body) {
            Ok(reqs) => {
                // A batch fans its slots across every core, so it weighs
                // its slot count against the budget — one 64-slot batch
                // loads the engine like 64 queries, and the limiter must
                // count it that way. (Parsing happens first to learn the
                // weight; batch parse cost is bounded by MAX_BATCH_REQUESTS
                // and the body-size cap.)
                let Some(_permit) = shared.try_acquire_query_slots(reqs.len().max(1)) else {
                    return reject_at_capacity(shared, route);
                };
                let results = shared.service.answer_batch(&reqs);
                for slot in &results {
                    if matches!(slot, Err(WwtError::DeadlineExceeded(_))) {
                        shared.metrics.note_deadline_exceeded();
                    }
                }
                (
                    route,
                    200,
                    JSON,
                    wire::encode_batch_response(&reqs, &results),
                )
            }
            Err(err) => (route, err.status, JSON, wire::encode_error(&err)),
        },
        Route::Healthz => (
            route,
            200,
            JSON,
            // Generation in the health body lets a load balancer (or the
            // CI smoke script) detect a completed reload by polling.
            // Status flips to "degraded" in sticky read-only mode — the
            // HTTP code stays 200 on purpose, since the query path is
            // fully serviceable and must not be drained by a balancer.
            format!(
                "{{\"status\":\"{}\",\"generation\":{}}}",
                if shared.service.read_only() {
                    "degraded"
                } else {
                    "ok"
                },
                shared.service.generation()
            ),
        ),
        Route::Stats => {
            let journal_path = shared.service.journal_path();
            (
                route,
                200,
                JSON,
                wire::encode_stats_with(
                    &shared.service.stats(),
                    shared.last_reload_error.lock().unwrap().as_deref(),
                    journal_path.as_deref().and_then(|p| p.to_str()),
                ),
            )
        }
        Route::Metrics => (
            route,
            200,
            PROM,
            shared.metrics.render_prometheus(&shared.service.stats()),
        ),
        Route::Version => {
            // The journal path rides along (JSON-escaped — paths are
            // operator input) so "is durability on, and where?" is
            // answerable from the unauthenticated version probe.
            let journal = shared
                .service
                .journal_path()
                .map(|p| {
                    format!(
                        ",\"journal\":{}",
                        Json::from(p.display().to_string().as_str()).encode()
                    )
                })
                .unwrap_or_default();
            (
                route,
                200,
                JSON,
                format!(
                    "{{\"version\":\"{}\",\"profile\":\"{}\",\"generation\":{},\"shards\":{}{journal}}}",
                    env!("CARGO_PKG_VERSION"),
                    if cfg!(debug_assertions) {
                        "debug"
                    } else {
                        "release"
                    },
                    shared.service.generation(),
                    shared.service.engine().n_shards()
                ),
            )
        }
        Route::Shutdown => {
            shared.begin_stop();
            (
                route,
                200,
                JSON,
                "{\"status\":\"shutting down\"}".to_string(),
            )
        }
        Route::Reload => start_reload(shared),
        Route::Recover => {
            // Operator acknowledgement that the journal fault behind a
            // sticky read-only degradation has been fixed: lift the
            // refusal so mutations flow (and journal) again.
            shared.service.clear_read_only();
            log!(
                LogLevel::Info,
                "wwt-server",
                "read-only mode cleared by operator"
            );
            (
                route,
                200,
                JSON,
                "{\"status\":\"recovered\",\"read_only\":false}".to_string(),
            )
        }
        Route::TablesIngest => ingest_table(shared, request),
        Route::TablesBatch => ingest_tables_batch(shared, request),
        Route::TableDelete => delete_table(shared, request),
        Route::Compact => start_compaction(shared, true),
        Route::DebugSlowQueries => slow_queries(shared),
        Route::DebugTrace => find_trace(shared, request),
        Route::Other => unreachable!("handled above"),
    }
}

/// `GET /debug/slow_queries`: the flight recorder's retained buffers —
/// slowest first, then newest first, then the anomaly ring — plus its
/// monotone counters. Admin-gated: records replay full query text.
fn slow_queries(shared: &Arc<Shared>) -> (Route, u16, &'static str, String) {
    let records = |list: Vec<wwt_service::FlightRecord>| {
        Json::Arr(list.iter().map(|r| r.to_json()).collect())
    };
    let counters = shared.service.stats().recorder;
    let body = Json::obj([
        ("slowest", records(shared.service.slow_queries())),
        ("recent", records(shared.service.recent_queries())),
        ("anomalies", records(shared.service.anomalous_queries())),
        (
            "counters",
            Json::obj([
                ("recorded", Json::from(counters.recorded)),
                ("deadline_exceeded", Json::from(counters.deadline_exceeded)),
                ("zero_results", Json::from(counters.zero_results)),
            ]),
        ),
    ])
    .encode();
    (Route::DebugSlowQueries, 200, "application/json", body)
}

/// `GET /debug/trace/{request_id}`: the retained flight record for one
/// request id; 404 once it ages out of every buffer.
fn find_trace(shared: &Arc<Shared>, request: &Request) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    let id = request.path.trim_start_matches("/debug/trace/");
    match shared.service.find_trace(id) {
        Some(record) => (Route::DebugTrace, 200, JSON, record.to_json().encode()),
        None => {
            let err = wire::ApiError {
                status: 404,
                message: format!("no retained trace for request id {id:?}"),
            };
            (Route::DebugTrace, 404, JSON, wire::encode_error(&err))
        }
    }
}

/// `POST /admin/tables`: parses the body as one table-store JSON line
/// and publishes it into the serving engine's delta segment — queryable
/// on the very next request, no rebuild. Answers 202 with the new
/// generation. When the delta reaches `max_delta_tables`, a background
/// compaction is kicked off (best-effort — a compaction already running
/// just keeps running).
fn ingest_table(shared: &Arc<Shared>, request: &Request) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    let table = match std::str::from_utf8(&request.body)
        .map_err(|_| "body is not valid utf-8".to_string())
        .and_then(|text| wwt_index::table_from_json(text.trim()))
    {
        Ok(table) => table,
        Err(message) => {
            let err = wire::ApiError {
                status: 400,
                message,
            };
            return (Route::TablesIngest, 400, JSON, wire::encode_error(&err));
        }
    };
    let id = table.id.0;
    // A journal-append failure refuses the mutation (500, engine
    // untouched) — the 202 is a durability promise once a journal is
    // attached, so it must never outrun the fsync.
    let generation = match shared.service.ingest_table(table) {
        Ok(generation) => generation,
        Err(e) => {
            let err = wire::api_error(&e);
            return (
                Route::TablesIngest,
                err.status,
                JSON,
                wire::encode_error(&err),
            );
        }
    };
    maybe_start_auto_compaction(shared);
    (
        Route::TablesIngest,
        202,
        JSON,
        format!("{{\"status\":\"ingested\",\"table_id\":{id},\"generation\":{generation}}}"),
    )
}

/// `POST /admin/tables/batch`: parses the body as JSONL — one
/// table-store JSON line per table, the same codec as the single-table
/// route — and publishes every table in one delta rebuild, one journal
/// flush, and one generation bump. All-or-nothing: a line that does not
/// parse rejects the whole batch with 400 before the engine is touched.
fn ingest_tables_batch(
    shared: &Arc<Shared>,
    request: &Request,
) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    let parsed: Result<Vec<_>, String> = match std::str::from_utf8(&request.body) {
        Ok(text) => text
            .lines()
            .map(str::trim)
            .filter(|line| !line.is_empty())
            .enumerate()
            .map(|(i, line)| {
                wwt_index::table_from_json(line).map_err(|e| format!("line {}: {e}", i + 1))
            })
            .collect(),
        Err(_) => Err("body is not valid utf-8".to_string()),
    };
    let tables = match parsed {
        Ok(tables) => tables,
        Err(message) => {
            let err = wire::ApiError {
                status: 400,
                message,
            };
            return (Route::TablesBatch, 400, JSON, wire::encode_error(&err));
        }
    };
    let count = tables.len();
    let generation = match shared.service.ingest_tables(tables) {
        Ok(generation) => generation,
        Err(e) => {
            let err = wire::api_error(&e);
            return (
                Route::TablesBatch,
                err.status,
                JSON,
                wire::encode_error(&err),
            );
        }
    };
    maybe_start_auto_compaction(shared);
    (
        Route::TablesBatch,
        202,
        JSON,
        format!("{{\"status\":\"ingested\",\"tables\":{count},\"generation\":{generation}}}"),
    )
}

/// Kicks off a background compaction when the delta has outgrown
/// `max_delta_tables` (0 disables the trigger). Best-effort: a
/// compaction already running just keeps running.
fn maybe_start_auto_compaction(shared: &Arc<Shared>) {
    let threshold = shared.config.max_delta_tables;
    if threshold > 0 && shared.service.delta_len() >= threshold {
        drop(start_compaction(shared, false));
    }
}

/// `DELETE /admin/tables/{id}`: evicts a delta table or tombstones a
/// frozen one; 404 when the id is unknown (or already gone).
fn delete_table(shared: &Arc<Shared>, request: &Request) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    let raw = request.path.trim_start_matches("/admin/tables/");
    let Ok(id) = raw.parse::<u32>() else {
        let err = wire::ApiError {
            status: 400,
            message: format!("table id {raw:?} is not a non-negative integer"),
        };
        return (Route::TableDelete, 400, JSON, wire::encode_error(&err));
    };
    match shared.service.remove_table(wwt_model::TableId(id)) {
        Ok(Some(generation)) => (
            Route::TableDelete,
            202,
            JSON,
            format!("{{\"status\":\"deleted\",\"table_id\":{id},\"generation\":{generation}}}"),
        ),
        Ok(None) => {
            let err = wire::ApiError {
                status: 404,
                message: format!("no live table with id {id}"),
            };
            (Route::TableDelete, 404, JSON, wire::encode_error(&err))
        }
        Err(e) => {
            let err = wire::api_error(&e);
            (
                Route::TableDelete,
                err.status,
                JSON,
                wire::encode_error(&err),
            )
        }
    }
}

/// Kicks off a background delta compaction. `explicit` routes (`POST
/// /admin/compact`) answer 202/409; the auto-trigger after an ingest
/// reuses the same guard but its response is discarded. The compaction
/// thread rebuilds the frozen engine from the live logical corpus —
/// byte-identical to a from-scratch build — and swaps it in; queries
/// keep flowing against the live snapshot meanwhile.
fn start_compaction(shared: &Arc<Shared>, explicit: bool) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    if shared
        .compacting
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        let err = wire::ApiError {
            status: 409,
            message: "a compaction is already in progress".to_string(),
        };
        return (Route::Compact, 409, JSON, wire::encode_error(&err));
    }
    if explicit && !shared.service.engine().is_live() {
        shared.compacting.store(false, Ordering::SeqCst);
        return (
            Route::Compact,
            200,
            JSON,
            format!(
                "{{\"status\":\"clean\",\"generation\":{}}}",
                shared.service.generation()
            ),
        );
    }
    let generation = shared.service.generation();
    let worker = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("wwt-compact".to_string())
        .spawn(move || {
            // A compaction error after the swap means the folded index
            // could not be persisted (or the journal not truncated) —
            // the serving engine is still correct, so log and carry on;
            // the journal keeps its records and replays at next boot.
            match worker.service.compact() {
                Ok(generation) => log!(
                    LogLevel::Info,
                    "wwt-server",
                    "delta compacted: generation {generation}"
                ),
                Err(e) => log!(
                    LogLevel::Error,
                    "wwt-server",
                    "compaction could not persist its result: {e}"
                ),
            }
            worker.compacting.store(false, Ordering::SeqCst);
        });
    if spawned.is_err() {
        shared.compacting.store(false, Ordering::SeqCst);
        let err = wire::ApiError {
            status: 500,
            message: "could not spawn the compaction thread".to_string(),
        };
        return (Route::Compact, 500, JSON, wire::encode_error(&err));
    }
    (
        Route::Compact,
        202,
        JSON,
        format!("{{\"status\":\"compacting\",\"generation\":{generation}}}"),
    )
}

/// Kicks off a background engine rebuild + swap. Answers 202 with the
/// generation being replaced; the caller polls `/healthz` (or
/// `/version`) until the generation bumps. Refused with 409 when no
/// engine source is configured or a rebuild is already running.
fn start_reload(shared: &Arc<Shared>) -> (Route, u16, &'static str, String) {
    const JSON: &str = "application/json";
    let Some(source) = shared.config.engine_source.clone() else {
        let err = wire::ApiError {
            status: 409,
            message: "reload unavailable: no --corpus-dir/--index-path engine source configured"
                .to_string(),
        };
        return (Route::Reload, 409, JSON, wire::encode_error(&err));
    };
    if shared
        .reloading
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        let err = wire::ApiError {
            status: 409,
            message: "a reload is already in progress".to_string(),
        };
        return (Route::Reload, 409, JSON, wire::encode_error(&err));
    }
    let generation = shared.service.generation();
    // Peek, never consume: the pending failure stays readable (here and
    // in `GET /stats`) until a reload succeeds and clears it.
    let last_error = shared
        .last_reload_error
        .lock()
        .unwrap()
        .clone()
        .map(|e| {
            format!(
                ",\"last_error\":{}",
                wwt_json::Json::from(e.as_str()).encode()
            )
        })
        .unwrap_or_default();
    let worker = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("wwt-reload".to_string())
        .spawn(move || {
            // Rebuild with the *current* engine's online config and
            // shard count, so tuned deployments keep their knobs — and
            // their scatter-gather layout — across generations.
            let engine = worker.service.engine();
            let config = engine.config().clone();
            let shards = engine.n_shards();
            drop(engine);
            // The failpoint sits where a real source would touch disk or
            // network, so chaos runs exercise the failure branch below
            // (counter + retained last_error) without a broken corpus.
            let result = wwt_chaos::io_failpoint(wwt_chaos::RELOAD_BUILD)
                .map_err(WwtError::Io)
                .and_then(|()| source.build_sharded(config, Some(shards)));
            let mut last_error = worker.last_reload_error.lock().unwrap();
            match result {
                Ok(engine) => {
                    let generation = worker.service.reload(Arc::new(engine));
                    *last_error = None;
                    log!(
                        LogLevel::Info,
                        "wwt-server",
                        "engine reloaded: generation {generation}"
                    );
                }
                Err(e) => {
                    worker.metrics.note_reload_failure();
                    *last_error = Some(e.to_string());
                    log!(LogLevel::Error, "wwt-server", "engine reload failed: {e}");
                }
            }
            worker.reloading.store(false, Ordering::SeqCst);
        });
    if spawned.is_err() {
        shared.reloading.store(false, Ordering::SeqCst);
        let err = wire::ApiError {
            status: 500,
            message: "could not spawn the reload thread".to_string(),
        };
        return (Route::Reload, 500, JSON, wire::encode_error(&err));
    }
    (
        Route::Reload,
        202,
        JSON,
        format!("{{\"status\":\"reloading\",\"generation\":{generation}{last_error}}}"),
    )
}

/// Whether a request carries the configured admin token, either as
/// `x-admin-token: <token>` or `Authorization: Bearer <token>`.
fn admin_authorized(request: &Request, expected: &str) -> bool {
    let bearer = format!("Bearer {expected}");
    request
        .header("x-admin-token")
        .is_some_and(|t| constant_time_eq(t, expected))
        || request
            .header("authorization")
            .is_some_and(|t| constant_time_eq(t, &bearer))
}

/// Token comparison that does not short-circuit on the first differing
/// byte, so response timing leaks nothing about the prefix matched.
fn constant_time_eq(a: &str, b: &str) -> bool {
    a.len() == b.len()
        && a.bytes()
            .zip(b.bytes())
            .fold(0u8, |acc, (x, y)| acc | (x ^ y))
            == 0
}
