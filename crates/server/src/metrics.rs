//! Request counters, a latency histogram and per-stage pipeline
//! histograms, rendered as Prometheus text exposition format (version
//! 0.0.4) for `GET /metrics`.
//!
//! Every exported series:
//!
//! | Series | Kind | Meaning |
//! |---|---|---|
//! | `wwt_http_requests_total{route,code}` | counter | Requests served, by route label and status code. |
//! | `wwt_http_request_duration_seconds` | histogram | End-to-end request handling latency (12 buckets, 100 µs – 2.5 s). |
//! | `wwt_http_requests_in_flight` | gauge | Requests currently being dispatched. |
//! | `wwt_stage_duration_us{stage}` | histogram | Query pipeline stage wall-clock in microseconds (12 buckets, 50 µs – 250 ms) for `probe1`, `read1`, `probe2`, `read2`, `column_map`, `consolidate`, plus the serving-layer `cache_lookup` and `serialize` stages. |
//! | `wwt_cache_hits_total` | counter | Requests served from the response cache. |
//! | `wwt_cache_misses_total` | counter | Requests that ran the engine. |
//! | `wwt_cache_coalesced_total` | counter | Requests that joined an identical in-flight computation. |
//! | `wwt_cache_entries` | gauge | Responses currently cached. |
//! | `wwt_http_deadline_exceeded_total` | counter | Requests refused with 504 (expired `deadline_ms`). |
//! | `wwt_engine_generation` | gauge | Generation of the engine snapshot currently serving. |
//! | `wwt_engine_swaps_total` | counter | Engine snapshots hot-swapped in since boot. |
//! | `wwt_engine_reload_failures_total` | counter | Engine reloads that failed to build or swap. |
//! | `wwt_http_concurrency_rejected_total` | counter | Query requests answered 429 at the concurrency limit. |
//! | `wwt_index_shards` | gauge | Index shards the engine scatter-gathers over. |
//! | `wwt_docset_cache_entries` | gauge | Entries in the bounded doc-set probe memo. |
//! | `wwt_delta_tables` | gauge | Tables in the mutable delta segment. |
//! | `wwt_delta_tombstones` | gauge | Frozen tables shadowed by a tombstone or re-ingested copy. |
//! | `wwt_tables_ingested_total` | counter | Tables accepted by live ingest since boot. |
//! | `wwt_tables_deleted_total` | counter | Tables removed by live delete since boot. |
//! | `wwt_compactions_total` | counter | Delta-into-frozen compactions since boot. |
//! | `wwt_batches_ingested_total` | counter | Multi-table ingest batches accepted since boot (their tables also count in `wwt_tables_ingested_total`). |
//! | `wwt_journal_attached` | gauge | 1 when a write-ahead journal is attached (mutations are fsync'd before the 202), else 0. |
//! | `wwt_journal_records` | gauge | Intact mutation records currently in the journal (drops to 0 when compaction truncates it). |
//! | `wwt_journal_bytes` | gauge | Bytes of intact records currently in the journal. |
//! | `wwt_flight_records_total` | counter | Queries captured by the slow-query flight recorder. |
//! | `wwt_flight_deadline_exceeded_total` | counter | Recorded queries that tripped their deadline. |
//! | `wwt_flight_zero_results_total` | counter | Recorded queries that answered an empty table. |
//! | `wwt_map_edge_pairs_scored_total` | counter | Column pairs exactly scored during edge construction. |
//! | `wwt_map_edge_pairs_skipped_total` | counter | Column pairs skipped by the content-signature edge index. |
//! | `wwt_map_edge_pairs_memoized_total` | counter | Column pairs replayed from the cross-query pair memo. |
//! | `wwt_map_early_exit_tables_total` | counter | Tables whose relevant upper bound could not beat all-`nr`. |
//! | `wwt_map_pruned_tables_total` | counter | Tables the `early_exit` knob excluded from edge construction. |
//! | `wwt_internal_errors_total` | counter | Pipeline panics caught at the service boundary and answered 500. |
//! | `wwt_degraded_queries_total` | counter | Fail-soft responses served with `degraded: true` (partial results). |
//! | `wwt_journal_retries_total` | counter | Journal appends that needed at least one retry before succeeding. |
//! | `wwt_read_only` | gauge | 1 while the service is in sticky read-only degraded mode (mutations answer 503), else 0. |
//! | `wwt_queries_shed_total` | counter | Queries shed at admission (504 before dispatch) because their deadline budget was already spent. |

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use wwt_obs::{Stage, StageHistograms};
use wwt_service::ServiceStats;

/// Histogram bucket upper bounds, in seconds. Spans cached hits (tens of
/// microseconds) through cold large-corpus queries (hundreds of ms).
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    0.000_1, 0.000_25, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0, 2.5,
];

/// The route label of a request, for per-route counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Route {
    /// `POST /query`.
    Query,
    /// `POST /query/batch`.
    QueryBatch,
    /// `GET /healthz`.
    Healthz,
    /// `GET /stats`.
    Stats,
    /// `GET /metrics`.
    Metrics,
    /// `GET /version`.
    Version,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// `POST /admin/reload`.
    Reload,
    /// `POST /admin/recover` (clear sticky read-only mode).
    Recover,
    /// `POST /admin/tables` (live ingest).
    TablesIngest,
    /// `POST /admin/tables/batch` (batched live ingest).
    TablesBatch,
    /// `DELETE /admin/tables/{id}`.
    TableDelete,
    /// `POST /admin/compact`.
    Compact,
    /// `GET /debug/slow_queries`.
    DebugSlowQueries,
    /// `GET /debug/trace/{request_id}`.
    DebugTrace,
    /// Anything else (404/405/413 traffic).
    Other,
}

impl Route {
    fn label(self) -> &'static str {
        match self {
            Route::Query => "query",
            Route::QueryBatch => "query_batch",
            Route::Healthz => "healthz",
            Route::Stats => "stats",
            Route::Metrics => "metrics",
            Route::Version => "version",
            Route::Shutdown => "shutdown",
            Route::Reload => "reload",
            Route::Recover => "recover",
            Route::TablesIngest => "tables_ingest",
            Route::TablesBatch => "tables_batch",
            Route::TableDelete => "table_delete",
            Route::Compact => "compact",
            Route::DebugSlowQueries => "debug_slow_queries",
            Route::DebugTrace => "debug_trace",
            Route::Other => "other",
        }
    }
}

/// Serving-layer counters; one instance shared by every worker.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests answered (any route, any status).
    requests_total: AtomicU64,
    /// Requests currently being dispatched.
    in_flight: AtomicU64,
    /// Cumulative request-handling time in microseconds.
    latency_sum_us: AtomicU64,
    /// Requests per histogram bucket (`LATENCY_BUCKETS_S`, cumulative
    /// counts are computed at render time; each observation lands in its
    /// first fitting bucket; overflows only count toward `+Inf`).
    latency_buckets: [AtomicU64; LATENCY_BUCKETS_S.len()],
    /// Requests by `(route, status)` label pair.
    by_route_status: Mutex<BTreeMap<(Route, u16), u64>>,
    /// Requests (or batch slots) refused because their `deadline_ms`
    /// budget expired — the 504 mapping's dedicated counter.
    deadline_exceeded: AtomicU64,
    /// Engine reloads that failed to build/swap (successful swaps show
    /// up as the service's `swap_count`).
    reload_failures: AtomicU64,
    /// Query/batch requests answered 429 because the per-route
    /// concurrency limit was saturated.
    queries_rejected: AtomicU64,
    /// Queries answered 504 at admission, before any dispatch, because
    /// their deadline budget was already spent on arrival.
    queries_shed: AtomicU64,
    /// Per-pipeline-stage duration histograms
    /// (`wwt_stage_duration_us{stage=…}`), fed from each answered
    /// query's [`StageTimings`](wwt_engine::StageTimings) plus the
    /// serving-layer cache-lookup and serialization measurements — the
    /// hot path pays only relaxed atomic bucket increments.
    stage: StageHistograms,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one handled request.
    pub fn observe(&self, route: Route, status: u16, elapsed: Duration) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_us
            .fetch_add(elapsed.as_micros() as u64, Ordering::Relaxed);
        let secs = elapsed.as_secs_f64();
        if let Some(i) = LATENCY_BUCKETS_S.iter().position(|&le| secs <= le) {
            self.latency_buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        *self
            .by_route_status
            .lock()
            .unwrap()
            .entry((route, status))
            .or_insert(0) += 1;
    }

    /// Marks a request as entering dispatch (pair with
    /// [`Metrics::request_finished`]).
    pub fn request_started(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// Marks a dispatched request as finished.
    pub fn request_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests currently being dispatched.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Total requests handled so far.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Records one deadline-expired request or batch slot.
    pub fn note_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline-expired requests so far.
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Records one failed engine reload.
    pub fn note_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Failed engine reloads so far.
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// Records one pipeline-stage duration in the
    /// `wwt_stage_duration_us` histogram family.
    pub fn observe_stage(&self, stage: Stage, elapsed: Duration) {
        self.stage.observe(stage, elapsed.as_micros() as u64);
    }

    /// The per-stage histogram registry.
    pub fn stage_histograms(&self) -> &StageHistograms {
        &self.stage
    }

    /// Records one query rejected at the concurrency limit (429).
    pub fn note_query_rejected(&self) {
        self.queries_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Concurrency-limit rejections so far.
    pub fn queries_rejected(&self) -> u64 {
        self.queries_rejected.load(Ordering::Relaxed)
    }

    /// Records one query shed at admission (its deadline budget was
    /// already spent before dispatch could start).
    pub fn note_query_shed(&self) {
        self.queries_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Admission-shed queries so far.
    pub fn queries_shed(&self) -> u64 {
        self.queries_shed.load(Ordering::Relaxed)
    }

    /// Renders every series in Prometheus text format, folding in the
    /// service's cache counters.
    pub fn render_prometheus(&self, cache: &ServiceStats) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str(
            "# HELP wwt_http_requests_total HTTP requests served, by route and status code.\n",
        );
        out.push_str("# TYPE wwt_http_requests_total counter\n");
        let by_route = self.by_route_status.lock().unwrap().clone();
        for ((route, status), count) in &by_route {
            out.push_str(&format!(
                "wwt_http_requests_total{{route=\"{}\",code=\"{status}\"}} {count}\n",
                route.label()
            ));
        }

        out.push_str("# HELP wwt_http_request_duration_seconds Request handling latency.\n");
        out.push_str("# TYPE wwt_http_request_duration_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in LATENCY_BUCKETS_S.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "wwt_http_request_duration_seconds_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        // Read the total *after* the buckets and clamp: a concurrent
        // observe between the two reads must never make a finite bucket
        // exceed +Inf (Prometheus treats a non-monotone histogram as
        // corrupt).
        let total = self.requests_total().max(cumulative);
        out.push_str(&format!(
            "wwt_http_request_duration_seconds_bucket{{le=\"+Inf\"}} {total}\n"
        ));
        out.push_str(&format!(
            "wwt_http_request_duration_seconds_sum {}\n",
            self.latency_sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "wwt_http_request_duration_seconds_count {total}\n"
        ));
        out.push_str(
            "# HELP wwt_http_requests_in_flight Requests currently being dispatched.\n\
             # TYPE wwt_http_requests_in_flight gauge\n",
        );
        out.push_str(&format!(
            "wwt_http_requests_in_flight {}\n",
            self.in_flight()
        ));

        self.stage.render_prometheus(&mut out);

        for (name, help, kind, value) in [
            (
                "wwt_cache_hits_total",
                "Requests served from the response cache.",
                "counter",
                cache.hits,
            ),
            (
                "wwt_cache_misses_total",
                "Requests that ran the engine.",
                "counter",
                cache.misses,
            ),
            (
                "wwt_cache_coalesced_total",
                "Requests served by joining an identical in-flight computation.",
                "counter",
                cache.coalesced,
            ),
            (
                "wwt_cache_entries",
                "Responses currently cached.",
                "gauge",
                cache.entries as u64,
            ),
            (
                "wwt_http_deadline_exceeded_total",
                "Requests refused with 504 because their deadline_ms budget expired.",
                "counter",
                self.deadline_exceeded(),
            ),
            (
                "wwt_engine_generation",
                "Generation of the engine snapshot currently serving.",
                "gauge",
                cache.generation,
            ),
            (
                "wwt_engine_swaps_total",
                "Engine snapshots hot-swapped in since boot.",
                "counter",
                cache.swap_count,
            ),
            (
                "wwt_engine_reload_failures_total",
                "Engine reloads that failed to build or swap.",
                "counter",
                self.reload_failures(),
            ),
            (
                "wwt_http_concurrency_rejected_total",
                "Query requests answered 429 at the per-route concurrency limit.",
                "counter",
                self.queries_rejected(),
            ),
            (
                "wwt_index_shards",
                "Index shards the serving engine scatter-gathers over.",
                "gauge",
                cache.index_shards as u64,
            ),
            (
                "wwt_docset_cache_entries",
                "Entries resident in the bounded doc-set probe memo.",
                "gauge",
                cache.docset_cache_entries as u64,
            ),
            (
                "wwt_delta_tables",
                "Tables in the serving engine's mutable delta segment.",
                "gauge",
                cache.delta_tables as u64,
            ),
            (
                "wwt_delta_tombstones",
                "Frozen tables shadowed by a tombstone or re-ingested copy.",
                "gauge",
                cache.delta_tombstones as u64,
            ),
            (
                "wwt_tables_ingested_total",
                "Tables accepted by live ingest since boot.",
                "counter",
                cache.tables_ingested,
            ),
            (
                "wwt_tables_deleted_total",
                "Tables removed by live delete since boot.",
                "counter",
                cache.tables_deleted,
            ),
            (
                "wwt_compactions_total",
                "Delta-into-frozen compactions performed since boot.",
                "counter",
                cache.compactions,
            ),
            (
                "wwt_batches_ingested_total",
                "Multi-table ingest batches accepted since boot.",
                "counter",
                cache.batches_ingested,
            ),
            (
                "wwt_journal_attached",
                "1 when a write-ahead journal is attached, else 0.",
                "gauge",
                cache.journal_attached as u64,
            ),
            (
                "wwt_journal_records",
                "Intact mutation records currently in the write-ahead journal.",
                "gauge",
                cache.journal_records,
            ),
            (
                "wwt_journal_bytes",
                "Bytes of intact records currently in the write-ahead journal.",
                "gauge",
                cache.journal_bytes,
            ),
            (
                "wwt_flight_records_total",
                "Queries captured by the slow-query flight recorder.",
                "counter",
                cache.recorder.recorded,
            ),
            (
                "wwt_flight_deadline_exceeded_total",
                "Recorded queries that tripped their deadline budget.",
                "counter",
                cache.recorder.deadline_exceeded,
            ),
            (
                "wwt_flight_zero_results_total",
                "Recorded queries that answered an empty table.",
                "counter",
                cache.recorder.zero_results,
            ),
            (
                "wwt_map_edge_pairs_scored_total",
                "Column pairs exactly scored during edge construction.",
                "counter",
                cache.map_edge_pairs_scored,
            ),
            (
                "wwt_map_edge_pairs_skipped_total",
                "Column pairs skipped by the content-signature edge index.",
                "counter",
                cache.map_edge_pairs_skipped,
            ),
            (
                "wwt_map_edge_pairs_memoized_total",
                "Column pairs replayed from the cross-query pair memo.",
                "counter",
                cache.map_edge_pairs_memoized,
            ),
            (
                "wwt_map_early_exit_tables_total",
                "Tables whose relevant upper bound could not beat all-nr.",
                "counter",
                cache.map_early_exit_tables,
            ),
            (
                "wwt_map_pruned_tables_total",
                "Tables the early_exit knob excluded from edge construction.",
                "counter",
                cache.map_pruned_tables,
            ),
            (
                "wwt_internal_errors_total",
                "Pipeline panics caught at the service boundary and answered 500.",
                "counter",
                cache.internal_errors,
            ),
            (
                "wwt_degraded_queries_total",
                "Fail-soft responses served with degraded: true (partial results).",
                "counter",
                cache.degraded_queries,
            ),
            (
                "wwt_journal_retries_total",
                "Journal appends that needed at least one retry before succeeding.",
                "counter",
                cache.journal_retries,
            ),
            (
                "wwt_read_only",
                "1 while the service is in sticky read-only degraded mode, else 0.",
                "gauge",
                cache.read_only as u64,
            ),
            (
                "wwt_queries_shed_total",
                "Queries answered 504 at admission because their deadline budget was spent.",
                "counter",
                self.queries_shed(),
            ),
        ] {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_stats() -> ServiceStats {
        ServiceStats {
            hits: 3,
            misses: 2,
            coalesced: 1,
            entries: 2,
            shards: 8,
            index_shards: 4,
            generation: 4,
            swap_count: 4,
            deadline_exceeded: 0,
            docset_cache_entries: 5,
            delta_tables: 2,
            delta_tombstones: 1,
            tables_ingested: 6,
            tables_deleted: 1,
            compactions: 3,
            batches_ingested: 2,
            journal_attached: true,
            journal_records: 7,
            journal_bytes: 1024,
            recorder: wwt_service::RecorderCounters {
                recorded: 10,
                deadline_exceeded: 1,
                zero_results: 2,
            },
            map_edge_pairs_scored: 128,
            map_edge_pairs_skipped: 512,
            map_edge_pairs_memoized: 96,
            map_early_exit_tables: 9,
            map_pruned_tables: 4,
            internal_errors: 2,
            degraded_queries: 3,
            journal_retries: 1,
            read_only: true,
        }
    }

    #[test]
    fn observe_accumulates_and_renders() {
        let m = Metrics::new();
        m.observe(Route::Query, 200, Duration::from_micros(800));
        m.observe(Route::Query, 200, Duration::from_millis(30));
        m.observe(Route::Query, 400, Duration::from_micros(50));
        m.observe(Route::Healthz, 200, Duration::from_secs(9));
        assert_eq!(m.requests_total(), 4);

        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_http_requests_total{route=\"query\",code=\"200\"} 2\n"));
        assert!(text.contains("wwt_http_requests_total{route=\"query\",code=\"400\"} 1\n"));
        assert!(text.contains("wwt_http_requests_total{route=\"healthz\",code=\"200\"} 1\n"));
        // 50us and 800us fall at or below the 1ms bucket.
        assert!(text.contains("wwt_http_request_duration_seconds_bucket{le=\"0.001\"} 2\n"));
        // The 9s observation only appears in +Inf: buckets stay cumulative.
        assert!(text.contains("wwt_http_request_duration_seconds_bucket{le=\"2.5\"} 3\n"));
        assert!(text.contains("wwt_http_request_duration_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("wwt_http_request_duration_seconds_count 4\n"));
        assert!(text.contains("wwt_cache_hits_total 3\n"));
        assert!(text.contains("wwt_cache_coalesced_total 1\n"));
        assert!(text.contains("wwt_cache_entries 2\n"));
        assert!(text.contains("wwt_engine_generation 4\n"));
        assert!(text.contains("wwt_engine_swaps_total 4\n"));
        assert!(text.contains("wwt_docset_cache_entries 5\n"));
    }

    #[test]
    fn deadline_and_reload_counters_render() {
        let m = Metrics::new();
        m.note_deadline_exceeded();
        m.note_deadline_exceeded();
        m.note_reload_failure();
        assert_eq!(m.deadline_exceeded(), 2);
        assert_eq!(m.reload_failures(), 1);
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_http_deadline_exceeded_total 2\n"));
        assert!(text.contains("wwt_engine_reload_failures_total 1\n"));
    }

    #[test]
    fn live_ingest_series_render() {
        let m = Metrics::new();
        m.observe(Route::TablesIngest, 202, Duration::from_micros(900));
        m.observe(Route::TableDelete, 404, Duration::from_micros(100));
        m.observe(Route::Compact, 202, Duration::from_micros(400));
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_http_requests_total{route=\"tables_ingest\",code=\"202\"} 1\n"));
        assert!(text.contains("wwt_http_requests_total{route=\"table_delete\",code=\"404\"} 1\n"));
        assert!(text.contains("wwt_http_requests_total{route=\"compact\",code=\"202\"} 1\n"));
        assert!(text.contains("wwt_delta_tables 2\n"));
        assert!(text.contains("wwt_delta_tombstones 1\n"));
        assert!(text.contains("wwt_tables_ingested_total 6\n"));
        assert!(text.contains("wwt_tables_deleted_total 1\n"));
        assert!(text.contains("wwt_compactions_total 3\n"));
    }

    #[test]
    fn journal_and_batch_series_render() {
        let m = Metrics::new();
        m.observe(Route::TablesBatch, 202, Duration::from_micros(700));
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_http_requests_total{route=\"tables_batch\",code=\"202\"} 1\n"));
        assert!(text.contains("wwt_batches_ingested_total 2\n"));
        assert!(text.contains("wwt_journal_attached 1\n"));
        assert!(text.contains("wwt_journal_records 7\n"));
        assert!(text.contains("wwt_journal_bytes 1024\n"));
    }

    #[test]
    fn stage_histograms_and_flight_counters_render() {
        let m = Metrics::new();
        m.observe_stage(Stage::Probe1, Duration::from_micros(40));
        m.observe_stage(Stage::Probe1, Duration::from_micros(900));
        m.observe_stage(Stage::ColumnMap, Duration::from_millis(3));
        m.observe_stage(Stage::Serialize, Duration::from_micros(10));
        assert_eq!(m.stage_histograms().count(Stage::Probe1), 2);
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("# TYPE wwt_stage_duration_us histogram"));
        assert!(text.contains("wwt_stage_duration_us_bucket{stage=\"probe1\",le=\"50\"} 1\n"));
        assert!(text.contains("wwt_stage_duration_us_bucket{stage=\"probe1\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("wwt_stage_duration_us_count{stage=\"probe1\"} 2\n"));
        assert!(text.contains("wwt_stage_duration_us_count{stage=\"column_map\"} 1\n"));
        assert!(text.contains("wwt_stage_duration_us_count{stage=\"serialize\"} 1\n"));
        assert!(text.contains("wwt_flight_records_total 10\n"));
        assert!(text.contains("wwt_flight_deadline_exceeded_total 1\n"));
        assert!(text.contains("wwt_flight_zero_results_total 2\n"));
    }

    #[test]
    fn mapper_fast_path_counters_render() {
        let m = Metrics::new();
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_map_edge_pairs_scored_total 128\n"));
        assert!(text.contains("wwt_map_edge_pairs_skipped_total 512\n"));
        assert!(text.contains("wwt_map_edge_pairs_memoized_total 96\n"));
        assert!(text.contains("wwt_map_early_exit_tables_total 9\n"));
        assert!(text.contains("wwt_map_pruned_tables_total 4\n"));
    }

    #[test]
    fn resilience_series_render() {
        let m = Metrics::new();
        m.note_query_shed();
        m.note_query_shed();
        assert_eq!(m.queries_shed(), 2);
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_internal_errors_total 2\n"));
        assert!(text.contains("wwt_degraded_queries_total 3\n"));
        assert!(text.contains("wwt_journal_retries_total 1\n"));
        assert!(text.contains("wwt_read_only 1\n"));
        assert!(text.contains("wwt_queries_shed_total 2\n"));
    }

    #[test]
    fn in_flight_gauge_tracks_and_renders() {
        let m = Metrics::new();
        m.request_started();
        m.request_started();
        m.request_finished();
        assert_eq!(m.in_flight(), 1);
        let text = m.render_prometheus(&cache_stats());
        assert!(text.contains("wwt_http_requests_in_flight 1\n"));
        m.request_finished();
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn empty_registry_renders_valid_series() {
        let m = Metrics::new();
        let text = m.render_prometheus(&ServiceStats {
            hits: 0,
            misses: 0,
            coalesced: 0,
            entries: 0,
            shards: 0,
            index_shards: 1,
            generation: 0,
            swap_count: 0,
            deadline_exceeded: 0,
            docset_cache_entries: 0,
            delta_tables: 0,
            delta_tombstones: 0,
            tables_ingested: 0,
            tables_deleted: 0,
            compactions: 0,
            batches_ingested: 0,
            journal_attached: false,
            journal_records: 0,
            journal_bytes: 0,
            recorder: wwt_service::RecorderCounters::default(),
            map_edge_pairs_scored: 0,
            map_edge_pairs_skipped: 0,
            map_edge_pairs_memoized: 0,
            map_early_exit_tables: 0,
            map_pruned_tables: 0,
            internal_errors: 0,
            degraded_queries: 0,
            journal_retries: 0,
            read_only: false,
        });
        assert!(text.contains("wwt_http_request_duration_seconds_count 0\n"));
        assert!(text.contains("wwt_internal_errors_total 0\n"));
        assert!(text.contains("wwt_read_only 0\n"));
        assert!(text.contains("wwt_http_request_duration_seconds_sum 0\n"));
        assert!(text.contains("wwt_cache_misses_total 0\n"));
    }
}
