//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Implements exactly what the serving layer needs: request-line +
//! header parsing, `Content-Length` bodies with a size cap, keep-alive
//! semantics, and response writing. No chunked encoding, no TLS — the
//! server sits behind the loopback interface or a real reverse proxy.

use std::io::{BufRead, Write};

/// Upper bound on header section size (request line + all headers).
const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method verb (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or timed out) before sending a full request.
    /// Not answerable — the connection is simply dropped.
    Disconnected,
    /// The bytes received do not form a valid HTTP/1.x request.
    Malformed(String),
    /// The declared body exceeds the configured limit (HTTP 413).
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured maximum.
        limit: usize,
    },
}

/// Reads one request from the stream. `Err(Disconnected)` covers clean
/// EOF between requests, peer resets, and read timeouts — all cases
/// where no response can or should be written.
pub fn read_request(
    reader: &mut impl BufRead,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let line = read_crlf_line(reader)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line lacks a path".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line lacks a version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported {version}")));
    }
    let http_11 = version == "HTTP/1.1";
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    let mut header_bytes = line.len();
    loop {
        let line = read_crlf_line(reader)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ReadError::Malformed("header section too large".into()));
        }
        let header = split_header(&line)
            .ok_or_else(|| ReadError::Malformed(format!("malformed header {line:?}")))?;
        headers.push(header);
    }

    // No chunked support: a Transfer-Encoding body this server ignored
    // would desync the keep-alive stream (and, behind a proxy honoring
    // TE over Content-Length, enable request smuggling). Reject it.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ReadError::Malformed(
            "transfer-encoding is not supported; send content-length".into(),
        ));
    }
    // RFC 9112 §6.3: conflicting Content-Length values must be rejected.
    // Behind a reverse proxy that honors a different occurrence, a
    // duplicate is a request-smuggling vector, so any repeat is refused.
    let mut lengths = headers.iter().filter(|(k, _)| k == "content-length");
    let content_length = lengths
        .next()
        .map(|(_, v)| {
            // RFC 9110 grammar is 1*DIGIT: a leading '+' (which
            // usize::from_str would accept) must be refused, or a front
            // proxy re-framing the non-canonical value desyncs from us.
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ReadError::Malformed(format!("bad content-length {v:?}")));
            }
            v.parse::<usize>()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if lengths.next().is_some() {
        return Err(ReadError::Malformed(
            "multiple content-length headers".into(),
        ));
    }
    if content_length > max_body_bytes {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|_| ReadError::Disconnected)?;

    let keep_alive = match headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase())
    {
        Some(v) if v.contains("close") => false,
        Some(v) if v.contains("keep-alive") => true,
        _ => http_11, // HTTP/1.1 defaults to keep-alive
    };

    Ok(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    })
}

/// Splits one `Name: value` header line; the name is lowercased, both
/// sides trimmed. Shared by the server's request parsing and the
/// client's response parsing so the two cannot drift apart.
pub(crate) fn split_header(line: &str) -> Option<(String, String)> {
    let (name, value) = line.split_once(':')?;
    Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// Reads one CRLF- (or bare-LF-) terminated line, without the ending.
pub(crate) fn read_crlf_line(reader: &mut impl BufRead) -> Result<String, ReadError> {
    let mut buf = Vec::with_capacity(64);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => return Err(ReadError::Disconnected),
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map_err(|_| ReadError::Malformed("non-utf8 header line".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_HEADER_BYTES {
                    return Err(ReadError::Malformed("header line too long".into()));
                }
            }
            Err(_) => return Err(ReadError::Disconnected),
        }
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response; `keep_alive` controls the `Connection` header.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, body, keep_alive, &[])
}

/// Like [`write_response`], with extra `(name, value)` headers appended
/// after the framing headers (e.g. `Retry-After` on a 503).
pub fn write_response_with(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse("GET /healthz?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let r =
            parse("POST /query HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello")
                .unwrap();
        assert_eq!(r.body, b"hello");
        assert!(!r.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        assert!(!parse("GET / HTTP/1.0\r\n\r\n").unwrap().keep_alive);
        let r = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_oversized_body() {
        let raw = "POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n";
        assert!(matches!(
            parse(raw),
            Err(ReadError::BodyTooLarge {
                declared: 9999,
                limit: 1024
            })
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // 1*DIGIT only: '+5' parses as 5 via FromStr but is not valid
        // HTTP, and proxies may re-frame it differently.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // A second Content-Length — even an agreeing one — is a
        // smuggling vector behind proxies that pick a different
        // occurrence.
        for raw in [
            "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            "POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello",
        ] {
            assert!(matches!(parse(raw), Err(ReadError::Malformed(_))), "{raw}");
        }
    }

    #[test]
    fn rejects_transfer_encoding() {
        // Chunked (or any TE) bodies would desync the connection if the
        // header were ignored.
        assert!(matches!(
            parse("POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2a\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn eof_is_disconnect() {
        assert!(matches!(parse(""), Err(ReadError::Disconnected)));
        // Truncated body: declared 10, only 3 sent.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Disconnected)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_ride_before_the_body() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "application/json",
            b"{}",
            false,
            &[("retry-after", "1")],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        // The extra header sits inside the header section, not after it.
        let header_end = text.find("\r\n\r\n").unwrap();
        assert!(text.find("retry-after").unwrap() < header_end);
    }

    #[test]
    fn new_status_codes_have_reasons() {
        assert_eq!(reason(202), "Accepted");
        assert_eq!(reason(409), "Conflict");
        assert_eq!(reason(504), "Gateway Timeout");
    }
}
