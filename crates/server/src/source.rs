//! Where a (re)built engine comes from.
//!
//! [`EngineSource`] names an on-disk location the server can rebuild its
//! engine from — either a directory of raw HTML pages (the offline
//! pipeline runs from scratch) or a directory persisted by
//! [`wwt_engine::Engine::save_to_dir`]. `POST /admin/reload` reads the
//! source again on a background thread and swaps the result into the
//! serving slot, so a crawler or indexer can refresh the corpus behind a
//! running server without a restart.

use std::path::{Path, PathBuf};
use wwt_engine::{Engine, EngineBuilder, WwtConfig};
use wwt_model::WwtError;

/// An on-disk origin an engine can be (re)built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineSource {
    /// A directory of `.html`/`.htm` documents; building runs the full
    /// offline pipeline (extract → store → index). Files are read in
    /// lexicographic name order so table ids are deterministic.
    CorpusDir(PathBuf),
    /// A directory written by [`Engine::save_to_dir`] (`index.idx` +
    /// `tables.jsonl`); building deserializes instead of re-extracting.
    IndexDir(PathBuf),
}

impl EngineSource {
    /// Builds a fresh engine from this source with the given online
    /// configuration and the builder's default shard count.
    pub fn build(&self, config: WwtConfig) -> Result<Engine, WwtError> {
        self.build_sharded(config, None)
    }

    /// [`EngineSource::build`] with an explicit index shard count
    /// (`None` = the builder default). A corpus build partitions into
    /// `shards`; a persisted-index load always uses the shard count of
    /// the on-disk layout — its manifest, not the caller, owns that.
    pub fn build_sharded(
        &self,
        config: WwtConfig,
        shards: Option<usize>,
    ) -> Result<Engine, WwtError> {
        match self {
            EngineSource::CorpusDir(dir) => build_from_corpus_dir(dir, config, shards),
            EngineSource::IndexDir(dir) => Engine::load_from_dir(dir, config),
        }
    }

    /// The directory this source reads.
    pub fn path(&self) -> &Path {
        match self {
            EngineSource::CorpusDir(dir) | EngineSource::IndexDir(dir) => dir,
        }
    }
}

fn build_from_corpus_dir(
    dir: &Path,
    config: WwtConfig,
    shards: Option<usize>,
) -> Result<Engine, WwtError> {
    let mut pages: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e.eq_ignore_ascii_case("html") || e.eq_ignore_ascii_case("htm"))
        })
        .collect();
    if pages.is_empty() {
        return Err(WwtError::NotFound(format!(
            "no .html/.htm documents under {}",
            dir.display()
        )));
    }
    pages.sort();
    let mut builder = EngineBuilder::with_config(config);
    if let Some(n) = shards {
        builder.shards(n);
    }
    for page in &pages {
        let html = std::fs::read_to_string(page)?;
        builder.add_document(&html, &format!("file://{}", page.display()));
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_dir(name: &str, docs: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wwt_source_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (file, html) in docs {
            std::fs::write(dir.join(file), html).unwrap();
        }
        dir
    }

    fn currency_doc(country: &str, money: &str) -> String {
        format!(
            "<html><body><p>countries and currency</p><table>\
             <tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>{country}</td><td>{money}</td></tr></table></body></html>"
        )
    }

    #[test]
    fn corpus_dir_builds_in_name_order_and_skips_foreign_files() {
        let dir = corpus_dir(
            "order",
            &[
                ("b.html", &currency_doc("Japan", "Yen")),
                ("a.html", &currency_doc("India", "Rupee")),
                ("notes.txt", "not a page"),
            ],
        );
        let engine = EngineSource::CorpusDir(dir.clone())
            .build(WwtConfig::default())
            .unwrap();
        assert_eq!(engine.store().len(), 2);
        // a.html sorts first, so India gets the lower table id.
        let first = engine.store().iter().next().unwrap();
        assert_eq!(first.cell(0, 0), "India");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_corpus_dir_is_an_error() {
        let dir = corpus_dir("empty", &[("readme.md", "nothing")]);
        let r = EngineSource::CorpusDir(dir.clone()).build(WwtConfig::default());
        assert!(matches!(r, Err(WwtError::NotFound(_))), "{r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_dir_roundtrips_through_engine_persistence() {
        let dir = corpus_dir("persist", &[("a.html", &currency_doc("India", "Rupee"))]);
        let built = EngineSource::CorpusDir(dir.clone())
            .build(WwtConfig::default())
            .unwrap();
        let index_dir = dir.join("index");
        built.save_to_dir(&index_dir).unwrap();
        let source = EngineSource::IndexDir(index_dir.clone());
        assert_eq!(source.path(), index_dir.as_path());
        let restored = source.build(WwtConfig::default()).unwrap();
        assert_eq!(restored.store().len(), built.store().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_dirs_surface_io_errors() {
        let gone = PathBuf::from("/nonexistent/wwt-source");
        assert!(EngineSource::CorpusDir(gone.clone())
            .build(WwtConfig::default())
            .is_err());
        assert!(EngineSource::IndexDir(gone)
            .build(WwtConfig::default())
            .is_err());
    }
}
