//! A minimal keep-alive HTTP client and a multi-connection load
//! generator — the measurement side of the serving layer, used by the
//! `server_throughput` bench and the end-to-end tests.

use crate::http::{self, ReadError};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking keep-alive HTTP/1.1 client over one TCP connection.
pub struct HttpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl HttpClient {
    /// Connects to the server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with explicit connect/read timeouts.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(HttpClient { stream, reader })
    }

    /// Issues a `GET` and reads the response.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None, &[])
    }

    /// Issues a `POST` with a JSON body and reads the response.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body.as_bytes()), &[])
    }

    /// Issues a `GET` with extra headers (e.g. `x-admin-token` for the
    /// debug routes, or a caller-chosen `x-request-id`).
    pub fn get_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None, headers)
    }

    /// Like [`HttpClient::post`], but when the request fails — typically
    /// because the server rotated this keep-alive connection at its
    /// per-connection request cap — reconnects once and retries before
    /// giving up. The single place encoding the rotation-recovery rule
    /// for the load generator and the benches.
    pub fn post_reconnecting(
        &mut self,
        addr: SocketAddr,
        path: &str,
        body: &str,
    ) -> std::io::Result<HttpResponse> {
        match self.post(path, body) {
            Err(_) => {
                *self = HttpClient::connect(addr)?;
                self.post(path, body)
            }
            ok => ok,
        }
    }

    /// Issues a `DELETE` with extra headers (e.g. `x-admin-token`).
    pub fn delete_with_headers(
        &mut self,
        path: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.request("DELETE", path, None, headers)
    }

    /// Issues a `POST` with extra headers (e.g. `x-admin-token`).
    pub fn post_with_headers(
        &mut self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body.as_bytes()), headers)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        headers: &[(&str, &str)],
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or(b"");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nhost: wwt\r\ncontent-type: application/json\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body)?;
        self.stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let status_line = self.read_line()?;
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad_data(format!("bad status line {status_line:?}")))?;
        let mut headers = Vec::new();
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            let header = http::split_header(&line)
                .ok_or_else(|| bad_data(format!("bad header {line:?}")))?;
            headers.push(header);
        }
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| bad_data("response lacks content-length".to_string()))?;
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }

    /// One response line through the same CRLF framing the server uses.
    fn read_line(&mut self) -> std::io::Result<String> {
        http::read_crlf_line(&mut self.reader).map_err(|e| match e {
            ReadError::Disconnected => std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ),
            // Line reading only reports Disconnected or Malformed.
            other => bad_data(format!("{other:?}")),
        })
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Aggregate result of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests that returned HTTP 200.
    pub ok: u64,
    /// Requests that failed (transport error or non-200).
    pub errors: u64,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Median request latency.
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Slowest request.
    pub max: Duration,
}

impl LoadReport {
    /// Successful requests per second over the run.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ok as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Hammers `POST /query` from `connections` keep-alive connections, each
/// issuing `requests_per_connection` requests round-robined over
/// `bodies`. Returns merged counts and latency percentiles.
pub fn run_load(
    addr: SocketAddr,
    bodies: &[String],
    connections: usize,
    requests_per_connection: usize,
) -> LoadReport {
    let start = Instant::now();
    let per_thread: Vec<(u64, u64, Vec<Duration>)> =
        wwt_engine::fan_out(connections.max(1), connections.max(1), |conn| {
            let mut ok = 0u64;
            let mut errors = 0u64;
            let mut latencies = Vec::with_capacity(requests_per_connection);
            let Ok(mut client) = HttpClient::connect(addr) else {
                return (0, requests_per_connection as u64, latencies);
            };
            for i in 0..requests_per_connection {
                let body = &bodies[(conn + i) % bodies.len()];
                let t0 = Instant::now();
                match client.post_reconnecting(addr, "/query", body) {
                    Ok(resp) if resp.status == 200 => {
                        ok += 1;
                        latencies.push(t0.elapsed());
                    }
                    _ => errors += 1,
                }
            }
            (ok, errors, latencies)
        });
    let elapsed = start.elapsed();
    let mut ok = 0;
    let mut errors = 0;
    let mut latencies: Vec<Duration> = Vec::new();
    for (o, e, l) in per_thread {
        ok += o;
        errors += e;
        latencies.extend(l);
    }
    latencies.sort();
    let pick = |fraction: f64| -> Duration {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((latencies.len() - 1) as f64 * fraction).round() as usize;
            latencies[idx]
        }
    };
    LoadReport {
        ok,
        errors,
        elapsed,
        p50: pick(0.50),
        p99: pick(0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_report_percentiles_and_throughput() {
        let r = LoadReport {
            ok: 100,
            errors: 0,
            elapsed: Duration::from_secs(2),
            p50: Duration::from_millis(1),
            p99: Duration::from_millis(9),
            max: Duration::from_millis(10),
        };
        assert!((r.throughput() - 50.0).abs() < 1e-9);
        let empty = LoadReport {
            ok: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            max: Duration::ZERO,
        };
        assert_eq!(empty.throughput(), 0.0);
    }
}
