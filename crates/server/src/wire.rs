//! The HTTP JSON request/response layer: typed `QueryRequest`s in,
//! `QueryResponse`s out, over the shared [`wwt_json`] codec.
//!
//! Request body:
//!
//! ```text
//! {"query": "country | currency",
//!  "options": {"algorithm": "table_centric", "probe1_k": 60, "probe2_k": 12,
//!              "high_relevance": 0.75, "max_rows": 10}}
//! ```
//!
//! `options` and every key inside it are optional; unknown keys are a
//! 400 (catching typos beats silently ignoring a mistyped `max_rows`).
//! Batch bodies wrap a list: `{"requests": [<request>, …]}`, at most
//! [`MAX_BATCH_REQUESTS`] slots per request.

use wwt_core::InferenceAlgorithm;
use wwt_engine::{QueryOptions, QueryRequest, QueryResponse};
use wwt_json::Json;
use wwt_model::{Query, WwtError};
use wwt_service::ServiceStats;

/// A client-visible failure: HTTP status plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable description, returned in the JSON error body.
    pub message: String,
}

impl ApiError {
    /// A 400 with the given message.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

/// Maps an engine/service error onto a status: unparseable queries and
/// invalid option values are the client's fault (400), an expired
/// request deadline is 504 (the upstream engine ran out of time, not
/// crashed), everything else — I/O, corruption — is the server's (500).
/// Keeping bad input and timeouts out of the plain-5xx class keeps
/// server-error alerting meaningful.
pub fn api_error(e: &WwtError) -> ApiError {
    let status = match e {
        WwtError::Query(_) | WwtError::Invalid(_) => 400,
        WwtError::DeadlineExceeded(_) => 504,
        // Explicit, not caught by the catch-all: a panic converted at the
        // service boundary must read as a server fault even if the
        // catch-all ever changes.
        WwtError::Internal(_) => 500,
        // Degraded mode (e.g. sticky read-only after journal failures):
        // the request was fine, the service just will not take it right
        // now — retryable, so 503 rather than a plain 500.
        WwtError::Unavailable(_) => 503,
        _ => 500,
    };
    ApiError {
        status,
        message: e.to_string(),
    }
}

/// The JSON error body `{"error":{"status":…,"message":…}}`.
pub fn encode_error(e: &ApiError) -> String {
    error_json(e).encode()
}

fn error_json(e: &ApiError) -> Json {
    Json::obj([(
        "error",
        Json::obj([
            ("status", Json::from(u64::from(e.status))),
            ("message", Json::from(e.message.as_str())),
        ]),
    )])
}

/// Parses a `POST /query` body into a typed request.
pub fn parse_query_request(body: &[u8]) -> Result<QueryRequest, ApiError> {
    request_from_json(&parse_body(body)?)
}

/// Most requests accepted in one `POST /query/batch` body. `answer_batch`
/// fans slots across every core, so without a cap a single HTTP request
/// could pin the whole machine for minutes.
pub const MAX_BATCH_REQUESTS: usize = 64;

/// Parses a `POST /query/batch` body (`{"requests":[…]}`).
pub fn parse_batch_request(body: &[u8]) -> Result<Vec<QueryRequest>, ApiError> {
    let value = parse_body(body)?;
    ensure_known_keys(&value, &["requests"])?;
    let requests = value
        .get("requests")
        .and_then(Json::as_arr)
        .ok_or_else(|| ApiError::bad_request("body must be {\"requests\": [...]}"))?;
    if requests.len() > MAX_BATCH_REQUESTS {
        return Err(ApiError::bad_request(format!(
            "batch of {} requests exceeds the limit of {MAX_BATCH_REQUESTS}",
            requests.len()
        )));
    }
    requests.iter().map(request_from_json).collect()
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad_request("body is not valid utf-8"))?;
    Json::parse(text).map_err(|e| ApiError::bad_request(e.to_string()))
}

fn request_from_json(value: &Json) -> Result<QueryRequest, ApiError> {
    if value.as_obj().is_none() {
        return Err(ApiError::bad_request("request must be a JSON object"));
    }
    ensure_known_keys(value, &["query", "options"])?;
    let raw = value
        .get("query")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("missing string field \"query\""))?;
    let query = Query::parse(raw).map_err(|e| ApiError::bad_request(e.to_string()))?;
    let options = match value.get("options") {
        None => QueryOptions::default(),
        Some(opts) => options_from_json(opts)?,
    };
    Ok(QueryRequest { query, options })
}

fn options_from_json(value: &Json) -> Result<QueryOptions, ApiError> {
    if value.as_obj().is_none() {
        return Err(ApiError::bad_request("\"options\" must be a JSON object"));
    }
    ensure_known_keys(
        value,
        &[
            "algorithm",
            "probe1_k",
            "probe2_k",
            "high_relevance",
            "max_rows",
            "deadline_ms",
            "explain",
            "early_exit",
            "fail_soft",
        ],
    )?;
    let uint = |key: &str| -> Result<Option<usize>, ApiError> {
        match value.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(|n| Some(n as usize)).ok_or_else(|| {
                ApiError::bad_request(format!("\"{key}\" must be a non-negative integer"))
            }),
        }
    };
    let algorithm = match value.get("algorithm") {
        None => None,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("\"algorithm\" must be a string"))?;
            Some(algorithm_from_str(name).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown algorithm {name:?} (expected one of: independent, \
                     table_centric, alpha_expansion, belief_propagation, trws)"
                ))
            })?)
        }
    };
    let high_relevance = match value.get("high_relevance") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| ApiError::bad_request("\"high_relevance\" must be a number"))?,
        ),
    };
    let deadline_ms = match value.get("deadline_ms") {
        None => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ApiError::bad_request("\"deadline_ms\" must be a non-negative integer")
        })?),
    };
    let flag = |key: &str| -> Result<bool, ApiError> {
        match value.get(key) {
            None => Ok(false),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| ApiError::bad_request(format!("\"{key}\" must be a boolean"))),
        }
    };
    Ok(QueryOptions {
        algorithm,
        probe1_k: uint("probe1_k")?,
        probe2_k: uint("probe2_k")?,
        high_relevance,
        max_rows: uint("max_rows")?,
        deadline_ms,
        explain: flag("explain")?,
        early_exit: flag("early_exit")?,
        fail_soft: flag("fail_soft")?,
    })
}

fn ensure_known_keys(value: &Json, known: &[&str]) -> Result<(), ApiError> {
    if let Some(fields) = value.as_obj() {
        for (key, _) in fields {
            if !known.contains(&key.as_str()) {
                return Err(ApiError::bad_request(format!(
                    "unknown field {key:?} (expected one of: {})",
                    known.join(", ")
                )));
            }
        }
    }
    Ok(())
}

/// Wire name of an inference algorithm.
pub fn algorithm_to_str(a: InferenceAlgorithm) -> &'static str {
    match a {
        InferenceAlgorithm::Independent => "independent",
        InferenceAlgorithm::TableCentric => "table_centric",
        InferenceAlgorithm::AlphaExpansion => "alpha_expansion",
        InferenceAlgorithm::BeliefPropagation => "belief_propagation",
        InferenceAlgorithm::Trws => "trws",
    }
}

/// Parses a wire algorithm name.
pub fn algorithm_from_str(s: &str) -> Option<InferenceAlgorithm> {
    Some(match s {
        "independent" => InferenceAlgorithm::Independent,
        "table_centric" => InferenceAlgorithm::TableCentric,
        "alpha_expansion" => InferenceAlgorithm::AlphaExpansion,
        "belief_propagation" => InferenceAlgorithm::BeliefPropagation,
        "trws" => InferenceAlgorithm::Trws,
        _ => return None,
    })
}

/// Encodes one answered query for the wire. Deterministic for a given
/// response value, so a cached `Arc<QueryResponse>` always serializes to
/// identical bytes.
pub fn encode_response(request: &QueryRequest, response: &QueryResponse) -> String {
    response_json(request, response).encode()
}

fn response_json(request: &QueryRequest, response: &QueryResponse) -> Json {
    let rows = response
        .table
        .rows
        .iter()
        .map(|r| {
            Json::obj([
                ("cells", Json::arr(r.cells.iter().map(String::as_str))),
                ("support", Json::from(u64::from(r.support))),
                ("score", Json::from(r.score)),
                ("sources", Json::arr(r.sources.iter().map(|t| t.0))),
            ])
        })
        .collect();
    let d = &response.diagnostics;
    let t = &d.timing;
    let shard_us =
        |shards: &[std::time::Duration]| Json::arr(shards.iter().map(|d| d.as_micros() as u64));
    let timing_us = Json::obj([
        ("index1", Json::from(t.index1.as_micros() as u64)),
        ("read1", Json::from(t.read1.as_micros() as u64)),
        ("index2", Json::from(t.index2.as_micros() as u64)),
        ("read2", Json::from(t.read2.as_micros() as u64)),
        ("column_map", Json::from(t.column_map.as_micros() as u64)),
        ("consolidate", Json::from(t.consolidate.as_micros() as u64)),
        ("total", Json::from(t.total().as_micros() as u64)),
        // Per-shard probe wall-clocks (scatter order): the straggler
        // view of the scatter-gather.
        ("probe1_shards", shard_us(&t.probe1_shards)),
        ("probe2_shards", shard_us(&t.probe2_shards)),
    ]);
    let mut diagnostic_fields = vec![
        ("n_candidates", Json::from(d.n_candidates)),
        ("n_relevant", Json::from(d.n_relevant)),
        ("probe2_used", Json::from(d.probe2_used)),
        ("rows_before_limit", Json::from(d.rows_before_limit)),
        ("stage1", Json::from(response.retrieval.stage1.len())),
        ("stage2", Json::from(response.retrieval.stage2.len())),
        ("timing_us", timing_us),
    ];
    // Present only on explain runs: plain responses stay byte-identical
    // to the pre-trace wire format.
    if let Some(trace) = &d.trace {
        diagnostic_fields.push(("trace", trace.to_json()));
    }
    // Present only on degraded fail-soft runs: healthy responses (and
    // every response with `fail_soft` off) stay byte-identical.
    if d.degraded {
        diagnostic_fields.push(("degraded", Json::Bool(true)));
        diagnostic_fields.push((
            "degraded_reasons",
            Json::arr(d.degraded_reasons.iter().map(String::as_str)),
        ));
    }
    let diagnostics = Json::obj(diagnostic_fields);
    Json::obj([
        ("query", Json::from(request.query.to_string())),
        (
            "columns",
            Json::arr(response.table.columns.iter().map(String::as_str)),
        ),
        ("rows", Json::Arr(rows)),
        (
            "candidates",
            Json::arr(response.candidates.iter().map(|t| t.0)),
        ),
        ("diagnostics", diagnostics),
    ])
}

/// Encodes a batch of per-slot results (`{"responses":[…]}`); error
/// slots carry the same shape as a top-level error body.
pub fn encode_batch_response(
    requests: &[QueryRequest],
    results: &[Result<std::sync::Arc<QueryResponse>, WwtError>],
) -> String {
    let slots = requests
        .iter()
        .zip(results)
        .map(|(req, res)| match res {
            Ok(resp) => response_json(req, resp),
            Err(e) => error_json(&api_error(e)),
        })
        .collect();
    Json::obj([("responses", Json::Arr(slots))]).encode()
}

/// Encodes `GET /stats`: the serving counters plus the derived hit rate
/// (0.0 — never NaN — when nothing has been served). New counters are
/// only ever appended — existing field names are load-bearing for
/// dashboards.
pub fn encode_stats(stats: &ServiceStats) -> String {
    encode_stats_with(stats, None, None)
}

/// [`encode_stats`] plus the most recent reload failure, when one is
/// pending — the read-only way to see why the generation never bumped
/// (the field is absent while reloads are healthy) — and the attached
/// write-ahead journal's path (absent when running without one).
pub fn encode_stats_with(
    stats: &ServiceStats,
    last_reload_error: Option<&str>,
    journal_path: Option<&str>,
) -> String {
    let mut fields = vec![
        ("hits", Json::from(stats.hits)),
        ("misses", Json::from(stats.misses)),
        ("coalesced", Json::from(stats.coalesced)),
        ("entries", Json::from(stats.entries)),
        ("shards", Json::from(stats.shards)),
        ("hit_rate", Json::from(stats.hit_rate())),
        ("generation", Json::from(stats.generation)),
        ("swap_count", Json::from(stats.swap_count)),
        ("deadline_exceeded", Json::from(stats.deadline_exceeded)),
        ("index_shards", Json::from(stats.index_shards)),
        (
            "docset_cache_entries",
            Json::from(stats.docset_cache_entries),
        ),
        ("delta_tables", Json::from(stats.delta_tables)),
        ("delta_tombstones", Json::from(stats.delta_tombstones)),
        ("tables_ingested", Json::from(stats.tables_ingested)),
        ("tables_deleted", Json::from(stats.tables_deleted)),
        ("compactions", Json::from(stats.compactions)),
        ("batches_ingested", Json::from(stats.batches_ingested)),
        ("journal_attached", Json::Bool(stats.journal_attached)),
        ("journal_records", Json::from(stats.journal_records)),
        ("journal_bytes", Json::from(stats.journal_bytes)),
        ("flight_records", Json::from(stats.recorder.recorded)),
        (
            "flight_deadline_exceeded",
            Json::from(stats.recorder.deadline_exceeded),
        ),
        (
            "flight_zero_results",
            Json::from(stats.recorder.zero_results),
        ),
        (
            "map_edge_pairs_scored",
            Json::from(stats.map_edge_pairs_scored),
        ),
        (
            "map_edge_pairs_skipped",
            Json::from(stats.map_edge_pairs_skipped),
        ),
        (
            "map_edge_pairs_memoized",
            Json::from(stats.map_edge_pairs_memoized),
        ),
        (
            "map_early_exit_tables",
            Json::from(stats.map_early_exit_tables),
        ),
        ("map_pruned_tables", Json::from(stats.map_pruned_tables)),
        ("internal_errors", Json::from(stats.internal_errors)),
        ("degraded_queries", Json::from(stats.degraded_queries)),
        ("journal_retries", Json::from(stats.journal_retries)),
        ("read_only", Json::Bool(stats.read_only)),
    ];
    if let Some(error) = last_reload_error {
        fields.push(("last_reload_error", Json::from(error)));
    }
    if let Some(path) = journal_path {
        fields.push(("journal_path", Json::from(path)));
    }
    Json::obj(fields).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_service::RecorderCounters;

    #[test]
    fn parses_bare_query() {
        let req = parse_query_request(br#"{"query":"country | currency"}"#).unwrap();
        assert_eq!(req.query.to_string(), "country | currency");
        assert!(req.options.is_default());
    }

    #[test]
    fn parses_full_options() {
        let req = parse_query_request(
            br#"{"query":"a | b","options":{"algorithm":"independent","probe1_k":10,
                 "probe2_k":3,"high_relevance":0.5,"max_rows":7,"deadline_ms":250}}"#,
        )
        .unwrap();
        assert_eq!(req.options.algorithm, Some(InferenceAlgorithm::Independent));
        assert_eq!(req.options.probe1_k, Some(10));
        assert_eq!(req.options.probe2_k, Some(3));
        assert_eq!(req.options.high_relevance, Some(0.5));
        assert_eq!(req.options.max_rows, Some(7));
        assert_eq!(req.options.deadline_ms, Some(250));
    }

    #[test]
    fn deadline_parses_and_rejects_bad_values() {
        let req = parse_query_request(br#"{"query":"a","options":{"deadline_ms":0}}"#).unwrap();
        assert_eq!(req.options.deadline_ms, Some(0));
        let err =
            parse_query_request(br#"{"query":"a","options":{"deadline_ms":-5}}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("deadline_ms"), "{}", err.message);
        let err =
            parse_query_request(br#"{"query":"a","options":{"deadline_ms":"soon"}}"#).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn rejects_bad_bodies() {
        for (body, needle) in [
            (&b"not json"[..], "invalid json"),
            (br#"{"query":42}"#, "missing string field"),
            (br#"{"qerry":"a"}"#, "unknown field \"qerry\""),
            (br#"{"query":" | "}"#, "no column keywords"),
            (
                br#"{"query":"a","options":{"max_rows":-1}}"#,
                "non-negative",
            ),
            (
                br#"{"query":"a","options":{"algorithm":"magic"}}"#,
                "unknown algorithm",
            ),
            (
                br#"{"query":"a","options":{"high_relevance":"x"}}"#,
                "must be a number",
            ),
            (
                br#"{"query":"a","options":{"probes":3}}"#,
                "unknown field \"probes\"",
            ),
        ] {
            let err = parse_query_request(body).unwrap_err();
            assert_eq!(err.status, 400, "{body:?}");
            assert!(
                err.message.contains(needle),
                "{:?} !~ {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn parses_batch_and_rejects_non_list() {
        let reqs =
            parse_batch_request(br#"{"requests":[{"query":"a"},{"query":"b | c"}]}"#).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[1].query.q(), 2);
        assert!(parse_batch_request(br#"{"requests":7}"#).is_err());
        assert!(parse_batch_request(br#"{"query":"a"}"#).is_err());
        // One bad slot poisons the whole batch at parse time.
        assert!(parse_batch_request(br#"{"requests":[{"query":" | "}]}"#).is_err());
    }

    #[test]
    fn oversized_batches_rejected() {
        let slots = vec![r#"{"query":"a"}"#; MAX_BATCH_REQUESTS + 1].join(",");
        let body = format!("{{\"requests\":[{slots}]}}");
        let err = parse_batch_request(body.as_bytes()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("exceeds"), "{}", err.message);
        // Exactly at the cap is fine.
        let slots = vec![r#"{"query":"a"}"#; MAX_BATCH_REQUESTS].join(",");
        let body = format!("{{\"requests\":[{slots}]}}");
        assert_eq!(
            parse_batch_request(body.as_bytes()).unwrap().len(),
            MAX_BATCH_REQUESTS
        );
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for a in [
            InferenceAlgorithm::Independent,
            InferenceAlgorithm::TableCentric,
            InferenceAlgorithm::AlphaExpansion,
            InferenceAlgorithm::BeliefPropagation,
            InferenceAlgorithm::Trws,
        ] {
            assert_eq!(algorithm_from_str(algorithm_to_str(a)), Some(a));
        }
        assert_eq!(algorithm_from_str("nope"), None);
    }

    #[test]
    fn error_mapping_statuses() {
        let parse_err = Query::parse(" | ").unwrap_err();
        assert_eq!(api_error(&WwtError::Query(parse_err)).status, 400);
        // Client-supplied option values that fail validation are client
        // errors, not 5xx noise.
        assert_eq!(api_error(&WwtError::Invalid("k".into())).status, 400);
        assert_eq!(api_error(&WwtError::Corrupt("c".into())).status, 500);
        // Deadlines are timeouts, not crashes: 504, not 500.
        assert_eq!(
            api_error(&WwtError::DeadlineExceeded("map".into())).status,
            504
        );
        // A caught pipeline panic is the server's fault.
        assert_eq!(api_error(&WwtError::Internal("panic".into())).status, 500);
        // Degraded mode is retryable, not broken: 503.
        assert_eq!(
            api_error(&WwtError::Unavailable("read-only".into())).status,
            503
        );
    }

    #[test]
    fn fail_soft_parses_and_rejects_non_bool() {
        let req = parse_query_request(br#"{"query":"a","options":{"fail_soft":true}}"#).unwrap();
        assert!(req.options.fail_soft);
        let req = parse_query_request(br#"{"query":"a","options":{"fail_soft":false}}"#).unwrap();
        assert!(!req.options.fail_soft);
        assert!(req.options.is_default());
        let err = parse_query_request(br#"{"query":"a","options":{"fail_soft":1}}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("fail_soft"), "{}", err.message);
    }

    #[test]
    fn error_body_shape() {
        let body = encode_error(&ApiError::bad_request("boom"));
        let v = Json::parse(&body).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("status").and_then(Json::as_u64), Some(400));
        assert_eq!(e.get("message").and_then(Json::as_str), Some("boom"));
    }

    #[test]
    fn stats_body_has_zero_hit_rate_when_empty() {
        let body = encode_stats(&ServiceStats {
            hits: 0,
            misses: 0,
            coalesced: 0,
            entries: 0,
            shards: 4,
            index_shards: 2,
            generation: 0,
            swap_count: 0,
            deadline_exceeded: 0,
            docset_cache_entries: 0,
            delta_tables: 0,
            delta_tombstones: 0,
            tables_ingested: 0,
            tables_deleted: 0,
            compactions: 0,
            batches_ingested: 0,
            journal_attached: false,
            journal_records: 0,
            journal_bytes: 0,
            recorder: RecorderCounters::default(),
            map_edge_pairs_scored: 0,
            map_edge_pairs_skipped: 0,
            map_edge_pairs_memoized: 0,
            map_early_exit_tables: 0,
            map_pruned_tables: 0,
            internal_errors: 0,
            degraded_queries: 0,
            journal_retries: 0,
            read_only: false,
        });
        assert!(body.contains("\"hit_rate\":0"), "{body}");
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("hit_rate").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn stats_body_keeps_old_names_and_adds_swap_and_deadline_counters() {
        let body = encode_stats(&ServiceStats {
            hits: 5,
            misses: 2,
            coalesced: 1,
            entries: 3,
            shards: 4,
            index_shards: 2,
            generation: 7,
            swap_count: 7,
            deadline_exceeded: 2,
            docset_cache_entries: 11,
            delta_tables: 3,
            delta_tombstones: 1,
            tables_ingested: 9,
            tables_deleted: 2,
            compactions: 4,
            batches_ingested: 3,
            journal_attached: true,
            journal_records: 5,
            journal_bytes: 640,
            recorder: RecorderCounters {
                recorded: 12,
                deadline_exceeded: 2,
                zero_results: 3,
            },
            map_edge_pairs_scored: 640,
            map_edge_pairs_skipped: 1360,
            map_edge_pairs_memoized: 480,
            map_early_exit_tables: 21,
            map_pruned_tables: 8,
            internal_errors: 1,
            degraded_queries: 6,
            journal_retries: 2,
            read_only: true,
        });
        let v = Json::parse(&body).unwrap();
        // Pre-existing field names stay untouched (additive evolution).
        for field in [
            "hits",
            "misses",
            "coalesced",
            "entries",
            "shards",
            "hit_rate",
        ] {
            assert!(v.get(field).is_some(), "missing {field} in {body}");
        }
        assert_eq!(v.get("generation").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("swap_count").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("deadline_exceeded").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("index_shards").and_then(Json::as_u64), Some(2));
        assert_eq!(
            v.get("docset_cache_entries").and_then(Json::as_u64),
            Some(11)
        );
        assert_eq!(v.get("delta_tables").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("delta_tombstones").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("tables_ingested").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("tables_deleted").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("compactions").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("flight_records").and_then(Json::as_u64), Some(12));
        assert_eq!(
            v.get("flight_deadline_exceeded").and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(v.get("flight_zero_results").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("map_edge_pairs_scored").and_then(Json::as_u64),
            Some(640)
        );
        assert_eq!(
            v.get("map_edge_pairs_skipped").and_then(Json::as_u64),
            Some(1360)
        );
        assert_eq!(
            v.get("map_edge_pairs_memoized").and_then(Json::as_u64),
            Some(480)
        );
        assert_eq!(
            v.get("map_early_exit_tables").and_then(Json::as_u64),
            Some(21)
        );
        assert_eq!(v.get("map_pruned_tables").and_then(Json::as_u64), Some(8));
        assert_eq!(v.get("batches_ingested").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("journal_attached").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(v.get("journal_records").and_then(Json::as_u64), Some(5));
        assert_eq!(v.get("journal_bytes").and_then(Json::as_u64), Some(640));
        assert_eq!(v.get("internal_errors").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("degraded_queries").and_then(Json::as_u64), Some(6));
        assert_eq!(v.get("journal_retries").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("read_only").and_then(Json::as_bool), Some(true));
        // No journal path was supplied, so the field is absent — it only
        // appears via encode_stats_with when a journal is attached.
        assert!(v.get("journal_path").is_none());
    }

    #[test]
    fn stats_body_carries_journal_path_when_supplied() {
        let body = encode_stats_with(
            &ServiceStats::default(),
            None,
            Some("/var/lib/wwt/journal.wal"),
        );
        let v = Json::parse(&body).unwrap();
        assert_eq!(
            v.get("journal_path").and_then(Json::as_str),
            Some("/var/lib/wwt/journal.wal")
        );
    }

    #[test]
    fn early_exit_parses_and_rejects_non_bool() {
        let req = parse_query_request(br#"{"query":"a","options":{"early_exit":true}}"#).unwrap();
        assert!(req.options.early_exit);
        let req = parse_query_request(br#"{"query":"a","options":{"early_exit":false}}"#).unwrap();
        assert!(!req.options.early_exit);
        assert!(req.options.is_default());
        let err = parse_query_request(br#"{"query":"a","options":{"early_exit":1}}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("early_exit"), "{}", err.message);
    }

    #[test]
    fn explain_parses_and_rejects_non_bool() {
        let req = parse_query_request(br#"{"query":"a","options":{"explain":true}}"#).unwrap();
        assert!(req.options.explain);
        let req = parse_query_request(br#"{"query":"a","options":{"explain":false}}"#).unwrap();
        assert!(!req.options.explain);
        assert!(req.options.is_default());
        let err = parse_query_request(br#"{"query":"a","options":{"explain":1}}"#).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("explain"), "{}", err.message);
    }
}
