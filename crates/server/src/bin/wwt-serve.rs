//! `wwt-serve`: build an engine over a synthetic web corpus and serve
//! column-keyword table queries over HTTP.
//!
//! ```text
//! wwt-serve [--addr 127.0.0.1:7070] [--scale 0.1] [--queries 8] [--workers N]
//!           [--admin-token SECRET]
//! ```
//!
//! Every flag also reads an environment fallback (`WWT_ADDR`,
//! `WWT_SCALE`, `WWT_QUERIES`, `WWT_SERVER_WORKERS`, `WWT_ADMIN_TOKEN`).
//! The process runs until an authorized `POST /admin/shutdown` arrives
//! (requests must carry the admin token in an `x-admin-token` header),
//! then drains in-flight requests and exits 0. When no token is given a
//! random one is generated and printed at startup, so shutdown stays a
//! deliberate operator action instead of an unauthenticated route; for
//! real deployments pass your own secret.

use std::sync::Arc;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, WwtConfig};
use wwt_server::{serve, ServerConfig};
use wwt_service::TableSearchService;

fn flag_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

/// Like [`flag_or_env`] but parsed; an unparseable value is a hard exit,
/// never silently replaced by the default.
fn parsed_flag_or_env<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    env: &str,
    default: T,
) -> T {
    match flag_or_env(args, flag, env) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("wwt-serve: {flag} must be a number, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// A process-unique token for when the operator supplies none: random
/// enough to stop drive-by shutdowns, printed at startup so the local
/// operator can still stop the server.
fn generate_admin_token() -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    std::time::SystemTime::now().hash(&mut h);
    std::time::Instant::now().hash(&mut h);
    format!("wwt-{:016x}", h.finish())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: wwt-serve [--addr HOST:PORT] [--scale F] [--queries N] [--workers N]\n\
             \x20                [--admin-token SECRET]\n\
             env fallbacks: WWT_ADDR, WWT_SCALE, WWT_QUERIES, WWT_SERVER_WORKERS,\n\
             \x20               WWT_ADMIN_TOKEN"
        );
        return;
    }
    let addr =
        flag_or_env(&args, "--addr", "WWT_ADDR").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let scale: f64 = parsed_flag_or_env(&args, "--scale", "WWT_SCALE", 0.1);
    let n_queries: usize = parsed_flag_or_env(&args, "--queries", "WWT_QUERIES", 8);
    let admin_token = flag_or_env(&args, "--admin-token", "WWT_ADMIN_TOKEN")
        .filter(|t| !t.is_empty())
        .unwrap_or_else(generate_admin_token);
    let mut server_config = ServerConfig {
        addr,
        admin_token: Some(admin_token.clone()),
        ..ServerConfig::default()
    };
    server_config.workers = parsed_flag_or_env(
        &args,
        "--workers",
        "WWT_SERVER_WORKERS",
        server_config.workers,
    );

    let specs: Vec<_> = workload().into_iter().take(n_queries.max(1)).collect();
    eprintln!(
        "[wwt-serve] generating corpus (scale {scale}, {} workload queries) ...",
        specs.len()
    );
    let corpus = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    eprintln!(
        "[wwt-serve] extracting + indexing {} documents ...",
        corpus.documents.len()
    );
    let bound = bind_corpus(&corpus, WwtConfig::default());
    let service = Arc::new(TableSearchService::new(Arc::new(bound.engine)));

    let handle = match serve(service, server_config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("wwt-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on http://{}", handle.addr());
    println!(
        "try: curl -s -X POST http://{}/query -d '{{\"query\":\"{}\"}}'",
        handle.addr(),
        specs[0].query
    );
    println!(
        "stop: curl -s -X POST -H 'x-admin-token: {admin_token}' http://{}/admin/shutdown",
        handle.addr()
    );

    handle.wait_shutdown_requested();
    eprintln!("[wwt-serve] shutdown requested; draining in-flight requests ...");
    // Snapshot the counters only after the drain so in-flight requests
    // completed during shutdown are included in the farewell line.
    let service = Arc::clone(handle.service());
    let total = handle.shutdown();
    let stats = service.stats();
    eprintln!(
        "[wwt-serve] served {total} requests (cache: {} hits / {} misses / {} coalesced); bye",
        stats.hits, stats.misses, stats.coalesced
    );
}
