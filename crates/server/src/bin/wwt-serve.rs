//! `wwt-serve`: build an engine over a synthetic web corpus and serve
//! column-keyword table queries over HTTP.
//!
//! ```text
//! wwt-serve [--addr 127.0.0.1:7070] [--scale 0.1] [--queries 8] [--workers N]
//! ```
//!
//! Every flag also reads an environment fallback (`WWT_ADDR`,
//! `WWT_SCALE`, `WWT_QUERIES`, `WWT_SERVER_WORKERS`). The process runs
//! until `POST /admin/shutdown` arrives, then drains in-flight requests
//! and exits 0.

use std::sync::Arc;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus, WwtConfig};
use wwt_server::{serve, ServerConfig};
use wwt_service::TableSearchService;

fn flag_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: wwt-serve [--addr HOST:PORT] [--scale F] [--queries N] [--workers N]\n\
             env fallbacks: WWT_ADDR, WWT_SCALE, WWT_QUERIES, WWT_SERVER_WORKERS"
        );
        return;
    }
    let addr =
        flag_or_env(&args, "--addr", "WWT_ADDR").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let scale: f64 = flag_or_env(&args, "--scale", "WWT_SCALE")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let n_queries: usize = flag_or_env(&args, "--queries", "WWT_QUERIES")
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mut server_config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    if let Some(workers) = flag_or_env(&args, "--workers", "WWT_SERVER_WORKERS") {
        match workers.parse() {
            Ok(n) => server_config.workers = n,
            Err(_) => {
                eprintln!("wwt-serve: --workers must be a number, got {workers:?}");
                std::process::exit(2);
            }
        }
    }

    let specs: Vec<_> = workload().into_iter().take(n_queries.max(1)).collect();
    eprintln!(
        "[wwt-serve] generating corpus (scale {scale}, {} workload queries) ...",
        specs.len()
    );
    let corpus = CorpusGenerator::new(CorpusConfig {
        scale,
        ..CorpusConfig::default()
    })
    .generate_for(&specs);
    eprintln!(
        "[wwt-serve] extracting + indexing {} documents ...",
        corpus.documents.len()
    );
    let bound = bind_corpus(&corpus, WwtConfig::default());
    let service = Arc::new(TableSearchService::new(Arc::new(bound.engine)));

    let handle = match serve(service, server_config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("wwt-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on http://{}", handle.addr());
    println!(
        "try: curl -s -X POST http://{}/query -d '{{\"query\":\"{}\"}}'",
        handle.addr(),
        specs[0].query
    );
    println!(
        "stop: curl -s -X POST http://{}/admin/shutdown",
        handle.addr()
    );

    handle.wait_shutdown_requested();
    eprintln!("[wwt-serve] shutdown requested; draining in-flight requests ...");
    let stats = handle.service().stats();
    let total = handle.metrics().requests_total();
    handle.shutdown();
    eprintln!(
        "[wwt-serve] served {total} requests (cache: {} hits / {} misses / {} coalesced); bye",
        stats.hits, stats.misses, stats.coalesced
    );
}
