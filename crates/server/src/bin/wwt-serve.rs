//! `wwt-serve`: build (or load) an engine and serve column-keyword table
//! queries over HTTP, with zero-downtime reloads.
//!
//! ```text
//! wwt-serve [--addr 127.0.0.1:7070] [--scale 0.1] [--queries 8] [--workers N]
//!           [--admin-token SECRET] [--corpus-dir DIR | --index-path DIR]
//!           [--save-index DIR] [--build-only]
//!           [--journal PATH] [--journal-fsync always|never]
//! ```
//!
//! The engine comes from the first of: `--index-path DIR` (a directory
//! persisted by `Engine::save_to_dir` — `index.idx` + `tables.jsonl`),
//! `--corpus-dir DIR` (raw `.html` documents, offline pipeline from
//! scratch), or the built-in synthetic corpus (`--scale`/`--queries`).
//! `--save-index DIR` persists whatever engine was built; `--build-only`
//! exits right after (build an index in CI, then boot from it).
//!
//! When `--corpus-dir` or `--index-path` is given, an authorized
//! `POST /admin/reload` re-reads that source on a background thread and
//! hot-swaps the rebuilt engine while queries keep being answered; the
//! bumped generation shows in `GET /healthz` and `GET /version`.
//!
//! `--journal PATH` makes live mutations durable: every accepted ingest
//! and delete is appended (fsync'd, unless `--journal-fsync never`) to a
//! write-ahead journal *before* the 202 is answered, and replayed over
//! the freshly built engine at the next boot — a `kill -9` between
//! compactions loses nothing. With `--index-path`, a successful
//! `POST /admin/compact` persists the folded index back into that
//! directory and truncates the journal.
//!
//! Every flag also reads an environment fallback (`WWT_ADDR`,
//! `WWT_SCALE`, `WWT_QUERIES`, `WWT_SERVER_WORKERS`, `WWT_ADMIN_TOKEN`,
//! `WWT_CORPUS_DIR`, `WWT_INDEX_PATH`, `WWT_SAVE_INDEX`). The process
//! runs until an authorized `POST /admin/shutdown` arrives, then drains
//! in-flight requests and exits 0. When no token is given a random one
//! is generated and printed at startup, so shutdown/reload stay
//! deliberate operator actions instead of unauthenticated routes; for
//! real deployments pass your own secret.

use std::path::PathBuf;
use std::sync::Arc;
use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};
use wwt_engine::{bind_corpus_sharded, Engine, WwtConfig};
use wwt_index::{FsyncPolicy, Journal};
use wwt_obs::{log, set_log_json, set_log_level, LogLevel};
use wwt_server::{serve, EngineSource, ServerConfig};
use wwt_service::TableSearchService;

fn flag_or_env(args: &[String], flag: &str, env: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(env).ok())
}

/// Like [`flag_or_env`] but parsed; an unparseable value is a hard exit,
/// never silently replaced by the default.
fn parsed_flag_or_env<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    env: &str,
    default: T,
) -> T {
    match flag_or_env(args, flag, env) {
        None => default,
        Some(raw) => raw.parse().unwrap_or_else(|_| {
            eprintln!("wwt-serve: {flag} must be a number, got {raw:?}");
            std::process::exit(2);
        }),
    }
}

/// A process-unique token for when the operator supplies none: random
/// enough to stop drive-by shutdowns, printed at startup so the local
/// operator can still stop the server.
fn generate_admin_token() -> String {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::process::id().hash(&mut h);
    std::time::SystemTime::now().hash(&mut h);
    std::time::Instant::now().hash(&mut h);
    format!("wwt-{:016x}", h.finish())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: wwt-serve [--addr HOST:PORT] [--scale F] [--queries N] [--workers N]\n\
             \x20                [--shards N] [--max-concurrent-queries N]\n\
             \x20                [--max-delta-tables N]\n\
             \x20                [--admin-token SECRET] [--corpus-dir DIR | --index-path DIR]\n\
             \x20                [--save-index DIR] [--build-only]\n\
             \x20                [--journal PATH] [--journal-fsync always|never]\n\
             \x20                [--log-level error|warn|info|debug] [--log-json]\n\
             env fallbacks: WWT_ADDR, WWT_SCALE, WWT_QUERIES, WWT_SERVER_WORKERS,\n\
             \x20               WWT_SHARDS, WWT_MAX_CONCURRENT_QUERIES, WWT_MAX_DELTA_TABLES,\n\
             \x20               WWT_ADMIN_TOKEN, WWT_CORPUS_DIR, WWT_INDEX_PATH, WWT_SAVE_INDEX,\n\
             \x20               WWT_JOURNAL, WWT_JOURNAL_FSYNC, WWT_LOG_LEVEL, WWT_LOG_JSON\n\
             live ingest: POST /admin/tables (one table-store JSON line per request),\n\
             \x20            POST /admin/tables/batch (JSONL: one table line per row, one\n\
             \x20            rebuild + generation for the whole batch),\n\
             \x20            DELETE /admin/tables/ID, POST /admin/compact — all admin-gated;\n\
             \x20            --max-delta-tables N auto-compacts once the delta holds N tables\n\
             \x20            (0 = manual compaction only)\n\
             durability: --journal PATH appends every mutation to a write-ahead journal\n\
             \x20           (fsync'd before the 202) and replays it at boot; with\n\
             \x20           --index-path, compaction persists the folded index and\n\
             \x20           truncates the journal\n\
             observability: GET /metrics (per-stage histograms), POST /query with\n\
             \x20              \"options\":{{\"explain\":true}} for an inline trace, and the\n\
             \x20              admin-gated GET /debug/slow_queries, GET /debug/trace/ID"
        );
        return;
    }
    // Configure logging before anything can emit a line.
    if let Some(raw) = flag_or_env(&args, "--log-level", "WWT_LOG_LEVEL") {
        match LogLevel::parse(&raw) {
            Some(level) => set_log_level(level),
            None => {
                eprintln!("wwt-serve: --log-level must be error|warn|info|debug, got {raw:?}");
                std::process::exit(2);
            }
        }
    }
    let log_json = args.iter().any(|a| a == "--log-json")
        || std::env::var("WWT_LOG_JSON")
            .is_ok_and(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"));
    set_log_json(log_json);
    let addr =
        flag_or_env(&args, "--addr", "WWT_ADDR").unwrap_or_else(|| "127.0.0.1:7070".to_string());
    let scale: f64 = parsed_flag_or_env(&args, "--scale", "WWT_SCALE", 0.1);
    let n_queries: usize = parsed_flag_or_env(&args, "--queries", "WWT_QUERIES", 8);
    // 0 = the builder's auto default (one shard per core, capped at 8).
    let shards: usize = parsed_flag_or_env(&args, "--shards", "WWT_SHARDS", 0);
    let shards = (shards > 0).then_some(shards);
    let admin_token = flag_or_env(&args, "--admin-token", "WWT_ADMIN_TOKEN")
        .filter(|t| !t.is_empty())
        .unwrap_or_else(generate_admin_token);
    let corpus_dir = flag_or_env(&args, "--corpus-dir", "WWT_CORPUS_DIR").map(PathBuf::from);
    let index_path = flag_or_env(&args, "--index-path", "WWT_INDEX_PATH").map(PathBuf::from);
    let save_index = flag_or_env(&args, "--save-index", "WWT_SAVE_INDEX").map(PathBuf::from);
    let journal_path = flag_or_env(&args, "--journal", "WWT_JOURNAL").map(PathBuf::from);
    let journal_fsync = match flag_or_env(&args, "--journal-fsync", "WWT_JOURNAL_FSYNC") {
        None => FsyncPolicy::Always,
        Some(raw) => FsyncPolicy::parse(&raw).unwrap_or_else(|e| {
            eprintln!("wwt-serve: --journal-fsync: {e}");
            std::process::exit(2);
        }),
    };
    // Env truthiness: "0"/"false"/"" mean off, like an absent variable —
    // an env file disabling the flag must not silently enable it.
    let build_only = args.iter().any(|a| a == "--build-only")
        || std::env::var("WWT_BUILD_ONLY")
            .is_ok_and(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"));

    // The reload source mirrors the boot source: what built the engine
    // is what /admin/reload re-reads. The two flavors are alternatives —
    // refusing the ambiguous combination beats silently preferring one.
    let engine_source = match (&index_path, &corpus_dir) {
        (Some(_), Some(_)) => {
            eprintln!(
                "wwt-serve: --index-path and --corpus-dir are mutually exclusive; \
                 pass the one the server should (re)build from"
            );
            std::process::exit(2);
        }
        (Some(dir), None) => Some(EngineSource::IndexDir(dir.clone())),
        (None, Some(dir)) => Some(EngineSource::CorpusDir(dir.clone())),
        (None, None) => None,
    };

    let mut engine = match &engine_source {
        Some(source) => {
            log!(
                LogLevel::Info,
                "wwt-serve",
                "building engine from {:?} ...",
                source.path()
            );
            if shards.is_some() && matches!(source, EngineSource::IndexDir(_)) {
                log!(
                    LogLevel::Warn,
                    "wwt-serve",
                    "--shards is ignored for --index-path boots; \
                     the persisted manifest owns the shard count"
                );
            }
            match source.build_sharded(WwtConfig::default(), shards) {
                Ok(engine) => engine,
                Err(e) => {
                    log!(
                        LogLevel::Error,
                        "wwt-serve",
                        "engine build from {:?} failed: {e}",
                        source.path()
                    );
                    std::process::exit(1);
                }
            }
        }
        None => {
            let specs: Vec<_> = workload().into_iter().take(n_queries.max(1)).collect();
            log!(
                LogLevel::Info,
                "wwt-serve",
                "generating corpus (scale {scale}, {} workload queries) ...",
                specs.len()
            );
            let corpus = CorpusGenerator::new(CorpusConfig {
                scale,
                ..CorpusConfig::default()
            })
            .generate_for(&specs);
            log!(
                LogLevel::Info,
                "wwt-serve",
                "extracting + indexing {} documents ...",
                corpus.documents.len()
            );
            bind_corpus_sharded(&corpus, WwtConfig::default(), shards).engine
        }
    };
    log!(
        LogLevel::Info,
        "wwt-serve",
        "engine ready: {} tables over {} index shard(s)",
        engine.store().len(),
        engine.n_shards()
    );

    if let Some(dir) = &save_index {
        if let Err(e) = engine.save_to_dir(dir) {
            log!(
                LogLevel::Error,
                "wwt-serve",
                "saving the index to {} failed: {e}",
                dir.display()
            );
            std::process::exit(1);
        }
        log!(
            LogLevel::Info,
            "wwt-serve",
            "index persisted to {}",
            dir.display()
        );
    }
    if build_only {
        log!(
            LogLevel::Info,
            "wwt-serve",
            "--build-only: exiting without serving"
        );
        return;
    }

    // Open the journal and replay any surviving mutations over the
    // freshly built engine: everything acknowledged before the last
    // shutdown — or crash — is queryable again before the socket opens.
    // (This runs after --save-index so that flag keeps persisting the
    // frozen as-built engine.)
    let mut journal = None;
    if let Some(path) = &journal_path {
        let (opened, replay) = match Journal::open(path, journal_fsync) {
            Ok(opened) => opened,
            Err(e) => {
                log!(
                    LogLevel::Error,
                    "wwt-serve",
                    "could not open the journal at {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        };
        if let Some(tail) = &replay.torn_tail {
            log!(
                LogLevel::Warn,
                "wwt-serve",
                "journal tail torn at byte {} ({}; {} byte(s) dropped) — \
                 continuing with the intact prefix",
                tail.offset,
                tail.reason,
                tail.dropped_bytes
            );
        }
        if !replay.records.is_empty() {
            engine = match engine.with_journal_replayed(&replay.records) {
                Ok(engine) => engine,
                Err(e) => {
                    log!(
                        LogLevel::Error,
                        "wwt-serve",
                        "journal replay from {} failed: {e}",
                        path.display()
                    );
                    std::process::exit(1);
                }
            };
            log!(
                LogLevel::Info,
                "wwt-serve",
                "replayed {} journaled mutation(s): delta now {} table(s), {} tombstone(s)",
                replay.records.len(),
                engine.delta_len(),
                engine.tombstone_len()
            );
        }
        log!(
            LogLevel::Info,
            "wwt-serve",
            "journal attached at {} (fsync: {})",
            path.display(),
            journal_fsync.label()
        );
        journal = Some(opened);
    }

    let mut server_config = ServerConfig {
        addr,
        admin_token: Some(admin_token.clone()),
        engine_source,
        ..ServerConfig::default()
    };
    server_config.workers = parsed_flag_or_env(
        &args,
        "--workers",
        "WWT_SERVER_WORKERS",
        server_config.workers,
    );
    server_config.max_concurrent_queries = parsed_flag_or_env(
        &args,
        "--max-concurrent-queries",
        "WWT_MAX_CONCURRENT_QUERIES",
        server_config.max_concurrent_queries,
    );
    server_config.max_delta_tables = parsed_flag_or_env(
        &args,
        "--max-delta-tables",
        "WWT_MAX_DELTA_TABLES",
        server_config.max_delta_tables,
    );

    let sample_query = sample_query(&engine);
    let service = Arc::new(TableSearchService::new(Arc::new(engine)));
    if let Some(journal) = journal {
        // Compaction may persist+truncate only when the engine source is
        // an index directory it can fold the delta back into; a corpus
        // or synthetic boot keeps every journal record so a rebuild
        // replays the full mutation history.
        service.attach_journal(journal, index_path.clone());
    }
    let handle = match serve(service, server_config) {
        Ok(handle) => handle,
        Err(e) => {
            log!(LogLevel::Error, "wwt-serve", "bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on http://{}", handle.addr());
    println!(
        "try: curl -s -X POST http://{}/query -d '{{\"query\":\"{sample_query}\"}}'",
        handle.addr(),
    );
    println!(
        "reload: curl -s -X POST -H 'x-admin-token: {admin_token}' http://{}/admin/reload",
        handle.addr()
    );
    println!(
        "ingest: curl -s -X POST -H 'x-admin-token: {admin_token}' http://{}/admin/tables \
         --data-binary @table.json",
        handle.addr()
    );
    println!(
        "stop: curl -s -X POST -H 'x-admin-token: {admin_token}' http://{}/admin/shutdown",
        handle.addr()
    );

    handle.wait_shutdown_requested();
    log!(
        LogLevel::Info,
        "wwt-serve",
        "shutdown requested; draining in-flight requests ..."
    );
    // Snapshot the counters only after the drain so in-flight requests
    // completed during shutdown are included in the farewell line.
    let service = Arc::clone(handle.service());
    let total = handle.shutdown();
    let stats = service.stats();
    log!(
        LogLevel::Info,
        "wwt-serve",
        "served {total} requests over {} generation(s) \
         (cache: {} hits / {} misses / {} coalesced); bye",
        stats.generation + 1,
        stats.hits,
        stats.misses,
        stats.coalesced
    );
}

/// A query hint for the startup banner: the first workload query when
/// serving the synthetic corpus, or one built from the first indexed
/// table's headers otherwise.
fn sample_query(engine: &Engine) -> String {
    engine
        .store()
        .iter()
        .next()
        .filter(|t| t.n_header_rows() > 0)
        .map(|t| {
            let headers: Vec<&str> = (0..t.n_cols().min(2))
                .map(|c| t.header(0, c))
                .filter(|h| !h.is_empty())
                .collect();
            headers.join(" | ").to_lowercase()
        })
        .filter(|q| !q.is_empty())
        .unwrap_or_else(|| "country | currency".to_string())
}
