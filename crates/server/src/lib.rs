//! # wwt-server
//!
//! The network boundary of the WWT reproduction: a dependency-free
//! HTTP/1.1 server over `std::net` that exposes a shared
//! [`TableSearchService`](wwt_service::TableSearchService) — the paper's
//! structured search engine — as an online serving endpoint.
//!
//! * **Routes:** `POST /query` (one request, per-request
//!   [`QueryOptions`](wwt_engine::QueryOptions) overrides including a
//!   `deadline_ms` budget), `POST /query/batch`, `GET /healthz` (status
//!   plus engine generation), `GET /version`, `GET /stats` (serving
//!   counters), `GET /metrics` (Prometheus text format, including
//!   per-stage `wwt_stage_duration_us` histograms),
//!   `POST /admin/shutdown` and `POST /admin/reload` (both disabled
//!   unless [`ServerConfig::admin_token`] is set; requests must carry
//!   the token in an `x-admin-token` or `Authorization: Bearer`
//!   header), and the equally admin-gated `GET /debug/slow_queries`
//!   and `GET /debug/trace/{request_id}` flight-recorder views.
//! * **Observability:** every response echoes the request's
//!   `x-request-id` header (or a server-minted id) on success *and*
//!   error paths; `"options":{"explain":true}` attaches a full span
//!   tree to the response under `diagnostics.trace`; the service's
//!   flight recorder retains the slowest / most recent / anomalous
//!   queries with stage-level traces for the debug routes.
//! * **Hot reload:** with an [`EngineSource`] configured,
//!   `POST /admin/reload` rebuilds the engine on a background thread
//!   and swaps it into the serving slot atomically — queries keep being
//!   answered throughout, and the bumped generation (visible in
//!   `/healthz`) logically invalidates stale cache entries.
//! * **Concurrency:** one acceptor thread, a fixed worker pool, and a
//!   bounded accept queue (overflow answers 503 with `Retry-After`);
//!   keep-alive connections are bounded by read timeouts and a
//!   per-connection request cap.
//! * **Errors:** unparseable queries and invalid option values answer
//!   400, expired deadlines 504, server-side failures 500 — always as a
//!   JSON `{"error":{…}}` body.
//! * **Shutdown:** [`ServerHandle::shutdown`] stops accepting, completes
//!   every accepted request, and joins all threads before returning.
//!
//! The JSON bodies ride on the workspace's shared [`wwt_json`] codec —
//! the same hand-rolled value tree the table store persists through.
//!
//! ```
//! use std::sync::Arc;
//! use wwt_engine::EngineBuilder;
//! use wwt_server::{serve, HttpClient, ServerConfig};
//! use wwt_service::TableSearchService;
//!
//! let mut builder = EngineBuilder::new();
//! builder.add_html(
//!     "<html><body><p>countries and currency</p><table>\
//!      <tr><th>Country</th><th>Currency</th></tr>\
//!      <tr><td>India</td><td>Rupee</td></tr></table></body></html>",
//! );
//! let service = Arc::new(TableSearchService::new(Arc::new(builder.build())));
//! let handle = serve(service, ServerConfig::default()).unwrap();
//!
//! let mut client = HttpClient::connect(handle.addr()).unwrap();
//! let response = client
//!     .post("/query", r#"{"query":"country | currency"}"#)
//!     .unwrap();
//! assert_eq!(response.status, 200);
//! assert!(response.text().contains("\"Rupee\""));
//! handle.shutdown(); // drains in-flight requests, joins all threads
//! ```

pub mod client;
pub mod http;
pub mod metrics;
mod server;
pub mod source;
pub mod wire;

pub use client::{run_load, HttpClient, HttpResponse, LoadReport};
pub use metrics::{Metrics, Route};
pub use server::{serve, ServerConfig, ServerHandle};
pub use source::EngineSource;
pub use wire::{encode_response, parse_query_request, ApiError};
