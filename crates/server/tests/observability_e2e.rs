//! End-to-end tests for the observability layer: `x-request-id`
//! propagation on every response path, explain-mode inline traces, the
//! per-stage Prometheus histograms, and the admin-gated slow-query
//! flight-recorder routes.

use std::sync::Arc;
use wwt_engine::EngineBuilder;
use wwt_json::Json;
use wwt_server::{serve, HttpClient, ServerConfig, ServerHandle};
use wwt_service::TableSearchService;

/// Two-table currency engine: instant to build, answers in microseconds.
fn tiny_service() -> Arc<TableSearchService> {
    let mut b = EngineBuilder::new();
    for i in 0..2 {
        b.add_html(&format!(
            "<html><head><title>currencies {i}</title></head><body>\
             <p>List of countries and their currency</p>\
             <table><tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>India</td><td>Rupee</td></tr>\
             <tr><td>Japan</td><td>Yen</td></tr></table></body></html>"
        ));
    }
    Arc::new(TableSearchService::new(Arc::new(b.build())))
}

fn start_admin(token: &str) -> ServerHandle {
    let config = ServerConfig {
        admin_token: Some(token.to_string()),
        ..ServerConfig::default()
    };
    serve(tiny_service(), config).expect("bind ephemeral port")
}

#[test]
fn request_ids_are_echoed_on_every_response_path() {
    let handle = serve(tiny_service(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // A client-supplied id comes back verbatim on success.
    let ok = client
        .post_with_headers(
            "/query",
            r#"{"query":"country | currency"}"#,
            &[("x-request-id", "rid-echo-1")],
        )
        .unwrap();
    assert_eq!(ok.status, 200);
    assert_eq!(ok.header("x-request-id"), Some("rid-echo-1"));

    // ... and on client errors: bad JSON (400), unknown route (404),
    // wrong method (405).
    let bad = client
        .post_with_headers("/query", "{", &[("x-request-id", "rid-echo-2")])
        .unwrap();
    assert_eq!(bad.status, 400);
    assert_eq!(bad.header("x-request-id"), Some("rid-echo-2"));
    let missing = client
        .get_with_headers("/nope", &[("x-request-id", "rid-echo-3")])
        .unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(missing.header("x-request-id"), Some("rid-echo-3"));
    let wrong_method = client
        .get_with_headers("/query", &[("x-request-id", "rid-echo-4")])
        .unwrap();
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("x-request-id"), Some("rid-echo-4"));

    // Without a client id the server mints one (pid + sequence), so
    // every log line and flight record still has a handle.
    let minted = client.get("/healthz").unwrap();
    let id = minted.header("x-request-id").expect("generated id");
    assert!(id.starts_with("wwt-"), "{id:?}");

    // Non-printable bytes cannot ride into the response head: the echo
    // keeps only ASCII-graphic characters.
    let hostile = client
        .get_with_headers("/healthz", &[("x-request-id", "rid  echo\t5")])
        .unwrap();
    assert_eq!(hostile.header("x-request-id"), Some("ridecho5"));
    handle.shutdown();
}

#[test]
fn explain_returns_an_inline_trace_bound_to_the_request_id() {
    let handle = serve(tiny_service(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let resp = client
        .post_with_headers(
            "/query",
            r#"{"query":"country | currency","options":{"explain":true}}"#,
            &[("x-request-id", "rid-explain")],
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let v = Json::parse(&resp.text()).unwrap();
    let trace = v
        .get("diagnostics")
        .and_then(|d| d.get("trace"))
        .expect("explain responses embed a trace");
    assert_eq!(
        trace.get("request_id").and_then(Json::as_str),
        Some("rid-explain")
    );
    let spans = trace.get("spans").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for required in ["probe1", "read1", "consolidate"] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    let notes = trace.get("notes").expect("trace notes");
    assert_eq!(
        notes.get("cache").and_then(Json::as_str),
        Some("bypass (explain)")
    );
    assert!(notes.get("candidates").is_some());

    // The same query without explain must not grow a trace key.
    let plain = client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    assert!(
        !plain.text().contains("\"trace\""),
        "plain responses must stay byte-compatible"
    );
    handle.shutdown();
}

#[test]
fn stage_histograms_distinguish_engine_runs_from_cache_hits() {
    let handle = serve(tiny_service(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Cold (engine ran: per-stage buckets tick), then warm (cache hit:
    // only the cache_lookup stage ticks).
    for _ in 0..2 {
        let resp = client
            .post("/query", r#"{"query":"country | currency"}"#)
            .unwrap();
        assert_eq!(resp.status, 200);
    }

    let text = client.get("/metrics").unwrap().text();
    assert!(
        text.contains("# TYPE wwt_stage_duration_us histogram"),
        "{text}"
    );
    for stage in ["probe1", "read1", "column_map", "consolidate"] {
        assert!(
            text.contains(&format!(
                "wwt_stage_duration_us_bucket{{stage=\"{stage}\",le=\"+Inf\"}} 1\n"
            )),
            "stage {stage} must record exactly the one engine run:\n{text}"
        );
    }
    assert!(
        text.contains("wwt_stage_duration_us_bucket{stage=\"cache_lookup\",le=\"+Inf\"} 1\n"),
        "the warm request must land in cache_lookup:\n{text}"
    );
    // Serialization is observed for both requests.
    assert!(
        text.contains("wwt_stage_duration_us_bucket{stage=\"serialize\",le=\"+Inf\"} 2\n"),
        "{text}"
    );
    // The flight recorder's counters ride along on /metrics and /stats.
    assert!(text.contains("wwt_flight_records_total 2\n"), "{text}");
    let stats = Json::parse(&client.get("/stats").unwrap().text()).unwrap();
    assert_eq!(stats.get("flight_records").and_then(Json::as_u64), Some(2));
    assert_eq!(
        stats.get("flight_deadline_exceeded").and_then(Json::as_u64),
        Some(0)
    );
    handle.shutdown();
}

#[test]
fn debug_routes_are_admin_gated_and_serve_full_traces() {
    // No token configured: the debug routes do not exist.
    let bare = serve(tiny_service(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(bare.addr()).unwrap();
    assert_eq!(client.get("/debug/slow_queries").unwrap().status, 404);
    assert_eq!(client.get("/debug/trace/any").unwrap().status, 404);
    bare.shutdown();

    let handle = start_admin("sesame");
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // Wrong or missing token: 403, like every other admin route.
    assert_eq!(client.get("/debug/slow_queries").unwrap().status, 403);
    let wrong = client
        .get_with_headers("/debug/slow_queries", &[("x-admin-token", "guess")])
        .unwrap();
    assert_eq!(wrong.status, 403);

    // Record one cold query under a known id, then read it back.
    let resp = client
        .post_with_headers(
            "/query",
            r#"{"query":"country | currency"}"#,
            &[("x-request-id", "rid-flight")],
        )
        .unwrap();
    assert_eq!(resp.status, 200);

    let admin = [("x-admin-token", "sesame")];
    let slow = client
        .get_with_headers("/debug/slow_queries", &admin)
        .unwrap();
    assert_eq!(slow.status, 200);
    let v = Json::parse(&slow.text()).unwrap();
    let recent = v.get("recent").and_then(Json::as_arr).unwrap();
    let record = recent
        .iter()
        .find(|r| r.get("request_id").and_then(Json::as_str) == Some("rid-flight"))
        .expect("the query must be retained in the recent ring");
    assert_eq!(
        record.get("query").and_then(Json::as_str),
        Some("country | currency")
    );
    assert_eq!(record.get("outcome").and_then(Json::as_str), Some("ok"));
    // Retained traces are stage-level even for plain (non-explain)
    // queries: the recorder synthesizes them from the stage timings.
    let spans = record
        .get("trace")
        .and_then(|t| t.get("spans"))
        .and_then(Json::as_arr)
        .unwrap();
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for required in ["probe1", "read1", "column_map", "consolidate"] {
        assert!(
            names.contains(&required),
            "missing span {required}: {names:?}"
        );
    }
    assert!(v.get("slowest").and_then(Json::as_arr).is_some());
    assert!(v.get("anomalies").and_then(Json::as_arr).is_some());
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("recorded"))
            .and_then(Json::as_u64),
        Some(1)
    );

    // Point lookup by request id, and a 404 once the id is unknown.
    let trace = client
        .get_with_headers("/debug/trace/rid-flight", &admin)
        .unwrap();
    assert_eq!(trace.status, 200);
    let t = Json::parse(&trace.text()).unwrap();
    assert_eq!(
        t.get("request_id").and_then(Json::as_str),
        Some("rid-flight")
    );
    let gone = client
        .get_with_headers("/debug/trace/rid-unknown", &admin)
        .unwrap();
    assert_eq!(gone.status, 404);
    assert!(gone.text().contains("rid-unknown"), "{}", gone.text());
    handle.shutdown();
}
