//! End-to-end tests over real sockets: an ephemeral-port server, the
//! keep-alive client, byte-identity with in-process answers, metrics
//! content, and graceful shutdown draining in-flight requests.

use std::sync::Arc;
use wwt_engine::{bind_corpus, EngineBuilder, QueryRequest, WwtConfig};
use wwt_json::Json;
use wwt_server::{run_load, serve, HttpClient, ServerConfig, ServerHandle};
use wwt_service::{ServiceConfig, TableSearchService};

/// Two-table currency engine: instant to build, answers in microseconds.
fn tiny_service() -> Arc<TableSearchService> {
    let mut b = EngineBuilder::new();
    for i in 0..2 {
        b.add_html(&format!(
            "<html><head><title>currencies {i}</title></head><body>\
             <p>List of countries and their currency</p>\
             <table><tr><th>Country</th><th>Currency</th></tr>\
             <tr><td>India</td><td>Rupee</td></tr>\
             <tr><td>Japan</td><td>Yen</td></tr></table></body></html>"
        ));
    }
    Arc::new(TableSearchService::new(Arc::new(b.build())))
}

/// A corpus-backed engine whose cold queries take real milliseconds —
/// slow enough that a shutdown can race an in-flight request. Built once
/// and shared: the corpus generation dominates the test binary's time.
fn slow_service(cache: bool) -> Arc<TableSearchService> {
    static ENGINE: std::sync::OnceLock<Arc<wwt_engine::Engine>> = std::sync::OnceLock::new();
    let engine = ENGINE.get_or_init(|| {
        let specs: Vec<_> = wwt_corpus::workload()
            .into_iter()
            .filter(|s| s.query.to_string().starts_with("country | currency"))
            .collect();
        let corpus = wwt_corpus::CorpusGenerator::new(wwt_corpus::CorpusConfig::small())
            .generate_for(&specs);
        Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine)
    });
    let config = ServiceConfig {
        cache_capacity: if cache { 1024 } else { 0 },
        ..ServiceConfig::default()
    };
    Arc::new(TableSearchService::with_config(Arc::clone(engine), config))
}

fn start(service: Arc<TableSearchService>) -> ServerHandle {
    serve(service, ServerConfig::default()).expect("bind ephemeral port")
}

#[test]
fn healthz_stats_and_unknown_routes() {
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), "{\"status\":\"ok\",\"generation\":0}");

    let version = client.get("/version").unwrap();
    assert_eq!(version.status, 200);
    let v = Json::parse(&version.text()).unwrap();
    assert_eq!(
        v.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(matches!(
        v.get("profile").and_then(Json::as_str),
        Some("debug") | Some("release")
    ));
    assert_eq!(v.get("generation").and_then(Json::as_u64), Some(0));

    // Fresh server: stats must report a 0.0 (never NaN) hit rate.
    let stats = client.get("/stats").unwrap();
    assert_eq!(stats.status, 200);
    let v = Json::parse(&stats.text()).unwrap();
    assert_eq!(v.get("hits").and_then(Json::as_u64), Some(0));
    assert_eq!(v.get("hit_rate").and_then(Json::as_f64), Some(0.0));

    let missing = client.get("/nope").unwrap();
    assert_eq!(missing.status, 404);
    let wrong_method = client.get("/query").unwrap();
    assert_eq!(wrong_method.status, 405);
    assert!(wrong_method.text().contains("requires POST"));

    handle.shutdown();
}

#[test]
fn parse_errors_answer_400_engine_stays_up() {
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    for (body, needle) in [
        ("{", "invalid json"),
        (r#"{"query":" | "}"#, "no column keywords"),
        (
            r#"{"query":"a","options":{"algorithm":"magic"}}"#,
            "unknown algorithm",
        ),
        (r#"{"typo":"a"}"#, "unknown field"),
    ] {
        let resp = client.post("/query", body).unwrap();
        assert_eq!(resp.status, 400, "{body}");
        let v = Json::parse(&resp.text()).unwrap();
        let msg = v
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains(needle), "{msg:?} !~ {needle:?}");
    }

    // Invalid engine options (WwtError::Invalid) are the client's fault:
    // 400, not 5xx-alert noise.
    let resp = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"probe1_k":0}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 400);

    // The same connection still serves good requests afterwards.
    let ok = client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    assert_eq!(ok.status, 200);
    handle.shutdown();
}

#[test]
fn query_response_is_byte_identical_to_in_process_answer() {
    let service = tiny_service();
    let handle = start(Arc::clone(&service));

    // Answer in-process first: the HTTP request then hits the same cache
    // entry, so the serialized bytes must match exactly (timings and
    // all).
    let request = QueryRequest::parse("country | currency").unwrap();
    let reference = service.answer(&request).unwrap();
    let expected = wwt_server::encode_response(&request, &reference);

    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.text(), expected, "wire bytes != in-process encoding");

    // Sanity on the payload itself.
    let v = Json::parse(&resp.text()).unwrap();
    assert_eq!(
        v.get("columns").and_then(Json::as_arr).map(<[Json]>::len),
        Some(2)
    );
    let rows = v.get("rows").and_then(Json::as_arr).unwrap();
    assert!(!rows.is_empty());
    let india = rows
        .iter()
        .find(|r| {
            r.get("cells")
                .and_then(Json::as_arr)
                .is_some_and(|c| c.first().and_then(Json::as_str) == Some("India"))
        })
        .expect("India row");
    assert_eq!(india.get("support").and_then(Json::as_u64), Some(2));
    assert!(v
        .get("diagnostics")
        .and_then(|d| d.get("timing_us"))
        .is_some());
    handle.shutdown();
}

#[test]
fn options_roundtrip_over_the_wire() {
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"max_rows":1,"algorithm":"independent"}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let v = Json::parse(&resp.text()).unwrap();
    assert_eq!(
        v.get("rows").and_then(Json::as_arr).map(<[Json]>::len),
        Some(1)
    );
    let d = v.get("diagnostics").unwrap();
    assert!(d.get("rows_before_limit").and_then(Json::as_u64).unwrap() >= 1);
    handle.shutdown();
}

#[test]
fn batch_preserves_slots_including_errors() {
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client
        .post(
            "/query/batch",
            r#"{"requests":[
                {"query":"country | currency"},
                {"query":"country | currency","options":{"probe1_k":0}},
                {"query":"currency"}]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let v = Json::parse(&resp.text()).unwrap();
    let slots = v.get("responses").and_then(Json::as_arr).unwrap();
    assert_eq!(slots.len(), 3);
    assert!(slots[0].get("rows").is_some());
    // The bad-options slot carries an error object without failing the
    // batch.
    let err = slots[1].get("error").expect("error slot");
    assert_eq!(err.get("status").and_then(Json::as_u64), Some(400));
    assert!(slots[2].get("rows").is_some());
    handle.shutdown();
}

#[test]
fn concurrent_requests_are_byte_identical_across_connections() {
    const CONNECTIONS: usize = 8;
    const REQUESTS_PER_CONNECTION: usize = 12;
    let service = tiny_service();
    let handle = start(Arc::clone(&service));

    let bodies = [
        (r#"{"query":"country | currency"}"#, "country | currency"),
        (r#"{"query":"currency"}"#, "currency"),
    ];
    // In-process references (shared cache ⇒ identical bytes over HTTP).
    let expected: Vec<String> = bodies
        .iter()
        .map(|(_, q)| {
            let req = QueryRequest::parse(q).unwrap();
            let resp = service.answer(&req).unwrap();
            wwt_server::encode_response(&req, &resp)
        })
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..CONNECTIONS {
            let addr = handle.addr();
            let bodies = &bodies;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..REQUESTS_PER_CONNECTION {
                    let (body, _) = bodies[i % bodies.len()];
                    let resp = client.post("/query", body).unwrap();
                    assert_eq!(resp.status, 200);
                    assert_eq!(resp.text(), expected[i % bodies.len()]);
                }
            });
        }
    });

    let served = handle.metrics().requests_total();
    assert_eq!(served, (CONNECTIONS * REQUESTS_PER_CONNECTION) as u64);
    handle.shutdown();
}

#[test]
fn metrics_expose_requests_latency_histogram_and_cache_stats() {
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    client.post("/query", r#"{"query":" | "}"#).unwrap();

    let resp = client.get("/metrics").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp
        .header("content-type")
        .unwrap()
        .starts_with("text/plain"));
    let text = resp.text();
    assert!(text.contains("wwt_http_requests_total{route=\"query\",code=\"200\"} 2\n"));
    assert!(text.contains("wwt_http_requests_total{route=\"query\",code=\"400\"} 1\n"));
    assert!(text.contains("# TYPE wwt_http_request_duration_seconds histogram"));
    assert!(text.contains("wwt_http_request_duration_seconds_bucket{le=\"+Inf\"} 3\n"));
    assert!(text.contains("wwt_http_request_duration_seconds_count 3\n"));
    assert!(text.contains("wwt_cache_hits_total 1\n"));
    assert!(text.contains("wwt_cache_misses_total 1\n"));
    assert!(text.contains("wwt_cache_coalesced_total 0\n"));
    assert!(text.contains("wwt_cache_entries 1\n"));
    // The /metrics request itself is mid-dispatch while rendering.
    assert!(text.contains("wwt_http_requests_in_flight 1\n"));
    handle.shutdown();
}

#[test]
fn load_generator_drives_the_server() {
    let handle = start(tiny_service());
    let report = run_load(
        handle.addr(),
        &[
            r#"{"query":"country | currency"}"#.to_string(),
            r#"{"query":"currency"}"#.to_string(),
        ],
        4,
        25,
    );
    assert_eq!(report.ok, 100, "{report:?}");
    assert_eq!(report.errors, 0);
    assert!(report.p50 <= report.p99 && report.p99 <= report.max);
    assert!(report.throughput() > 0.0);
    handle.shutdown();
}

#[test]
fn deadlines_map_to_504_with_their_own_counter_and_change_nothing_when_generous() {
    let service = slow_service(true);
    let handle = start(Arc::clone(&service));
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    // A zero budget is shed at admission: 504 before the request ever
    // reaches the service, so the engine stays untouched, nothing is
    // cached, and only the HTTP-level counters tick.
    let resp = client
        .post(
            "/query",
            r#"{"query":"country | currency | deadline probe","options":{"deadline_ms":0}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    let v = Json::parse(&resp.text()).unwrap();
    let msg = v
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap();
    assert!(msg.contains("deadline exceeded"), "{msg:?}");
    assert!(msg.contains("admission"), "{msg:?}");

    // The dedicated counters tick — deadline and shed in Prometheus,
    // while the service-level stat stays 0 (the service never ran).
    let metrics = client.get("/metrics").unwrap().text();
    assert!(
        metrics.contains("wwt_http_deadline_exceeded_total 1\n"),
        "{metrics}"
    );
    assert!(metrics.contains("wwt_queries_shed_total 1\n"), "{metrics}");
    let stats = Json::parse(&client.get("/stats").unwrap().text()).unwrap();
    assert_eq!(
        stats.get("deadline_exceeded").and_then(Json::as_u64),
        Some(0)
    );

    // No deadline, then a generous deadline: byte-identical responses
    // (the deadline is excluded from the cache key, so the second is the
    // same cached entry).
    let body = r#"{"query":"country | currency"}"#;
    let plain = client.post("/query", body).unwrap();
    assert_eq!(plain.status, 200);
    let generous = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"deadline_ms":60000}}"#,
        )
        .unwrap();
    assert_eq!(generous.status, 200);
    assert_eq!(
        generous.text(),
        plain.text(),
        "a deadline that never trips must not change the response bytes"
    );

    // Batch slots carry per-slot 504 errors without failing the batch.
    let resp = client
        .post(
            "/query/batch",
            r#"{"requests":[
                {"query":"country | currency"},
                {"query":"country | currency | other probe","options":{"deadline_ms":0}}]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let v = Json::parse(&resp.text()).unwrap();
    let slots = v.get("responses").and_then(Json::as_arr).unwrap();
    assert!(slots[0].get("rows").is_some());
    assert_eq!(
        slots[1]
            .get("error")
            .and_then(|e| e.get("status"))
            .and_then(Json::as_u64),
        Some(504)
    );
    handle.shutdown();
}

#[test]
fn admin_shutdown_requires_a_configured_matching_token() {
    // No token configured: the route does not exist, the server stays up.
    let handle = start(tiny_service());
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let resp = client.post("/admin/shutdown", "").unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();

    // Token configured: wrong/missing tokens are 403 and leave the
    // server up; the right token (either header form) shuts it down.
    let config = ServerConfig {
        admin_token: Some("sesame".to_string()),
        ..ServerConfig::default()
    };
    let handle = serve(tiny_service(), config).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    assert_eq!(client.post("/admin/shutdown", "").unwrap().status, 403);
    let wrong = client
        .post_with_headers("/admin/shutdown", "", &[("x-admin-token", "guess")])
        .unwrap();
    assert_eq!(wrong.status, 403);
    let wrong_bearer = client
        .post_with_headers("/admin/shutdown", "", &[("authorization", "Bearer guess")])
        .unwrap();
    assert_eq!(wrong_bearer.status, 403);
    assert_eq!(client.get("/healthz").unwrap().status, 200);

    let ok = client
        .post_with_headers("/admin/shutdown", "", &[("x-admin-token", "sesame")])
        .unwrap();
    assert_eq!(ok.status, 200);
    handle.wait_shutdown_requested();
    handle.shutdown();
}

#[test]
fn keep_alive_connections_are_rotated_after_the_request_cap() {
    let config = ServerConfig {
        max_requests_per_connection: 2,
        ..ServerConfig::default()
    };
    let handle = serve(tiny_service(), config).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let first = client.get("/healthz").unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    // The capped request still succeeds but closes the connection.
    let second = client.get("/healthz").unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("connection"), Some("close"));
    assert!(
        client.get("/healthz").is_err(),
        "connection must be closed after the per-connection cap"
    );
    // A fresh connection serves again.
    let mut fresh = HttpClient::connect(handle.addr()).unwrap();
    assert_eq!(fresh.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

#[test]
fn accept_queue_overflow_answers_503_instead_of_queueing_unbounded() {
    // One worker and a one-slot queue. Idle keep-alive connections never
    // send a request, so the worker pins on the first one (until its
    // read timeout) and the queue fills with the second; every accept
    // after that must be turned away with 503 instead of queueing
    // without bound.
    let config = ServerConfig {
        workers: 1,
        pending_connections: 1,
        ..ServerConfig::default()
    };
    let handle = serve(tiny_service(), config).unwrap();
    let addr = handle.addr();

    let idle: Vec<HttpClient> = (0..4).map(|_| HttpClient::connect(addr).unwrap()).collect();
    let mut probe = HttpClient::connect(addr).unwrap();
    let resp = probe.get("/healthz").unwrap();
    assert_eq!(resp.status, 503, "full accept queue must answer 503");
    assert_eq!(resp.header("connection"), Some("close"));
    assert_eq!(
        resp.header("retry-after"),
        Some("1"),
        "503 must tell clients when to retry"
    );
    assert!(resp.text().contains("capacity"), "{}", resp.text());

    // Freeing the idle connections unclogs the pool; a new client is
    // served again once the worker drains the closed connections.
    drop(idle);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let ok = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/healthz"))
            .is_ok_and(|r| r.status == 200);
        if ok {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "pool never recovered after idle connections closed"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    // Cache off so the query actually runs the (slow) engine while the
    // shutdown races it.
    let service = slow_service(false);
    let handle = start(Arc::clone(&service));
    let addr = handle.addr();

    // Fire the (slow, uncached) request, then shut the server down while
    // it is being dispatched.
    let in_flight = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).unwrap();
        client.post("/query", r#"{"query":"country | currency"}"#)
    });
    // Wait until a worker has actually picked the request up (or even
    // finished it) — no sleep race with the client thread's connect.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while handle.metrics().in_flight() == 0 && handle.metrics().requests_total() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "request never reached the server"
        );
        std::thread::yield_now();
    }
    handle.shutdown(); // returns only after every worker exited

    let resp = in_flight
        .join()
        .unwrap()
        .expect("in-flight request must complete during graceful shutdown");
    assert_eq!(resp.status, 200);
    let v = Json::parse(&resp.text()).expect("drained response must be complete JSON");
    assert!(v.get("rows").is_some());

    // After shutdown the port no longer accepts work.
    assert!(
        HttpClient::connect(addr)
            .and_then(|mut c| c.get("/healthz"))
            .is_err(),
        "server must be gone after shutdown"
    );
}

#[test]
fn singleflight_coalesces_identical_http_requests() {
    const CALLERS: usize = 6;
    let service = slow_service(true);
    let handle = start(Arc::clone(&service));
    let addr = handle.addr();

    let barrier = std::sync::Barrier::new(CALLERS);
    std::thread::scope(|scope| {
        for _ in 0..CALLERS {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                barrier.wait();
                let resp = client
                    .post("/query", r#"{"query":"country | currency"}"#)
                    .unwrap();
                assert_eq!(resp.status, 200);
            });
        }
    });

    let stats = service.stats();
    assert_eq!(
        stats.misses, 1,
        "one engine run for {CALLERS} callers: {stats:?}"
    );
    assert_eq!(stats.hits + stats.coalesced, (CALLERS - 1) as u64);
    handle.shutdown();
}
