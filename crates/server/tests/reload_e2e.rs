//! End-to-end tests for hot engine snapshot swap: a server reloading its
//! index under live query traffic must never drop or corrupt a request,
//! post-swap answers must reflect the new corpus, and pre-swap cache
//! entries must never be served across generations.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wwt_engine::{EngineBuilder, WwtConfig};
use wwt_json::Json;
use wwt_server::{serve, EngineSource, HttpClient, ServerConfig, ServerHandle};
use wwt_service::TableSearchService;

const TOKEN: &str = "reload-sesame";

fn currency_doc(rows: &[(&str, &str)]) -> String {
    let body: String = rows
        .iter()
        .map(|(c, m)| format!("<tr><td>{c}</td><td>{m}</td></tr>"))
        .collect();
    format!(
        "<html><body><p>List of countries and their currency</p>\
         <table><tr><th>Country</th><th>Currency</th></tr>{body}</table></body></html>"
    )
}

fn dog_doc() -> String {
    "<html><body><p>dog breeds and their origin</p>\
     <table><tr><th>Breed</th><th>Origin</th></tr>\
     <tr><td>Beagle</td><td>England</td></tr>\
     <tr><td>Akita</td><td>Japan</td></tr></table></body></html>"
        .to_string()
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("wwt_reload_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn serve_from(source: EngineSource) -> ServerHandle {
    let engine = source.build(WwtConfig::default()).expect("boot engine");
    let service = Arc::new(TableSearchService::new(Arc::new(engine)));
    let config = ServerConfig {
        admin_token: Some(TOKEN.to_string()),
        engine_source: Some(source),
        // An explicit pool: on a single-core runner the default collapses
        // to one worker, where an idle keep-alive connection pins the
        // whole server until its read timeout.
        workers: 4,
        ..ServerConfig::default()
    };
    serve(service, config).expect("bind ephemeral port")
}

fn trigger_reload(addr: std::net::SocketAddr) {
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .post_with_headers("/admin/reload", "", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert!(
        resp.text().contains("\"status\":\"reloading\""),
        "{}",
        resp.text()
    );
}

/// Polls `/healthz` until it reports `generation` (the reload runs on a
/// background thread; completion is observed, not assumed).
fn wait_for_generation(addr: std::net::SocketAddr, generation: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/healthz"))
            .map(|r| r.text())
            .unwrap_or_default();
        if text.contains(&format!("\"generation\":{generation}")) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "generation never reached {generation}; last /healthz: {text}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// The acceptance test for the tentpole: clients hammering `POST /query`
/// observe only 200s — no 5xx, no connection errors — while
/// `/admin/reload` rebuilds the engine from a grown corpus and swaps it
/// in; afterwards answers reflect the new corpus.
#[test]
fn zero_downtime_swap_under_live_traffic() {
    const HAMMERS: usize = 4;
    let corpus = fresh_dir("swap");
    std::fs::write(
        corpus.join("a.html"),
        currency_doc(&[("India", "Rupee"), ("Japan", "Yen")]),
    )
    .unwrap();
    std::fs::write(corpus.join("b.html"), currency_doc(&[("India", "Rupee")])).unwrap();
    let handle = serve_from(EngineSource::CorpusDir(corpus.clone()));
    let addr = handle.addr();
    let service = Arc::clone(handle.service());

    // Pre-swap: warm the cache; Brazil is not in the corpus yet.
    let body = r#"{"query":"country | currency"}"#;
    let mut client = HttpClient::connect(addr).unwrap();
    let before = client.post("/query", body).unwrap();
    assert_eq!(before.status, 200);
    assert!(!before.text().contains("Brazil"));
    assert!(before.text().contains("India"));

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..HAMMERS {
            let stop = &stop;
            let served = &served;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let resp = client
                        .post_reconnecting(addr, "/query", body)
                        .expect("no connection errors during a hot swap");
                    assert_eq!(resp.status, 200, "5xx under reload: {}", resp.text());
                    assert!(resp.text().contains("India"), "torn response");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Grow the corpus and hot-swap while the hammers run.
        std::fs::write(corpus.join("c.html"), currency_doc(&[("Brazil", "Real")])).unwrap();
        trigger_reload(addr);
        wait_for_generation(addr, 1);

        // Post-swap answers reflect the new corpus: the gen-0 cache
        // entry (no Brazil) is never served for gen-1 queries.
        let mut client = HttpClient::connect(addr).unwrap();
        let after = client.post("/query", body).unwrap();
        assert_eq!(after.status, 200);
        assert!(
            after.text().contains("Brazil"),
            "post-swap answer still the old corpus: {}",
            after.text()
        );

        // Let the hammers observe the post-swap world for a moment too.
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        served.load(Ordering::Relaxed) > 0,
        "hammer threads never got through"
    );
    let stats = service.stats();
    assert_eq!(stats.generation, 1, "{stats:?}");
    assert_eq!(stats.swap_count, 1, "{stats:?}");

    handle.shutdown();
    std::fs::remove_dir_all(&corpus).ok();
}

/// Satellite: index persistence round-trip under swap. Build →
/// `save_to_dir` → boot from the persisted index → reload (same bytes)
/// must answer identically; then persist a grown corpus into the same
/// directory → reload must pick up the new tables while unchanged
/// tables keep their answers.
#[test]
fn persisted_index_boot_and_reload_roundtrip() {
    let dir = fresh_dir("persist");
    let index_dir = dir.join("index");

    let build = |with_brazil: bool| {
        let mut b = EngineBuilder::new();
        b.add_html(&currency_doc(&[("India", "Rupee"), ("Japan", "Yen")]));
        b.add_html(&dog_doc());
        if with_brazil {
            b.add_html(&currency_doc(&[("Brazil", "Real")]));
        }
        b.build()
    };
    build(false).save_to_dir(&index_dir).unwrap();

    let handle = serve_from(EngineSource::IndexDir(index_dir.clone()));
    let addr = handle.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // The answer-shaping parts of a response (everything except
    // wall-clock timings, which vary per execution).
    let answer_parts = |text: &str| -> (String, String, String) {
        let v = Json::parse(text).unwrap();
        (
            v.get("columns").unwrap().encode(),
            v.get("rows").unwrap().encode(),
            v.get("candidates").unwrap().encode(),
        )
    };

    let currency = r#"{"query":"country | currency"}"#;
    let dogs = r#"{"query":"breed | origin"}"#;
    let base_currency = client.post("/query", currency).unwrap();
    assert_eq!(base_currency.status, 200);
    assert!(base_currency.text().contains("India"));
    let base_dogs = client.post("/query", dogs).unwrap();
    assert_eq!(base_dogs.status, 200);
    assert!(base_dogs.text().contains("Beagle"));

    // Reload the *unchanged* persisted index: the generation bumps, the
    // gen-0 cache is logically invalidated, and the recomputed answers
    // are byte-identical in every answer-shaping field.
    trigger_reload(addr);
    wait_for_generation(addr, 1);
    let again = client.post_reconnecting(addr, "/query", currency).unwrap();
    assert_eq!(again.status, 200);
    assert_eq!(
        answer_parts(&again.text()),
        answer_parts(&base_currency.text()),
        "identical persisted bytes must answer identically across a swap"
    );
    let stats = Json::parse(&client.get("/stats").unwrap().text()).unwrap();
    assert_eq!(stats.get("swap_count").and_then(Json::as_u64), Some(1));
    // The recompute proves the gen-0 entry was not reused.
    assert!(stats.get("misses").and_then(Json::as_u64).unwrap() >= 3);

    // Persist a grown corpus over the same directory and swap it in.
    build(true).save_to_dir(&index_dir).unwrap();
    trigger_reload(addr);
    wait_for_generation(addr, 2);
    let grown = client.post_reconnecting(addr, "/query", currency).unwrap();
    assert_eq!(grown.status, 200);
    assert!(
        grown.text().contains("Brazil"),
        "added tables must show up after the swap: {}",
        grown.text()
    );
    // Tables untouched by the growth keep their answers (cells and
    // support; scores may shift with corpus-wide IDF).
    let dogs_after = client.post("/query", dogs).unwrap();
    assert_eq!(dogs_after.status, 200);
    let row_facts = |text: &str| -> Vec<(Vec<String>, u64)> {
        let v = Json::parse(text).unwrap();
        v.get("rows")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|r| {
                (
                    r.get("cells")
                        .and_then(Json::as_arr)
                        .unwrap()
                        .iter()
                        .map(|c| c.as_str().unwrap().to_string())
                        .collect(),
                    r.get("support").and_then(Json::as_u64).unwrap(),
                )
            })
            .collect()
    };
    assert_eq!(
        row_facts(&dogs_after.text()),
        row_facts(&base_dogs.text()),
        "unchanged tables must keep their answers across the swap"
    );

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Reload is admin-gated exactly like shutdown, and refused (409) when
/// the server has no engine source to rebuild from.
#[test]
fn reload_is_gated_and_needs_a_source() {
    // No admin token: the route does not exist.
    let mut b = EngineBuilder::new();
    b.add_html(&currency_doc(&[("India", "Rupee")]));
    let service = Arc::new(TableSearchService::new(Arc::new(b.build())));
    let handle = serve(Arc::clone(&service), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    assert_eq!(client.post("/admin/reload", "").unwrap().status, 404);
    handle.shutdown();

    // Token configured but no engine source: authorized reloads answer
    // 409 (nothing to rebuild from), unauthorized ones 403.
    let config = ServerConfig {
        admin_token: Some(TOKEN.to_string()),
        ..ServerConfig::default()
    };
    let handle = serve(service, config).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    assert_eq!(client.post("/admin/reload", "").unwrap().status, 403);
    let wrong = client
        .post_with_headers("/admin/reload", "", &[("x-admin-token", "guess")])
        .unwrap();
    assert_eq!(wrong.status, 403);
    let no_source = client
        .post_with_headers("/admin/reload", "", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(no_source.status, 409, "{}", no_source.text());
    assert!(
        no_source.text().contains("no --corpus-dir"),
        "{}",
        no_source.text()
    );
    // The server keeps serving regardless.
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    handle.shutdown();
}

/// A reload whose source went bad leaves the old generation serving and
/// surfaces the failure on the next reload response.
#[test]
fn failed_reload_keeps_serving_the_old_generation() {
    let corpus = fresh_dir("badsrc");
    std::fs::write(corpus.join("a.html"), currency_doc(&[("India", "Rupee")])).unwrap();
    let handle = serve_from(EngineSource::CorpusDir(corpus.clone()));
    let addr = handle.addr();

    // Break the source, then ask for a reload.
    std::fs::remove_dir_all(&corpus).unwrap();
    trigger_reload(addr);

    // The failure is asynchronous; wait until the reload thread parked
    // its error (the next reload response carries it).
    let deadline = Instant::now() + Duration::from_secs(30);
    let last_error = loop {
        std::thread::sleep(Duration::from_millis(10));
        let mut client = HttpClient::connect(addr).unwrap();
        let resp = client
            .post_with_headers("/admin/reload", "", &[("x-admin-token", TOKEN)])
            .unwrap();
        // 409 = previous reload still running; 202 = accepted again.
        if resp.status == 202 && resp.text().contains("last_error") {
            break resp.text();
        }
        assert!(
            Instant::now() < deadline,
            "reload failure never surfaced; last: {}",
            resp.text()
        );
    };
    assert!(last_error.contains("\"generation\":0"), "{last_error}");

    // Still generation 0, still answering; /stats surfaces the pending
    // failure read-only (no take, no side effects).
    let mut client = HttpClient::connect(addr).unwrap();
    let resp = client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("India"));
    let stats = Json::parse(&client.get("/stats").unwrap().text()).unwrap();
    assert_eq!(stats.get("generation").and_then(Json::as_u64), Some(0));
    assert!(
        stats
            .get("last_reload_error")
            .and_then(Json::as_str)
            .is_some(),
        "pending reload failure must be visible in /stats"
    );
    let metrics = client.get("/metrics").unwrap().text();
    let failures: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("wwt_engine_reload_failures_total "))
        .expect("failure counter series")
        .trim()
        .parse()
        .unwrap();
    assert!(failures >= 1, "{metrics}");
    handle.shutdown();
}
