//! End-to-end test of the per-route query concurrency limit: saturating
//! `POST /query`/`/query/batch` answers 429 + `Retry-After` while cheap
//! routes stay reachable, and the route recovers as soon as the budget
//! frees up.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wwt_engine::{bind_corpus, WwtConfig};
use wwt_json::Json;
use wwt_server::{serve, HttpClient, ServerConfig};
use wwt_service::{ServiceConfig, TableSearchService};

/// A corpus-backed engine whose cold queries take real milliseconds, and
/// a cache-less service so every request genuinely occupies the
/// concurrency budget for that long.
fn slow_uncached_service() -> Arc<TableSearchService> {
    let specs: Vec<_> = wwt_corpus::workload()
        .into_iter()
        .filter(|s| s.query.to_string().starts_with("country | currency"))
        .collect();
    let corpus =
        wwt_corpus::CorpusGenerator::new(wwt_corpus::CorpusConfig::small()).generate_for(&specs);
    let engine = Arc::new(bind_corpus(&corpus, WwtConfig::default()).engine);
    let config = ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    };
    Arc::new(TableSearchService::with_config(engine, config))
}

/// A query body whose `probe1_k` varies per call: never coalesced, never
/// cached, so each one runs the engine cold.
fn cold_body(i: u64) -> String {
    format!(
        "{{\"query\":\"country | currency\",\"options\":{{\"probe1_k\":{}}}}}",
        10 + (i % 50)
    )
}

#[test]
fn saturated_query_routes_answer_429_and_recover() {
    const HAMMERS: usize = 3;
    let handle = serve(
        slow_uncached_service(),
        ServerConfig {
            workers: 4,
            max_concurrent_queries: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();

    let saw_429 = AtomicBool::new(false);
    let retry_after_missing = AtomicBool::new(false);
    let bad_status = AtomicU64::new(0);
    let counter = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for h in 0..HAMMERS {
            let saw_429 = &saw_429;
            let retry_after_missing = &retry_after_missing;
            let bad_status = &bad_status;
            let counter = &counter;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for _ in 0..200 {
                    if saw_429.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    // One hammer exercises the batch route: the two
                    // query routes share a single budget.
                    let response = if h == 0 {
                        let slots: Vec<String> = (0..8).map(|j| cold_body(i * 8 + j)).collect();
                        client.post_reconnecting(
                            addr,
                            "/query/batch",
                            &format!("{{\"requests\":[{}]}}", slots.join(",")),
                        )
                    } else {
                        client.post_reconnecting(addr, "/query", &cold_body(i))
                    }
                    .unwrap();
                    match response.status {
                        200 => {}
                        429 => {
                            if response.header("retry-after") != Some("1") {
                                retry_after_missing.store(true, Ordering::SeqCst);
                            }
                            saw_429.store(true, Ordering::SeqCst);
                        }
                        other => {
                            bad_status.store(u64::from(other), Ordering::SeqCst);
                            break;
                        }
                    }
                }
            });
        }
        // Cheap routes are never limited: health stays green while the
        // query budget is (likely) saturated.
        let mut probe = HttpClient::connect(addr).unwrap();
        for _ in 0..20 {
            let health = probe.get("/healthz").unwrap();
            assert_eq!(health.status, 200, "cheap routes must never be limited");
        }
    });

    assert_eq!(
        bad_status.load(Ordering::SeqCst),
        0,
        "saturation must only ever produce 200s and 429s"
    );
    assert!(
        saw_429.load(Ordering::SeqCst),
        "three hammers against a budget of one query never saw a 429"
    );
    assert!(
        !retry_after_missing.load(Ordering::SeqCst),
        "429 responses must carry Retry-After: 1"
    );

    // Recovery: with the hammers gone the budget is free again, so a
    // fresh cold query answers 200 immediately.
    let mut client = HttpClient::connect(addr).unwrap();
    let recovered = client.post("/query", &cold_body(9999)).unwrap();
    assert_eq!(recovered.status, 200, "route must recover after saturation");

    // The rejection is observable: the dedicated counter and the
    // per-route 429 series both moved.
    let metrics = client.get("/metrics").unwrap().text();
    let rejected = metrics
        .lines()
        .find(|l| l.starts_with("wwt_http_concurrency_rejected_total"))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("rejection counter rendered");
    assert!(rejected >= 1, "{metrics}");
    assert!(
        metrics.contains("code=\"429\"}"),
        "per-route 429 series missing:\n{metrics}"
    );

    handle.shutdown();
}

#[test]
fn zero_limit_disables_the_gate() {
    let handle = serve(
        slow_uncached_service(),
        ServerConfig {
            workers: 4,
            max_concurrent_queries: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = handle.addr();
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).unwrap();
                for i in 0..5u64 {
                    let response = client
                        .post_reconnecting(addr, "/query", &cold_body(t * 100 + i))
                        .unwrap();
                    assert_eq!(response.status, 200, "unlimited gate must never 429");
                }
            });
        }
    });
    handle.shutdown();
}

#[test]
fn stats_and_version_report_index_shards() {
    let handle = serve(slow_uncached_service(), ServerConfig::default()).unwrap();
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let stats = Json::parse(&client.get("/stats").unwrap().text()).unwrap();
    let from_stats = stats.get("index_shards").and_then(Json::as_u64).unwrap();
    assert!(from_stats >= 1);
    let version = Json::parse(&client.get("/version").unwrap().text()).unwrap();
    assert_eq!(
        version.get("shards").and_then(Json::as_u64),
        Some(from_stats)
    );
    let metrics = client.get("/metrics").unwrap().text();
    assert!(
        metrics.contains(&format!("wwt_index_shards {from_stats}\n")),
        "{metrics}"
    );
    handle.shutdown();
}
