//! End-to-end resilience tests: admission-time deadline shedding, the
//! sticky read-only degradation surfaced through `/healthz`, `/stats`
//! and `/metrics`, and operator recovery via `POST /admin/recover`.
//!
//! The read-only scenario arms a `wwt_chaos` failpoint, which is
//! process-global — tests that arm serialize on [`CHAOS`], and this
//! binary never shares a process with other test suites.

use std::sync::{Arc, Mutex};
use wwt_engine::EngineBuilder;
use wwt_index::{table_to_json, FsyncPolicy, Journal};
use wwt_model::{TableId, WebTable};
use wwt_server::{serve, HttpClient, ServerConfig, ServerHandle};
use wwt_service::TableSearchService;

const TOKEN: &str = "resilience-sesame";

/// Failpoints are process-global; every test that arms holds this lock.
static CHAOS: Mutex<()> = Mutex::new(());

fn boot(journal: Option<&std::path::Path>) -> ServerHandle {
    let page = "<html><body><p>countries and currency</p><table>\
         <tr><th>Country</th><th>Currency</th></tr>\
         <tr><td>India</td><td>Rupee</td></tr>\
         <tr><td>Japan</td><td>Yen</td></tr></table></body></html>";
    let mut b = EngineBuilder::new();
    b.add_html(page);
    let service = Arc::new(TableSearchService::new(Arc::new(b.build())));
    if let Some(path) = journal {
        let (journal, _) = Journal::open(path, FsyncPolicy::Never).unwrap();
        service.attach_journal(journal, None);
    }
    let config = ServerConfig {
        admin_token: Some(TOKEN.to_string()),
        workers: 4,
        ..ServerConfig::default()
    };
    serve(service, config).expect("bind ephemeral port")
}

fn volcano_table() -> WebTable {
    WebTable::new(
        TableId(4_200),
        "live://volcano",
        Some("Volcano heights".into()),
        vec![vec!["Volcano".into(), "Elevation".into()]],
        vec![
            vec!["Etna".into(), "3329".into()],
            vec!["Fuji".into(), "3776".into()],
        ],
        vec![],
    )
    .unwrap()
}

/// A query arriving with a zero deadline budget is refused at admission:
/// 504 without touching the pipeline, counted in its own metric series.
#[test]
fn zero_deadline_is_shed_at_admission() {
    let handle = boot(None);
    let mut client = HttpClient::connect(handle.addr()).unwrap();

    let resp = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"deadline_ms":0}}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert!(resp.text().contains("admission"), "{}", resp.text());

    // The shed is visible as its own series, alongside the general
    // deadline counter; fail_soft does not soften a spent budget.
    let soft = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"deadline_ms":0,"fail_soft":true}}"#,
        )
        .unwrap();
    assert_eq!(soft.status, 504, "{}", soft.text());

    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("wwt_queries_shed_total 2"), "{metrics}");

    // A workable budget on the same connection still answers.
    let ok = client
        .post(
            "/query",
            r#"{"query":"country | currency","options":{"deadline_ms":5000}}"#,
        )
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());

    handle.shutdown();
}

/// Journal-append faults trip sticky read-only mode: mutations answer
/// 503 with a Retry-After, `/healthz` reports "degraded" (but stays
/// 200 — the query path is fine and must not be drained), and `POST
/// /admin/recover` restores write service.
#[test]
fn read_only_degradation_and_operator_recovery() {
    let _guard = CHAOS.lock().unwrap_or_else(|e| e.into_inner());
    wwt_chaos::disarm_all();
    let dir = std::env::temp_dir().join(format!("wwt-resilience-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let handle = boot(Some(&dir.join("journal.wal")));
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let body = table_to_json(&volcano_table());

    // A persistent journal fault exhausts the service's bounded retry.
    wwt_chaos::arm("journal.append=error").unwrap();
    let refused = client
        .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    wwt_chaos::disarm_all();
    assert_eq!(refused.status, 503, "{}", refused.text());
    assert_eq!(refused.header("retry-after"), Some("5"));
    assert!(refused.text().contains("journal append failed"));

    // Degradation is observable everywhere an operator looks…
    let health = client.get("/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.text().contains("\"status\":\"degraded\""));
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"read_only\":true"), "{stats}");
    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("wwt_read_only 1"), "{metrics}");

    // …while the read path is untouched.
    let query = client
        .post("/query", r#"{"query":"country | currency"}"#)
        .unwrap();
    assert_eq!(query.status, 200, "{}", query.text());

    // Stickiness: the fault is gone, yet mutations stay refused until
    // the operator acknowledges recovery.
    let still = client
        .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(still.status, 503, "{}", still.text());
    assert!(still.text().contains("read-only"));

    // Recovery is admin-gated like every mutating route.
    assert_eq!(client.post("/admin/recover", "").unwrap().status, 403);
    let recovered = client
        .post_with_headers("/admin/recover", "", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(recovered.status, 200, "{}", recovered.text());
    assert!(recovered.text().contains("\"read_only\":false"));

    // Writes flow (and journal) again; health is back to "ok".
    let accepted = client
        .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(accepted.status, 202, "{}", accepted.text());
    assert!(client
        .get("/healthz")
        .unwrap()
        .text()
        .contains("\"status\":\"ok\""));
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"read_only\":false"), "{stats}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
