//! End-to-end tests for live table ingest over HTTP: `POST
//! /admin/tables` makes a table queryable without a rebuild, `DELETE
//! /admin/tables/{id}` tombstones it, `POST /admin/compact` (and the
//! `max_delta_tables` auto-trigger) folds the delta into a fresh frozen
//! engine — all while the admin gate keeps the routes locked down.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wwt_engine::EngineBuilder;
use wwt_index::{table_to_json, FsyncPolicy, Journal};
use wwt_model::{TableId, WebTable};
use wwt_server::{serve, HttpClient, ServerConfig, ServerHandle};
use wwt_service::TableSearchService;

const TOKEN: &str = "ingest-sesame";

fn boot(max_delta_tables: usize) -> ServerHandle {
    boot_with_journal(max_delta_tables, None)
}

fn boot_with_journal(max_delta_tables: usize, journal: Option<&Path>) -> ServerHandle {
    let page = "<html><body><p>countries and currency</p><table>\
         <tr><th>Country</th><th>Currency</th></tr>\
         <tr><td>India</td><td>Rupee</td></tr>\
         <tr><td>Japan</td><td>Yen</td></tr></table></body></html>";
    let mut b = EngineBuilder::new();
    b.add_html(page);
    let mut engine = b.build();
    let service = match journal {
        Some(path) => {
            let (journal, replay) = Journal::open(path, FsyncPolicy::Always).unwrap();
            if !replay.records.is_empty() {
                engine = engine.with_journal_replayed(&replay.records).unwrap();
            }
            let service = Arc::new(TableSearchService::new(Arc::new(engine)));
            service.attach_journal(journal, None);
            service
        }
        None => Arc::new(TableSearchService::new(Arc::new(engine))),
    };
    let config = ServerConfig {
        admin_token: Some(TOKEN.to_string()),
        // Explicit pool: a single default worker on a 1-core runner lets
        // one idle keep-alive connection pin the server.
        workers: 4,
        max_delta_tables,
        ..ServerConfig::default()
    };
    serve(service, config).expect("bind ephemeral port")
}

fn volcano_table(id: u32, peak: &str) -> WebTable {
    WebTable::new(
        TableId(id),
        "live://volcano",
        Some("Volcano heights".into()),
        vec![vec!["Volcano".into(), "Elevation".into()]],
        vec![
            vec![peak.into(), "3329".into()],
            vec!["Fuji".into(), "3776".into()],
        ],
        vec![],
    )
    .unwrap()
}

/// Polls `GET /stats` until `predicate` accepts the body (background
/// compactions finish on their own thread; completion is observed).
fn wait_for_stats(addr: std::net::SocketAddr, predicate: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = HttpClient::connect(addr)
            .and_then(|mut c| c.get("/stats"))
            .map(|r| r.text())
            .unwrap_or_default();
        if predicate(&text) {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "stats never converged; last /stats: {text}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn ingest_query_delete_roundtrip() {
    let handle = boot(0);
    let addr = handle.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let query = r#"{"query":"volcano | elevation"}"#;

    // Nothing about volcanoes in the boot corpus.
    let before = client.post("/query", query).unwrap();
    assert_eq!(before.status, 200);
    assert!(!before.text().contains("Etna"));

    // The gate: no token 403, wrong token 403.
    let body = table_to_json(&volcano_table(700, "Etna"));
    assert_eq!(client.post("/admin/tables", &body).unwrap().status, 403);
    assert_eq!(
        client
            .post_with_headers("/admin/tables", &body, &[("x-admin-token", "wrong")])
            .unwrap()
            .status,
        403
    );

    // Ingest: 202, generation bump, queryable on the next request.
    let resp = client
        .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert!(resp.text().contains("\"table_id\":700"), "{}", resp.text());
    assert!(resp.text().contains("\"generation\":1"), "{}", resp.text());
    let after = client.post("/query", query).unwrap();
    assert_eq!(after.status, 200);
    assert!(after.text().contains("Etna"), "{}", after.text());

    // Observability: /stats and /metrics both expose the delta gauges.
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"delta_tables\":1"), "{stats}");
    assert!(stats.contains("\"tables_ingested\":1"), "{stats}");
    let metrics = client.get("/metrics").unwrap().text();
    assert!(metrics.contains("wwt_delta_tables 1\n"), "{metrics}");
    assert!(
        metrics.contains("wwt_tables_ingested_total 1\n"),
        "{metrics}"
    );
    assert!(metrics.contains("wwt_compactions_total 0\n"), "{metrics}");

    // Garbage bodies and ids are client errors, not crashes.
    assert_eq!(
        client
            .post_with_headers("/admin/tables", "not json", &[("x-admin-token", TOKEN)])
            .unwrap()
            .status,
        400
    );
    assert_eq!(
        client
            .delete_with_headers("/admin/tables/xyz", &[("x-admin-token", TOKEN)])
            .unwrap()
            .status,
        400
    );

    // Delete: 202 once, 404 for the already-gone id, answers revert.
    let resp = client
        .delete_with_headers("/admin/tables/700", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert_eq!(
        client
            .delete_with_headers("/admin/tables/700", &[("x-admin-token", TOKEN)])
            .unwrap()
            .status,
        404
    );
    let reverted = client.post("/query", query).unwrap();
    assert!(!reverted.text().contains("Etna"), "{}", reverted.text());
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"tables_deleted\":1"), "{stats}");

    handle.shutdown();
}

#[test]
fn explicit_compaction_folds_the_delta_and_keeps_answers() {
    let handle = boot(0);
    let addr = handle.addr();
    let mut client = HttpClient::connect(addr).unwrap();
    let query = r#"{"query":"volcano | elevation"}"#;

    // A clean engine answers "clean" without burning a generation.
    let resp = client
        .post_with_headers("/admin/compact", "", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    assert!(
        resp.text().contains("\"status\":\"clean\""),
        "{}",
        resp.text()
    );

    let body = table_to_json(&volcano_table(710, "Etna"));
    let resp = client
        .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    let live_answer = client.post("/query", query).unwrap().text();
    assert!(live_answer.contains("Etna"), "{live_answer}");

    let resp = client
        .post_with_headers("/admin/compact", "", &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert!(
        resp.text().contains("\"status\":\"compacting\""),
        "{}",
        resp.text()
    );
    wait_for_stats(addr, |s| {
        s.contains("\"delta_tables\":0") && s.contains("\"compactions\":1")
    });

    // Post-compaction the table still answers, now from the frozen index.
    let frozen_answer = client.post("/query", query).unwrap().text();
    assert!(frozen_answer.contains("Etna"), "{frozen_answer}");

    handle.shutdown();
}

#[test]
fn batch_ingest_is_one_generation_over_http() {
    let handle = boot(0);
    let addr = handle.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    // JSONL body: one table-store line per table, blank lines ignored.
    let body = format!(
        "{}\n\n{}\n",
        table_to_json(&volcano_table(730, "Etna")),
        table_to_json(&volcano_table(731, "Vesuvius"))
    );

    // Same admin gate as the single-table route.
    assert_eq!(
        client.post("/admin/tables/batch", &body).unwrap().status,
        403
    );

    // One 202 for the whole batch: one generation bump, both queryable.
    let resp = client
        .post_with_headers("/admin/tables/batch", &body, &[("x-admin-token", TOKEN)])
        .unwrap();
    assert_eq!(resp.status, 202, "{}", resp.text());
    assert!(resp.text().contains("\"tables\":2"), "{}", resp.text());
    assert!(resp.text().contains("\"generation\":1"), "{}", resp.text());
    let answer = client
        .post("/query", r#"{"query":"volcano | elevation"}"#)
        .unwrap()
        .text();
    assert!(answer.contains("Etna"), "{answer}");
    assert!(answer.contains("Vesuvius"), "{answer}");

    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"batches_ingested\":1"), "{stats}");
    assert!(stats.contains("\"tables_ingested\":2"), "{stats}");
    assert!(stats.contains("\"delta_tables\":2"), "{stats}");
    let metrics = client.get("/metrics").unwrap().text();
    assert!(
        metrics.contains("wwt_batches_ingested_total 1\n"),
        "{metrics}"
    );

    // A bad line rejects the whole batch before the engine is touched.
    let resp = client
        .post_with_headers(
            "/admin/tables/batch",
            "not json\n",
            &[("x-admin-token", TOKEN)],
        )
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("line 1"), "{}", resp.text());
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"batches_ingested\":1"), "{stats}");

    handle.shutdown();
}

#[test]
fn journaled_mutations_survive_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("wwt_e2e_journal_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("journal.wal");
    let query = r#"{"query":"volcano | elevation"}"#;

    // Boot 1: ingest over HTTP with a journal attached, then shut down
    // without compacting — the delta exists only in the journal now.
    {
        let handle = boot_with_journal(0, Some(&wal));
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let body = table_to_json(&volcano_table(740, "Etna"));
        let resp = client
            .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
            .unwrap();
        assert_eq!(resp.status, 202, "{}", resp.text());

        // The journal surfaces on /stats (with its path) and /version.
        let stats = client.get("/stats").unwrap().text();
        assert!(stats.contains("\"journal_attached\":true"), "{stats}");
        assert!(stats.contains("\"journal_records\":1"), "{stats}");
        assert!(stats.contains("\"journal_path\":"), "{stats}");
        let metrics = client.get("/metrics").unwrap().text();
        assert!(metrics.contains("wwt_journal_attached 1\n"), "{metrics}");
        assert!(metrics.contains("wwt_journal_records 1\n"), "{metrics}");
        handle.shutdown();
    }

    // Boot 2: a fresh server over the same journal replays the ingest.
    let handle = boot_with_journal(0, Some(&wal));
    let mut client = HttpClient::connect(handle.addr()).unwrap();
    let answer = client.post("/query", query).unwrap().text();
    assert!(answer.contains("Etna"), "{answer}");
    let stats = client.get("/stats").unwrap().text();
    assert!(stats.contains("\"delta_tables\":1"), "{stats}");
    assert!(stats.contains("\"journal_records\":1"), "{stats}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_compaction_triggers_at_the_delta_threshold() {
    let handle = boot(2);
    let addr = handle.addr();
    let mut client = HttpClient::connect(addr).unwrap();

    for (id, peak) in [(720u32, "Etna"), (721, "Vesuvius")] {
        let body = table_to_json(&volcano_table(id, peak));
        let resp = client
            .post_with_headers("/admin/tables", &body, &[("x-admin-token", TOKEN)])
            .unwrap();
        assert_eq!(resp.status, 202, "{}", resp.text());
    }
    // The second ingest crossed the threshold; the background compaction
    // drains the delta without any further request.
    let stats = wait_for_stats(addr, |s| {
        s.contains("\"delta_tables\":0") && s.contains("\"compactions\":1")
    });
    assert!(stats.contains("\"tables_ingested\":2"), "{stats}");

    let answer = client
        .post("/query", r#"{"query":"volcano | elevation"}"#)
        .unwrap()
        .text();
    assert!(answer.contains("Vesuvius"), "{answer}");

    handle.shutdown();
}
