//! # wwt-json
//!
//! The workspace's hand-rolled JSON codec. The container has no registry
//! access, so instead of `serde_json` every JSON boundary — the table
//! store's persistence lines (`wwt-index`) and the HTTP bodies of
//! `wwt-server` — shares this one small value tree, recursive-descent
//! parser and compact encoder.
//!
//! ```
//! use wwt_json::Json;
//!
//! let v = Json::obj([
//!     ("query", Json::from("country | currency")),
//!     ("max_rows", Json::from(3u64)),
//! ]);
//! let text = v.encode();
//! assert_eq!(text, r#"{"query":"country | currency","max_rows":3}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("max_rows").and_then(Json::as_u64), Some(3));
//! ```

use std::fmt;

/// A JSON parse failure: what went wrong, at which input byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// A parsed JSON value.
///
/// Objects keep their fields in insertion order (encoding is therefore
/// deterministic), and numbers are `f64` — ample for the table ids,
/// counters and scores that cross this boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array by converting each item.
    pub fn arr<T: Into<Json>>(items: impl IntoIterator<Item = T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// The value of an object field, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is a whole number that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// True iff this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON value; trailing non-whitespace input is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Encodes the value as compact JSON (no whitespace). Whole numbers
    /// print without a fraction; non-finite numbers are encoded as `0`
    /// (JSON has no NaN/inf, and a poisoned line would corrupt a whole
    /// persisted store).
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Appends a number, printing whole values without a fraction and
/// clamping non-finite values to `0`.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push('0');
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` is the shortest representation that round-trips.
        out.push_str(&format!("{n:?}"));
    }
}

/// Appends a JSON string literal with the mandatory escapes.
pub fn write_str(out: &mut String, v: &str) {
    out.push('"');
    for ch in v.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting the parser accepts. Bodies now arrive from
/// untrusted network clients, and unbounded recursion over `[[[[…` would
/// overflow the stack — which aborts the whole process, not just the
/// request. 128 levels is far beyond any legitimate WWT payload.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    /// Tracks entry into a nested container; errors past [`MAX_DEPTH`].
    /// An error aborts the whole parse, so only success paths unwind.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::new(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            )));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(JsonError::new("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or(JsonError::new("unterminated escape"))? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(JsonError::new("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or(JsonError::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or(JsonError::new("invalid \\u escape"))?
                            };
                            out.push(ch);
                            // hex4 leaves pos just past the 4 digits.
                            continue;
                        }
                        other => {
                            return Err(JsonError::new(format!("bad escape \\{}", other as char)))
                        }
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 char (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| JsonError::new("invalid utf-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or(JsonError::new("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(JsonError::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| JsonError::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| JsonError::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| JsonError::new(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = Json::obj([
            ("s", Json::from("a\"b\\c\nd\tés😀")),
            ("n", Json::from(0.25)),
            ("i", Json::from(42u64)),
            ("b", Json::from(true)),
            ("z", Json::Null),
            ("a", Json::arr([1u64, 2, 3])),
            ("o", Json::obj([("k", Json::from("v"))])),
        ]);
        let text = v.encode();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whole_numbers_encode_without_fraction() {
        assert_eq!(Json::Num(7.0).encode(), "7");
        assert_eq!(Json::Num(-3.0).encode(), "-3");
        assert_eq!(Json::Num(0.5).encode(), "0.5");
    }

    #[test]
    fn non_finite_numbers_encode_as_zero() {
        assert_eq!(Json::Num(f64::NAN).encode(), "0");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "0");
        // The result must stay parseable.
        assert!(Json::parse(&Json::arr([f64::NAN, 1.0]).encode()).is_ok());
    }

    #[test]
    fn object_accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":[true,null]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        let arr = v.get("c").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert!(arr[1].is_null());
        assert!(v.get("missing").is_none());
        assert!(v.as_obj().is_some());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(Json::parse(r#""A😀""#).unwrap(), Json::Str("A😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":1,}x",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1} trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject: {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_capped() {
        // At the cap: fine.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        // One past the cap: a parse error, not a stack overflow.
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // The attack shape: a huge unclosed prefix must error early
        // instead of recursing once per byte.
        for attack in [
            "[".repeat(500_000),
            "{\"a\":".repeat(500_000),
            "[{\"a\":".repeat(250_000),
        ] {
            assert!(Json::parse(&attack).is_err());
        }
        // Depth resets between siblings: wide-but-shallow stays fine.
        let wide = format!("[{}1]", "[1],".repeat(10_000));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn control_chars_escape_and_roundtrip() {
        let v = Json::Str("\u{1}\u{1f}".into());
        let text = v.encode();
        assert_eq!(text, "\"\\u0001\\u001f\"");
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn display_matches_encode() {
        let v = Json::arr(["a", "b"]);
        assert_eq!(v.to_string(), v.encode());
    }
}
