//! Request deadlines, checked at pipeline stage boundaries.
//!
//! A [`Deadline`] is an absolute wall-clock point derived from a
//! per-request millisecond budget ([`crate::QueryOptions::deadline_ms`]).
//! The engine calls [`Deadline::check`] between stages (retrieve →
//! column map → consolidate) and aborts with
//! [`WwtError::DeadlineExceeded`] instead of finishing late work nobody
//! will read. A stage already running is never interrupted — checks sit
//! on the boundaries, so the pipeline overshoots by at most one stage.
//!
//! [`Deadline::none`] is a true no-op: no clock is read, so requests
//! without a deadline behave byte-identically to a build without this
//! module.

use std::time::{Duration, Instant};
use wwt_model::WwtError;

/// An absolute point in time a request must not run past.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
    /// The original budget, kept so fail-soft execution can judge
    /// *pressure* (more than half the budget spent) rather than only
    /// expiry.
    budget: Option<Duration>,
}

impl Deadline {
    /// No deadline: every [`Deadline::check`] passes without reading the
    /// clock.
    pub fn none() -> Self {
        Deadline {
            at: None,
            budget: None,
        }
    }

    /// A deadline `budget_ms` milliseconds from now; `None` means no
    /// deadline. A budget of `0` expires immediately — the first
    /// checkpoint trips.
    pub fn starting_now(budget_ms: Option<u64>) -> Self {
        let budget = budget_ms.map(Duration::from_millis);
        Deadline {
            at: budget.map(|b| Instant::now() + b),
            budget,
        }
    }

    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + budget),
            budget: Some(budget),
        }
    }

    /// Time left before the deadline (zero once it has passed); `None`
    /// when no deadline is set.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }

    /// True iff a deadline is set and more than half its budget is
    /// already spent — the trigger for fail-soft algorithm downgrades
    /// (cheaper inference while an answer is still possible, instead of
    /// an expensive one that will blow the budget).
    pub fn pressured(&self) -> bool {
        match (self.at, self.budget) {
            (Some(at), Some(budget)) => at.saturating_duration_since(Instant::now()) <= budget / 2,
            _ => false,
        }
    }

    /// True iff a deadline is set and has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Passes while time remains; once the deadline is behind us, fails
    /// with [`WwtError::DeadlineExceeded`] naming the stage about to
    /// start (the work being refused, not the work that consumed the
    /// budget).
    pub fn check(&self, stage: &'static str) -> Result<(), WwtError> {
        if self.expired() {
            Err(WwtError::DeadlineExceeded(stage.to_string()))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.expired());
        assert!(d.check("anything").is_ok());
        assert!(Deadline::starting_now(None).check("x").is_ok());
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let d = Deadline::starting_now(Some(0));
        assert!(d.expired());
        match d.check("retrieve") {
            Err(WwtError::DeadlineExceeded(stage)) => assert_eq!(stage, "retrieve"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_passes() {
        let d = Deadline::starting_now(Some(60_000));
        assert!(!d.expired());
        assert!(d.check("consolidate").is_ok());
    }

    #[test]
    fn after_expires_once_elapsed() {
        let d = Deadline::after(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.expired());
        assert!(d.check("column_map").is_err());
    }

    #[test]
    fn remaining_and_pressure() {
        let none = Deadline::none();
        assert_eq!(none.remaining(), None);
        assert!(!none.pressured());

        let fresh = Deadline::starting_now(Some(60_000));
        assert!(fresh.remaining().unwrap() > Duration::from_secs(50));
        assert!(!fresh.pressured());

        // An expired deadline is by definition pressured, with zero left.
        let spent = Deadline::starting_now(Some(0));
        assert_eq!(spent.remaining(), Some(Duration::ZERO));
        assert!(spent.pressured());

        // Half the budget gone → pressured, well before expiry.
        let d = Deadline::after(Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(12));
        assert!(!d.expired() || d.pressured()); // tolerate slow CI
        assert!(d.pressured());
    }
}
