//! Engine configuration and the deprecated `Wwt` compatibility shim.
//!
//! The end-to-end pipeline logic lives in [`crate::engine`] now; this
//! module keeps [`WwtConfig`] (the build-time defaults that
//! [`crate::QueryRequest`] options override per request) and a thin
//! deprecated [`Wwt`] wrapper so pre-redesign callers keep compiling
//! while they migrate to [`EngineBuilder`]/[`Engine`].

use crate::engine::{Engine, EngineBuilder};
use crate::retrieval::Retrieval;
use crate::timing::StageTimings;
use wwt_core::{InferenceAlgorithm, MapperConfig, MappingResult};
use wwt_index::{TableIndex, TableStore};
use wwt_model::{AnswerTable, Query, TableId, WebTable};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct WwtConfig {
    /// Column-mapper configuration (weights, thresholds).
    pub mapper: MapperConfig,
    /// Collective inference algorithm.
    pub algorithm: InferenceAlgorithm,
    /// Candidates retrieved by the first index probe.
    pub probe1_k: usize,
    /// New candidates admitted by the second index probe (top content
    /// overlap matches only; a small cap keeps sampled-row noise out).
    pub probe2_k: usize,
    /// Relevance-probability bar for the "top-two tables with very high
    /// relevance score" that seed the second probe (§2.2.1).
    pub high_relevance: f64,
    /// Rows sampled from each confident table for the second probe
    /// (paper: 10).
    pub sample_rows: usize,
    /// Probe hits scoring below this fraction of the best hit's score are
    /// dropped (keeps weak single-keyword matches from flooding the
    /// candidate set).
    pub score_cutoff_frac: f64,
}

impl Default for WwtConfig {
    fn default() -> Self {
        WwtConfig {
            mapper: MapperConfig::default(),
            algorithm: InferenceAlgorithm::TableCentric,
            probe1_k: 60,
            probe2_k: 12,
            high_relevance: 0.75,
            sample_rows: 10,
            score_cutoff_frac: 0.34,
        }
    }
}

/// Everything the engine produces for one query (legacy shape; new code
/// receives a [`crate::QueryResponse`]).
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The consolidated, ranked answer table.
    pub table: AnswerTable,
    /// The column mapping over all candidates.
    pub mapping: MappingResult,
    /// Candidate table ids, aligned with `mapping.labelings`.
    pub candidates: Vec<TableId>,
    /// Ids retrieved by the first probe.
    pub stage1: Vec<TableId>,
    /// Ids newly contributed by the second probe.
    pub stage2: Vec<TableId>,
    /// Whether the second probe fired.
    pub probe2_used: bool,
    /// Per-stage timing.
    pub timing: StageTimings,
}

/// The assembled WWT system (legacy shim over [`Engine`]).
#[deprecated(
    since = "0.2.0",
    note = "use EngineBuilder to build and Engine (+ wwt-service's TableSearchService) to answer"
)]
pub struct Wwt {
    engine: Engine,
}

#[allow(deprecated)]
impl Wwt {
    /// Offline pipeline: extract data tables from raw HTML documents,
    /// build the store and the fielded index (paper §2.1).
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a str>, config: WwtConfig) -> Self {
        let mut b = EngineBuilder::with_config(config);
        b.add_documents(docs);
        Wwt { engine: b.build() }
    }

    /// Builds the system from already extracted tables.
    pub fn from_tables(tables: Vec<WebTable>, config: WwtConfig) -> Self {
        Wwt {
            engine: Engine::from_tables(tables, config),
        }
    }

    /// The underlying immutable engine (migration escape hatch).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The fielded index.
    pub fn index(&self) -> &TableIndex {
        self.engine.index()
    }

    /// The table store.
    pub fn store(&self) -> &TableStore {
        self.engine.store()
    }

    /// The engine configuration.
    pub fn config(&self) -> &WwtConfig {
        self.engine.config()
    }

    /// Runs the two-stage candidate retrieval (§2.2.1).
    pub fn retrieve(&self, query: &Query) -> Retrieval {
        self.engine.retrieve(query)
    }

    /// Full online pipeline: retrieve → map → consolidate → rank (§2.2).
    pub fn answer(&self, query: &Query) -> QueryOutcome {
        let response = self.engine.answer_query(query);
        QueryOutcome {
            table: response.table,
            mapping: response.mapping,
            candidates: response.candidates,
            stage1: response.retrieval.stage1,
            stage2: response.retrieval.stage2,
            probe2_used: response.retrieval.probe2_used,
            timing: response.diagnostics.timing,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    fn currency_page(i: usize, countries: &[(&str, &str)]) -> String {
        let mut rows = String::new();
        for (c, m) in countries {
            rows.push_str(&format!("<tr><td>{c}</td><td>{m}</td></tr>"));
        }
        format!(
            "<html><head><title>currencies {i}</title></head><body>\
             <p>List of countries and their currency</p>\
             <table><tr><th>Country</th><th>Currency</th></tr>{rows}</table>\
             </body></html>"
        )
    }

    fn build_shim() -> Wwt {
        let docs = [
            currency_page(
                0,
                &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            ),
            currency_page(
                1,
                &[("India", "Rupee"), ("Brazil", "Real"), ("Japan", "Yen")],
            ),
        ];
        Wwt::build(docs.iter().map(String::as_str), WwtConfig::default())
    }

    #[test]
    fn shim_matches_engine_results() {
        let wwt = build_shim();
        let q = Query::parse("country | currency").unwrap();
        let legacy = wwt.answer(&q);
        let modern = wwt.engine().answer_query(&q);
        assert_eq!(legacy.table, modern.table);
        assert_eq!(legacy.candidates, modern.candidates);
        assert_eq!(legacy.probe2_used, modern.retrieval.probe2_used);
    }

    #[test]
    fn shim_retrieve_returns_named_struct() {
        let wwt = build_shim();
        let q = Query::parse("country | currency").unwrap();
        let r = wwt.retrieve(&q);
        assert!(!r.stage1.is_empty());
        assert_eq!(r.candidates().len(), r.len());
    }

    #[test]
    fn shim_from_tables_empty_is_safe() {
        let wwt = Wwt::from_tables(vec![], WwtConfig::default());
        let q = Query::parse("anything | at all").unwrap();
        assert!(wwt.answer(&q).table.is_empty());
    }
}
