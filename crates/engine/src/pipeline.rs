//! The end-to-end query pipeline (paper §2.2).

use crate::timing::StageTimings;
use std::time::Instant;
use wwt_consolidate::{consolidate, RelevantInput};
use wwt_core::{ColumnMapper, InferenceAlgorithm, MapperConfig, MappingResult};
use wwt_html::extract_tables;
use wwt_index::{IndexBuilder, TableIndex, TableStore};
use wwt_model::{AnswerTable, Query, TableId, WebTable};
use wwt_text::tokenize;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct WwtConfig {
    /// Column-mapper configuration (weights, thresholds).
    pub mapper: MapperConfig,
    /// Collective inference algorithm.
    pub algorithm: InferenceAlgorithm,
    /// Candidates retrieved by the first index probe.
    pub probe1_k: usize,
    /// New candidates admitted by the second index probe (top content
    /// overlap matches only; a small cap keeps sampled-row noise out).
    pub probe2_k: usize,
    /// Relevance-probability bar for the "top-two tables with very high
    /// relevance score" that seed the second probe (§2.2.1).
    pub high_relevance: f64,
    /// Rows sampled from each confident table for the second probe
    /// (paper: 10).
    pub sample_rows: usize,
    /// Probe hits scoring below this fraction of the best hit's score are
    /// dropped (keeps weak single-keyword matches from flooding the
    /// candidate set).
    pub score_cutoff_frac: f64,
}

impl Default for WwtConfig {
    fn default() -> Self {
        WwtConfig {
            mapper: MapperConfig::default(),
            algorithm: InferenceAlgorithm::TableCentric,
            probe1_k: 60,
            probe2_k: 12,
            high_relevance: 0.75,
            sample_rows: 10,
            score_cutoff_frac: 0.34,
        }
    }
}

/// Everything the engine produces for one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The consolidated, ranked answer table.
    pub table: AnswerTable,
    /// The column mapping over all candidates.
    pub mapping: MappingResult,
    /// Candidate table ids, aligned with `mapping.labelings`.
    pub candidates: Vec<TableId>,
    /// Ids retrieved by the first probe.
    pub stage1: Vec<TableId>,
    /// Ids newly contributed by the second probe.
    pub stage2: Vec<TableId>,
    /// Whether the second probe fired.
    pub probe2_used: bool,
    /// Per-stage timing.
    pub timing: StageTimings,
}

/// The assembled WWT system: index + table store + mapper.
pub struct Wwt {
    index: TableIndex,
    store: TableStore,
    config: WwtConfig,
}

impl Wwt {
    /// Offline pipeline: extract data tables from raw HTML documents,
    /// build the store and the fielded index (paper §2.1).
    pub fn build<'a>(docs: impl IntoIterator<Item = &'a str>, config: WwtConfig) -> Self {
        let mut tables = Vec::new();
        let mut next_id = 0u32;
        for (i, html) in docs.into_iter().enumerate() {
            let url = format!("doc://{i}");
            let extracted = extract_tables(html, &url, next_id);
            next_id += extracted.len() as u32;
            tables.extend(extracted);
        }
        Self::from_tables(tables, config)
    }

    /// Builds the system from already extracted tables.
    pub fn from_tables(tables: Vec<WebTable>, config: WwtConfig) -> Self {
        let mut builder = IndexBuilder::new();
        for t in &tables {
            builder.add_table(t);
        }
        Wwt {
            index: builder.build(),
            store: TableStore::from_tables(tables),
            config,
        }
    }

    /// The fielded index.
    pub fn index(&self) -> &TableIndex {
        &self.index
    }

    /// The table store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &WwtConfig {
        &self.config
    }

    /// Runs the two-stage candidate retrieval (§2.2.1). Returns
    /// `(stage1_ids, stage2_only_ids, probe2_used, timings-so-far)`.
    pub fn retrieve(&self, query: &Query) -> (Vec<TableId>, Vec<TableId>, bool, StageTimings) {
        let mut timing = StageTimings::default();
        let cfg = &self.config;

        // Probe 1: union of query keywords (hits far below the best match
        // are dropped — they are single-keyword noise).
        let t0 = Instant::now();
        let tokens = tokenize(&query.all_keywords());
        let mut hits1 = self.index.search(&tokens, cfg.probe1_k);
        if let Some(best) = hits1.first().map(|h| h.score) {
            hits1.retain(|h| h.score >= best * cfg.score_cutoff_frac);
        }
        timing.index1 = t0.elapsed();

        let t0 = Instant::now();
        let stage1: Vec<TableId> = hits1.iter().map(|h| h.table).collect();
        let tables1: Vec<&WebTable> = stage1
            .iter()
            .filter_map(|&id| self.store.get(id))
            .collect();
        timing.read1 = t0.elapsed();

        // Pre-map stage-1 candidates to find confident seed tables.
        let t0 = Instant::now();
        let mapper = ColumnMapper {
            config: cfg.mapper.clone(),
            algorithm: cfg.algorithm,
        };
        let pre = mapper.map(query, &tables1, self.index.stats(), Some(&self.index));
        timing.column_map += t0.elapsed();

        let mut seeds: Vec<usize> = (0..tables1.len())
            .filter(|&i| {
                pre.table_relevance[i] >= cfg.high_relevance && pre.labelings[i].is_relevant()
            })
            .collect();
        seeds.sort_by(|&a, &b| {
            pre.table_relevance[b]
                .partial_cmp(&pre.table_relevance[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        seeds.truncate(2);

        let mut stage2: Vec<TableId> = Vec::new();
        let probe2_used = !seeds.is_empty();
        if probe2_used {
            // Sample rows from the confident tables (deterministic spread).
            let mut sample_tokens: Vec<String> = tokens.clone();
            for &s in &seeds {
                let t = tables1[s];
                let n = t.n_rows();
                let step = (n / cfg.sample_rows.max(1)).max(1);
                for r in (0..n).step_by(step).take(cfg.sample_rows) {
                    for c in 0..t.n_cols() {
                        // Purely numeric tokens (years, counts) match
                        // foreign tables everywhere; the discriminative
                        // part of a sampled row is its entity text.
                        sample_tokens.extend(
                            tokenize(t.cell(r, c))
                                .into_iter()
                                .filter(|tok| !tok.chars().all(|c| c.is_ascii_digit())),
                        );
                    }
                }
            }
            let t0 = Instant::now();
            // Stage-1 tables re-match their own sampled rows, so search
            // wide enough that they cannot crowd out new tables, then keep
            // the top `probe2_k` *new* content-overlap matches.
            let mut hits2 = self
                .index
                .search(&sample_tokens, cfg.probe2_k + stage1.len());
            hits2.retain(|h| !stage1.contains(&h.table));
            hits2.truncate(cfg.probe2_k);
            timing.index2 = t0.elapsed();
            let t0 = Instant::now();
            for h in hits2 {
                if !stage2.contains(&h.table) {
                    stage2.push(h.table);
                }
            }
            timing.read2 = t0.elapsed();
        }
        (stage1, stage2, probe2_used, timing)
    }

    /// Full online pipeline: retrieve → map → consolidate → rank (§2.2).
    pub fn answer(&self, query: &Query) -> QueryOutcome {
        let cfg = &self.config;
        let (stage1, stage2, probe2_used, mut timing) = self.retrieve(query);
        let candidates: Vec<TableId> = stage1.iter().chain(stage2.iter()).copied().collect();

        let t0 = Instant::now();
        let tables: Vec<&WebTable> = candidates
            .iter()
            .filter_map(|&id| self.store.get(id))
            .collect();
        timing.read2 += t0.elapsed();

        let t0 = Instant::now();
        let mapper = ColumnMapper {
            config: cfg.mapper.clone(),
            algorithm: cfg.algorithm,
        };
        let mapping = mapper.map(query, &tables, self.index.stats(), Some(&self.index));
        timing.column_map += t0.elapsed();

        let t0 = Instant::now();
        let inputs: Vec<RelevantInput<'_>> = (0..tables.len())
            .filter(|&i| mapping.labelings[i].is_relevant())
            .map(|i| RelevantInput {
                table: tables[i],
                labeling: &mapping.labelings[i],
                relevance: mapping.table_relevance[i],
            })
            .collect();
        let table = consolidate(query, &inputs);
        timing.consolidate = t0.elapsed();

        QueryOutcome {
            table,
            mapping,
            candidates,
            stage1,
            stage2,
            probe2_used,
            timing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn currency_page(i: usize, countries: &[(&str, &str)]) -> String {
        let mut rows = String::new();
        for (c, m) in countries {
            rows.push_str(&format!("<tr><td>{c}</td><td>{m}</td></tr>"));
        }
        format!(
            "<html><head><title>currencies {i}</title></head><body>\
             <p>List of countries and their currency</p>\
             <table><tr><th>Country</th><th>Currency</th></tr>{rows}</table>\
             </body></html>"
        )
    }

    fn junk_page() -> String {
        "<html><body><p>nothing here about forests</p>\
         <table><tr><th>ID</th><th>Area</th></tr>\
         <tr><td>7</td><td>2236</td></tr><tr><td>9</td><td>880</td></tr></table>\
         </body></html>"
            .to_string()
    }

    fn build_engine() -> Wwt {
        let docs = vec![
            currency_page(0, &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")]),
            currency_page(1, &[("India", "Rupee"), ("Brazil", "Real"), ("Japan", "Yen")]),
            junk_page(),
        ];
        Wwt::build(docs.iter().map(String::as_str), WwtConfig::default())
    }

    #[test]
    fn offline_build_extracts_and_indexes() {
        let wwt = build_engine();
        assert_eq!(wwt.store().len(), 3);
        assert_eq!(wwt.index().n_docs(), 3);
    }

    #[test]
    fn answer_consolidates_currency_tables() {
        let wwt = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let out = wwt.answer(&q);
        assert!(!out.table.is_empty(), "no answer rows");
        // India appears in both tables: must be merged with support 2.
        let india = out
            .table
            .rows
            .iter()
            .find(|r| r.cells[0] == "India")
            .expect("India row");
        assert_eq!(india.support, 2);
        assert_eq!(india.cells[1], "Rupee");
        // Four distinct countries in total.
        assert_eq!(out.table.len(), 4);
        // Junk table must not contribute.
        assert!(out
            .table
            .rows
            .iter()
            .all(|r| r.cells[0] != "7" && r.cells[1] != "2236"));
    }

    #[test]
    fn timings_are_populated() {
        let wwt = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let out = wwt.answer(&q);
        assert!(out.timing.column_map > std::time::Duration::ZERO);
        assert!(out.timing.total() >= out.timing.column_map);
    }

    #[test]
    fn retrieval_finds_stage1_candidates() {
        let wwt = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let (s1, _s2, _used, _t) = wwt.retrieve(&q);
        assert!(s1.len() >= 2, "stage1 {s1:?}");
    }

    #[test]
    fn unanswerable_query_yields_empty_table() {
        let wwt = build_engine();
        let q = Query::parse("zebra migrations | season").unwrap();
        let out = wwt.answer(&q);
        assert!(out.table.is_empty());
    }

    #[test]
    fn empty_engine_is_safe() {
        let wwt = Wwt::from_tables(vec![], WwtConfig::default());
        let q = Query::parse("anything | at all").unwrap();
        let out = wwt.answer(&q);
        assert!(out.table.is_empty());
        assert!(out.candidates.is_empty());
    }
}
