//! Engine configuration.
//!
//! The end-to-end pipeline logic lives in [`crate::engine`]; this module
//! keeps [`WwtConfig`] — the build-time defaults that
//! [`crate::QueryRequest`] options override per request. (The pre-0.2
//! `Wwt` facade and its `QueryOutcome` shape lived here until every
//! caller migrated to [`EngineBuilder`](crate::EngineBuilder) /
//! [`Engine`](crate::Engine).)

use wwt_core::{InferenceAlgorithm, MapperConfig};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct WwtConfig {
    /// Column-mapper configuration (weights, thresholds).
    pub mapper: MapperConfig,
    /// Collective inference algorithm.
    pub algorithm: InferenceAlgorithm,
    /// Candidates retrieved by the first index probe.
    pub probe1_k: usize,
    /// New candidates admitted by the second index probe (top content
    /// overlap matches only; a small cap keeps sampled-row noise out).
    pub probe2_k: usize,
    /// Relevance-probability bar for the "top-two tables with very high
    /// relevance score" that seed the second probe (§2.2.1).
    pub high_relevance: f64,
    /// Rows sampled from each confident table for the second probe
    /// (paper: 10).
    pub sample_rows: usize,
    /// Probe hits scoring below this fraction of the best hit's score are
    /// dropped (keeps weak single-keyword matches from flooding the
    /// candidate set).
    pub score_cutoff_frac: f64,
    /// Precompute every table's feature view (tokenized headers, TF-IDF
    /// vectors, value sets) once at engine bind instead of per query —
    /// the answers are byte-identical either way (the computation is
    /// deterministic), only *when* it runs changes. On by default; the
    /// differential tests switch it off to drive the per-query oracle
    /// path.
    pub precompute_views: bool,
}

impl Default for WwtConfig {
    fn default() -> Self {
        WwtConfig {
            mapper: MapperConfig::default(),
            algorithm: InferenceAlgorithm::TableCentric,
            probe1_k: 60,
            probe2_k: 12,
            high_relevance: 0.75,
            sample_rows: 10,
            score_cutoff_frac: 0.34,
            precompute_views: true,
        }
    }
}
