//! Fail-soft execution context ([`QueryOptions::fail_soft`]).
//!
//! A [`FailSoft`] handle threads through the online pipeline next to
//! [`Deadline`](crate::Deadline) and [`Trace`](wwt_obs::Trace). Disabled
//! (the default) it is inert — every `is_on()` check is a branch on a
//! plain bool, no lock is ever touched, and the pipeline's error paths
//! are byte-identical to a build without this module. Enabled, pipeline
//! stages *absorb* recoverable faults instead of propagating them: a
//! failed shard probe drops that shard, a mid-stage deadline expiry
//! truncates the stage, a failed column-map batch falls back to the
//! stage-1 pre-mapping — and each absorption records one human-readable
//! reason here. The engine surfaces the collected reasons as
//! [`QueryDiagnostics::degraded_reasons`](crate::QueryDiagnostics).
//!
//! Reasons live behind a `Mutex` because probe workers run on the shared
//! pool; contention is nil (a handful of pushes per degraded request).
//!
//! [`QueryOptions::fail_soft`]: crate::QueryOptions::fail_soft

use std::sync::Mutex;

/// Collector for fail-soft degradation reasons; inert when disabled.
#[derive(Debug)]
pub struct FailSoft {
    enabled: bool,
    reasons: Mutex<Vec<String>>,
}

impl FailSoft {
    /// A disabled handle: faults propagate exactly as without fail-soft.
    pub fn off() -> Self {
        FailSoft {
            enabled: false,
            reasons: Mutex::new(Vec::new()),
        }
    }

    /// An enabled handle: recoverable faults degrade instead of failing.
    pub fn on() -> Self {
        FailSoft {
            enabled: true,
            reasons: Mutex::new(Vec::new()),
        }
    }

    /// A handle matching the request option.
    pub fn from_option(fail_soft: bool) -> Self {
        if fail_soft {
            Self::on()
        } else {
            Self::off()
        }
    }

    /// True iff faults should be absorbed.
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Records why a stage degraded. No-op when disabled (callers on the
    /// absorb path should already have checked [`FailSoft::is_on`]).
    pub fn note(&self, reason: impl Into<String>) {
        if !self.enabled {
            return;
        }
        self.reasons
            .lock()
            .expect("fail-soft reason lock poisoned")
            .push(reason.into());
    }

    /// True iff at least one degradation was recorded.
    pub fn any(&self) -> bool {
        self.enabled
            && !self
                .reasons
                .lock()
                .expect("fail-soft reason lock poisoned")
                .is_empty()
    }

    /// Drains the recorded reasons (insertion order).
    pub fn take(&self) -> Vec<String> {
        std::mem::take(&mut *self.reasons.lock().expect("fail-soft reason lock poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inert() {
        let s = FailSoft::off();
        assert!(!s.is_on());
        s.note("ignored");
        assert!(!s.any());
        assert!(s.take().is_empty());
        assert!(!FailSoft::from_option(false).is_on());
    }

    #[test]
    fn on_collects_in_order() {
        let s = FailSoft::on();
        assert!(s.is_on());
        assert!(!s.any());
        s.note("probe1: shard 2 dropped");
        s.note(String::from("second probe: skipped"));
        assert!(s.any());
        assert_eq!(
            s.take(),
            vec![
                "probe1: shard 2 dropped".to_string(),
                "second probe: skipped".to_string()
            ]
        );
        assert!(!s.any());
        assert!(FailSoft::from_option(true).is_on());
    }
}
