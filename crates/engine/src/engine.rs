//! The offline/online split of the service-grade API.
//!
//! [`EngineBuilder`] runs the paper's offline pipeline (§2.1): table
//! extraction → table store → fielded index. [`Engine`] is the resulting
//! immutable snapshot — its internals are `Arc`-shared and every online
//! operation takes `&self`, so one build can serve queries from many
//! threads (`Engine: Send + Sync + Clone`, and cloning is cheap).

use crate::deadline::Deadline;
use crate::pipeline::WwtConfig;
use crate::pool::{fan_out, try_fan_out};
use crate::request::{QueryDiagnostics, QueryRequest, QueryResponse};
use crate::retrieval::Retrieval;
use crate::soft::FailSoft;
use crate::timing::StageTimings;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wwt_consolidate::{consolidate, RelevantInput};
use wwt_core::{ColumnMapper, InferenceAlgorithm, MappingResult, TableFeatures, TableView};
use wwt_html::extract_tables;
use wwt_index::{
    DocSets, JournalRecord, LiveIndex, LiveOp, SearchHit, ShardedIndex, ShardedIndexBuilder,
    TableIndex, TableStore,
};
use wwt_model::{Query, TableId, WebTable, WwtError};
use wwt_obs::{SpanRecord, Trace};
use wwt_text::{tokenize, TermId};

/// Default shard count: one shard per core, capped — beyond a handful of
/// shards the per-probe fan-out overhead outgrows the win.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(8))
        .unwrap_or(1)
}

/// Below this corpus size the scatter-gather runs the shards serially on
/// the calling thread: spawning workers costs more than probing a tiny
/// index, and the merged result is identical either way.
const PARALLEL_PROBE_MIN_DOCS: usize = 4096;

/// How many merge-loop iterations run between deadline checks. Checking
/// reads the clock, so the loop amortizes it over a batch of cheap
/// iterations while still bounding how far a giant candidate set can
/// blow past the budget *inside* a stage.
const MERGE_DEADLINE_STRIDE: usize = 1024;

/// Offline builder: accumulates documents/tables, then freezes them into
/// an [`Engine`] (extract → store → index, paper §2.1).
#[derive(Debug, Default)]
pub struct EngineBuilder {
    config: WwtConfig,
    tables: Vec<WebTable>,
    next_table_id: u32,
    n_docs: usize,
    /// Requested shard count; 0 means "auto" ([`default_shards`]).
    shards: usize,
    /// Worker threads for the bind itself (per-shard freeze fan-out and
    /// the per-table feature precompute); 0 means "auto" (one per core).
    /// Never changes the built engine — only how fast it binds.
    bind_threads: usize,
}

impl EngineBuilder {
    /// A builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with the given engine configuration.
    pub fn with_config(config: WwtConfig) -> Self {
        EngineBuilder {
            config,
            ..Self::default()
        }
    }

    /// Replaces the engine configuration.
    pub fn config(&mut self, config: WwtConfig) -> &mut Self {
        self.config = config;
        self
    }

    /// Extracts data tables from one HTML document under a synthetic
    /// `doc://N` URL.
    pub fn add_html(&mut self, html: &str) -> &mut Self {
        let url = format!("doc://{}", self.n_docs);
        self.add_document(html, &url)
    }

    /// Extracts data tables from one HTML document.
    pub fn add_document(&mut self, html: &str, url: &str) -> &mut Self {
        let extracted = extract_tables(html, url, self.next_table_id);
        self.next_table_id += extracted.len() as u32;
        self.n_docs += 1;
        self.tables.extend(extracted);
        self
    }

    /// Extracts data tables from many HTML documents.
    pub fn add_documents<'a>(&mut self, docs: impl IntoIterator<Item = &'a str>) -> &mut Self {
        for html in docs {
            self.add_html(html);
        }
        self
    }

    /// Adds an already extracted table verbatim.
    pub fn add_table(&mut self, table: WebTable) -> &mut Self {
        self.next_table_id = self.next_table_id.max(table.id.0 + 1);
        self.tables.push(table);
        self
    }

    /// Adds many already extracted tables verbatim.
    pub fn add_tables(&mut self, tables: impl IntoIterator<Item = WebTable>) -> &mut Self {
        for t in tables {
            self.add_table(t);
        }
        self
    }

    /// Number of tables accumulated so far.
    pub fn n_tables(&self) -> usize {
        self.tables.len()
    }

    /// Sets the number of index shards the build hash-partitions tables
    /// into (0 restores the auto default, [`default_shards`]). Sharding
    /// never changes answers — [`ShardedIndex`] is byte-identical to the
    /// single index — only how retrieval parallelizes.
    pub fn shards(&mut self, n: usize) -> &mut Self {
        self.shards = n;
        self
    }

    /// Sets how many worker threads the bind fans out over — the
    /// per-shard index freeze and the per-table feature precompute (0
    /// restores the auto default, one per core). The built engine is
    /// identical for every value; only bind wall-clock changes.
    pub fn bind_threads(&mut self, n: usize) -> &mut Self {
        self.bind_threads = n;
        self
    }

    /// Freezes the accumulated tables into an immutable [`Engine`],
    /// consuming the builder (reuse after `build` is a compile error).
    pub fn build(self) -> Engine {
        let n_shards = if self.shards == 0 {
            default_shards()
        } else {
            self.shards
        };
        let threads = if self.bind_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.bind_threads
        };
        let mut builder = ShardedIndexBuilder::new(n_shards);
        for t in &self.tables {
            builder.add_table(t);
        }
        Engine::assemble_with_threads(
            builder.build_with_threads(threads),
            TableStore::from_tables(self.tables),
            self.config,
            threads,
        )
    }
}

/// The immutable, thread-shareable WWT engine: sharded index + table
/// store + configuration. All query-side methods take `&self`; share one
/// engine across threads with [`Clone`] or `Arc`.
#[derive(Debug, Clone)]
pub struct Engine {
    index: Arc<ShardedIndex>,
    store: Arc<TableStore>,
    config: WwtConfig,
    /// Per-table feature views (tokenized headers, TF-IDF vectors, value
    /// sets), computed **once at bind time** against the engine's
    /// statistics and mapper configuration, then shared by every query —
    /// the per-query mapper used to rebuild all of this per request.
    /// Empty when `config.precompute_views` is off (the oracle path).
    features: Arc<HashMap<TableId, Arc<TableFeatures>>>,
    /// Worker threads used to scatter an index probe across shards
    /// (computed once at build; the workers come from the persistent
    /// [`fan_out`] pool, which only engages above
    /// [`PARALLEL_PROBE_MIN_DOCS`] where probe time dwarfs handoff
    /// cost).
    probe_threads: usize,
    /// Worker threads for the per-candidate column-mapping batch (one
    /// per core — unlike `probe_threads` it is not capped by the shard
    /// count, since candidates outnumber shards).
    map_threads: usize,
    /// Live-ingest overlay: the delta segment plus features for its
    /// tables. `None` on a purely frozen engine, which then takes
    /// exactly the pre-live code paths.
    live: Option<Arc<LiveOverlay>>,
    /// Cross-query memo of per-table-pair column matchings (edge
    /// construction §3.3): a pair's matching is query-independent, so
    /// every query on this engine shares one memo. Replaced — not
    /// carried over — on live mutations, since an ingest can rebind a
    /// table id to new content.
    pair_memo: Arc<wwt_core::PairMemo>,
}

/// The delta segment and the bind-time state riding with it: feature
/// views for delta tables, computed against the **frozen** statistics
/// (same IDF source every other view uses, so `map_views` sees one
/// consistent scale).
#[derive(Debug)]
struct LiveOverlay {
    live: Arc<LiveIndex>,
    features: HashMap<TableId, Arc<TableFeatures>>,
}

/// One live mutation in a batch handed to
/// [`Engine::with_mutations_applied`] — the engine-level twin of a
/// journal record (the journal stores the serialized form, this is the
/// applied form).
#[derive(Debug, Clone)]
pub enum EngineMutation {
    /// Ingest (or replace) one table.
    Add(WebTable),
    /// Remove one table by id.
    Remove(TableId),
}

// Compile-time proof that one engine can serve many threads.
const _: () = {
    const fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<Engine>();
};

impl Engine {
    /// A fresh offline builder.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Builds an engine directly from extracted tables.
    pub fn from_tables(tables: Vec<WebTable>, config: WwtConfig) -> Self {
        let mut b = EngineBuilder::with_config(config);
        b.add_tables(tables);
        b.build()
    }

    /// The (sharded) fielded index. A single-shard engine behaves — and
    /// answers — exactly like the pre-sharding `TableIndex`.
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    /// Number of index shards this engine scatter-gathers over.
    pub fn n_shards(&self) -> usize {
        self.index.n_shards()
    }

    /// The table store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The engine configuration (per-request overrides are applied on
    /// top via [`QueryRequest`]).
    pub fn config(&self) -> &WwtConfig {
        &self.config
    }

    /// Runs the two-stage candidate retrieval (§2.2.1) with the engine
    /// configuration.
    pub fn retrieve(&self, query: &Query) -> Retrieval {
        self.retrieve_with(
            query,
            &self.config,
            &Deadline::none(),
            &Trace::disabled(),
            &FailSoft::off(),
        )
        .map(|(retrieval, _)| retrieval)
        .expect("retrieval without a deadline cannot time out")
    }

    /// [`Engine::retrieve`] under a deadline: the budget is re-checked
    /// inside the probes — per shard worker and per merge stride — not
    /// just at stage boundaries, so an expired request fails at the next
    /// shard/merge checkpoint instead of completing the whole stage.
    /// (In keeping with [`Deadline`]'s contract, a shard search already
    /// running is never interrupted mid-flight; the overshoot bound is
    /// one shard's probe, not one stage.)
    pub fn retrieve_within(
        &self,
        query: &Query,
        deadline: &Deadline,
    ) -> Result<Retrieval, WwtError> {
        self.retrieve_with(
            query,
            &self.config,
            deadline,
            &Trace::disabled(),
            &FailSoft::off(),
        )
        .map(|(retrieval, _)| retrieval)
    }

    /// One ranked index probe, scattered across the shards on the engine
    /// pool and gathered with the equivalence-preserving merge. Query
    /// tokens are resolved against the global term dictionary **once**
    /// (one string hash per token); every shard worker then scores pure
    /// ids. Every worker re-checks `deadline` before probing its shard,
    /// so an expired budget abandons the not-yet-probed shards instead of
    /// finishing work nobody will read (a shard search already underway
    /// runs to completion — checks sit on shard boundaries, bounding the
    /// overshoot at one shard's probe).
    ///
    /// Alongside the merged hits, returns each shard's probe wall-clock
    /// (scatter order) — the per-shard view `QueryDiagnostics` surfaces
    /// so scatter-gather stragglers are visible.
    #[allow(clippy::too_many_arguments)]
    fn probe(
        &self,
        tokens: &[String],
        k: usize,
        deadline: &Deadline,
        stage: &'static str,
        trace: &Trace,
        label: &'static str,
        soft: &FailSoft,
    ) -> Result<(Vec<SearchHit>, Vec<Duration>), WwtError> {
        let Some(overlay) = &self.live else {
            return self.probe_frozen(tokens, k, deadline, stage, trace, label, soft);
        };
        // Live path: over-fetch the frozen shards by the number of
        // shadowed tables (so filtering tombstoned/overridden hits can
        // never starve the top-k), drop shadowed hits, then fold in the
        // delta segment's hits under the same global total order the
        // shard merge uses.
        let shadowed = overlay.live.shadowed_len();
        let (mut hits, shard_times) =
            self.probe_frozen(tokens, k + shadowed, deadline, stage, trace, label, soft)?;
        hits.retain(|h| !overlay.live.is_shadowed(h.table));
        let delta_hits = overlay.live.delta_search(tokens, k);
        if trace.is_enabled() {
            trace.note(&format!("{label}_delta_hits"), delta_hits.len().to_string());
        }
        hits.extend(delta_hits);
        hits.sort_by(SearchHit::rank_order);
        hits.truncate(k);
        Ok((hits, shard_times))
    }

    /// The frozen-only scatter-gather behind [`Engine::probe`]. Under
    /// fail-soft, a shard whose worker errors (or panics) — or that the
    /// deadline expired before — is dropped from the merge with a
    /// recorded reason instead of failing the whole probe; its slot in
    /// the per-shard timing view reads zero.
    #[allow(clippy::too_many_arguments)]
    fn probe_frozen(
        &self,
        tokens: &[String],
        k: usize,
        deadline: &Deadline,
        stage: &'static str,
        trace: &Trace,
        label: &'static str,
        soft: &FailSoft,
    ) -> Result<(Vec<SearchHit>, Vec<Duration>), WwtError> {
        let ids: Vec<TermId> = self.index.resolve_query(tokens);
        let n = self.index.n_shards();
        let probe_one = |s: usize| -> Result<(Vec<SearchHit>, Duration), WwtError> {
            deadline.check(stage)?;
            wwt_chaos::io_failpoint(wwt_chaos::PROBE_SHARD)?;
            let t0 = Instant::now();
            let hits = self.index.shard(s).search_ids(&ids, k);
            Ok((hits, t0.elapsed()))
        };
        if n == 1 {
            let (hits, elapsed) = match probe_one(0) {
                Ok(r) => r,
                Err(e) if soft.is_on() => {
                    soft.note(format!("{stage}: shard 0 dropped: {e}"));
                    (Vec::new(), Duration::default())
                }
                Err(e) => return Err(e),
            };
            if trace.is_enabled() {
                trace.note(&format!("{label}_shard_hits"), hits.len().to_string());
            }
            return Ok((hits, vec![elapsed]));
        }
        // Tiny corpora probe serially (threads = 1): same scatter order,
        // same merged bytes, none of the spawn cost.
        let threads = if self.index.n_docs() >= PARALLEL_PROBE_MIN_DOCS {
            self.probe_threads
        } else {
            1
        };
        // Fail-soft additionally isolates worker *panics* (`try_fan_out`
        // catches per unit); the strict path keeps the historical
        // fan-out, where a panic propagates to the service boundary.
        let per_shard: Vec<Result<(Vec<SearchHit>, Duration), WwtError>> = if soft.is_on() {
            try_fan_out(n, threads, probe_one)
                .into_iter()
                .map(|r| match r {
                    Ok(inner) => inner,
                    Err(p) => Err(WwtError::Internal(p.to_string())),
                })
                .collect()
        } else {
            fan_out(n, threads, probe_one)
        };
        let mut lists = Vec::with_capacity(n);
        let mut shard_times = Vec::with_capacity(n);
        for (s, r) in per_shard.into_iter().enumerate() {
            match r {
                Ok((hits, elapsed)) => {
                    lists.push(hits);
                    shard_times.push(elapsed);
                }
                Err(e) if soft.is_on() => {
                    soft.note(format!("{stage}: shard {s} dropped: {e}"));
                    shard_times.push(Duration::default());
                }
                Err(e) => return Err(e),
            }
        }
        if trace.is_enabled() {
            let per_shard_hits: Vec<String> = lists.iter().map(|l| l.len().to_string()).collect();
            trace.note(&format!("{label}_shard_hits"), per_shard_hits.join(","));
        }
        // Fail-soft merging runs unbudgeted: the hits are already in
        // hand, and losing them to a stride check would throw away the
        // partial result the mode exists to save.
        let merge_deadline = if soft.is_on() {
            Deadline::none()
        } else {
            *deadline
        };
        Ok((merge_shard_hits(lists, k, &merge_deadline)?, shard_times))
    }

    /// Retrieval plus the stage-1 pre-mapping it computed along the way
    /// (reusable as the final mapping when the second probe adds
    /// nothing). Fails only when `deadline` expires at the boundary
    /// between the first and second probe.
    fn retrieve_with(
        &self,
        query: &Query,
        cfg: &WwtConfig,
        deadline: &Deadline,
        trace: &Trace,
        soft: &FailSoft,
    ) -> Result<(Retrieval, MappingResult), WwtError> {
        let mut timing = StageTimings::default();

        // Probe 1: union of query keywords (hits far below the best match
        // are dropped — they are single-keyword noise), scattered across
        // the index shards.
        let t0 = Instant::now();
        let tokens = tokenize(&query.all_keywords());
        let (mut hits1, shard_times1) = self.probe(
            &tokens,
            cfg.probe1_k,
            deadline,
            "first probe",
            trace,
            "probe1",
            soft,
        )?;
        if let Some(best) = hits1.first().map(|h| h.score) {
            hits1.retain(|h| h.score >= best * cfg.score_cutoff_frac);
        }
        timing.index1 = t0.elapsed();
        timing.probe1_shards = shard_times1;
        if trace.is_enabled() {
            trace.push_span(probe_span(
                "probe1",
                timing.index1,
                &timing.probe1_shards,
                hits1.len(),
                cfg.probe1_k,
            ));
        }

        let t0 = Instant::now();
        let stage1: Vec<TableId> = hits1.iter().map(|h| h.table).collect();
        let stage1_set: HashSet<TableId> = stage1.iter().copied().collect();
        let tables1: Vec<&WebTable> = stage1.iter().filter_map(|&id| self.table(id)).collect();
        timing.read1 = t0.elapsed();
        if trace.is_enabled() {
            trace.push_span(
                SpanRecord::new("read1", timing.read1)
                    .with_detail("tables", tables1.len().to_string()),
            );
        }

        // Pre-map stage-1 candidates to find confident seed tables.
        let t0 = Instant::now();
        let mapper = ColumnMapper {
            config: cfg.mapper.clone(),
            algorithm: cfg.algorithm,
            pair_memo: Some(Arc::clone(&self.pair_memo)),
        };
        let pre = match self.map_traced(
            &mapper,
            query,
            &tables1,
            trace,
            deadline,
            "column_map:premap",
        ) {
            Ok(pre) => pre,
            Err(e) if soft.is_on() => {
                // Fail-soft: no pre-mapping means no relevance scores —
                // the second probe loses its seeds and the final map has
                // no premap to fall back on, but retrieval itself stands.
                soft.note(format!("column mapping (premap): {e}"));
                MappingResult::empty()
            }
            Err(e) => return Err(e),
        };
        timing.column_map += t0.elapsed();

        let mut seeds: Vec<usize> = if pre.labelings.len() == tables1.len() {
            (0..tables1.len())
                .filter(|&i| {
                    pre.table_relevance[i] >= cfg.high_relevance && pre.labelings[i].is_relevant()
                })
                .collect()
        } else {
            // The fail-soft empty premap above: nothing to seed from.
            Vec::new()
        };
        seeds.sort_by(|&a, &b| {
            pre.table_relevance[b]
                .partial_cmp(&pre.table_relevance[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        seeds.truncate(2);
        if trace.is_enabled() {
            trace.note("probe2_seeds", seeds.len().to_string());
        }

        // Stage boundary: the second probe (and everything after it) is
        // refused once the budget is spent — or, fail-soft, skipped with
        // the stage-1 candidates standing in for the full retrieval.
        if let Err(e) = deadline.check("second probe") {
            if soft.is_on() {
                soft.note("second probe: skipped (deadline exceeded)");
                seeds.clear();
            } else {
                return Err(e);
            }
        }

        let mut stage2: Vec<TableId> = Vec::new();
        let probe2_used = !seeds.is_empty();
        if probe2_used {
            // Sample rows from the confident tables (deterministic spread).
            let mut sample_tokens: Vec<String> = tokens.clone();
            for &s in &seeds {
                let t = tables1[s];
                let n = t.n_rows();
                let step = (n / cfg.sample_rows.max(1)).max(1);
                for r in (0..n).step_by(step).take(cfg.sample_rows) {
                    for c in 0..t.n_cols() {
                        // Purely numeric tokens (years, counts) match
                        // foreign tables everywhere; the discriminative
                        // part of a sampled row is its entity text.
                        sample_tokens.extend(
                            tokenize(t.cell(r, c))
                                .into_iter()
                                .filter(|tok| !tok.chars().all(|c| c.is_ascii_digit())),
                        );
                    }
                }
            }
            let t0 = Instant::now();
            // Stage-1 tables re-match their own sampled rows, so search
            // wide enough that they cannot crowd out new tables, then keep
            // the top `probe2_k` *new* content-overlap matches.
            let (mut hits2, shard_times2) = self.probe(
                &sample_tokens,
                cfg.probe2_k + stage1.len(),
                deadline,
                "second probe",
                trace,
                "probe2",
                soft,
            )?;
            hits2.retain(|h| !stage1_set.contains(&h.table));
            hits2.truncate(cfg.probe2_k);
            timing.index2 = t0.elapsed();
            timing.probe2_shards = shard_times2;
            if trace.is_enabled() {
                trace.push_span(probe_span(
                    "probe2",
                    timing.index2,
                    &timing.probe2_shards,
                    hits2.len(),
                    cfg.probe2_k,
                ));
            }
            let t0 = Instant::now();
            let mut seen2: HashSet<TableId> = HashSet::with_capacity(hits2.len());
            for (i, h) in hits2.into_iter().enumerate() {
                // The in-stage check: a giant second-probe candidate set
                // must not carry the request past its budget between the
                // stage boundaries.
                if i % MERGE_DEADLINE_STRIDE == 0 {
                    if let Err(e) = deadline.check("retrieval merge") {
                        if soft.is_on() {
                            soft.note(
                                "retrieval merge: candidate list truncated (deadline exceeded)",
                            );
                            break;
                        }
                        return Err(e);
                    }
                }
                if seen2.insert(h.table) {
                    stage2.push(h.table);
                }
            }
            timing.read2 = t0.elapsed();
        }
        Ok((
            Retrieval {
                stage1,
                stage2,
                probe2_used,
                timing,
            },
            pre,
        ))
    }

    /// Full online pipeline for one typed request: validate options →
    /// retrieve → map → consolidate → rank → limit (§2.2). The request's
    /// `deadline_ms` budget (if any) is checked at every stage boundary;
    /// once it passes, the pipeline aborts with
    /// [`WwtError::DeadlineExceeded`] instead of finishing work whose
    /// reader has already given up.
    pub fn answer(&self, request: &QueryRequest) -> Result<QueryResponse, WwtError> {
        self.answer_traced(request, &Trace::disabled())
    }

    /// [`Engine::answer`] recording into a caller-supplied [`Trace`].
    ///
    /// A disabled trace makes this exactly `answer` — no clock reads, no
    /// allocations beyond the untraced path. When the request sets
    /// `explain` and the caller passed a disabled handle, a local trace
    /// is enabled so in-process callers get diagnostics too. The
    /// finished report lands in [`QueryDiagnostics::trace`].
    pub fn answer_traced(
        &self,
        request: &QueryRequest,
        trace: &Trace,
    ) -> Result<QueryResponse, WwtError> {
        let cfg = request.options.resolve(&self.config)?;
        let deadline = Deadline::starting_now(request.options.deadline_ms);
        // The admission check stays hard even under fail-soft: a budget
        // spent before any work ran has no partial result to salvage.
        deadline.check("retrieval")?;
        let soft = FailSoft::from_option(request.options.fail_soft);
        let local;
        let trace = if request.options.explain && !trace.is_enabled() {
            local = Trace::enabled("");
            &local
        } else {
            trace
        };
        if !trace.is_enabled() {
            return self.answer_with(
                &request.query,
                &cfg,
                request.options.max_rows,
                trace,
                &deadline,
                &soft,
            );
        }
        let t0 = Instant::now();
        if let Some(ms) = request.options.deadline_ms {
            trace.note("deadline_ms", ms.to_string());
        }
        let mut response = self.answer_with(
            &request.query,
            &cfg,
            request.options.max_rows,
            trace,
            &deadline,
            &soft,
        )?;
        trace.note(
            "docset_cache_entries",
            self.docset_cache_entries().to_string(),
        );
        response.diagnostics.trace = trace.finish(t0.elapsed());
        Ok(response)
    }

    /// Full online pipeline for a bare query with the engine defaults
    /// (infallible: there are no per-request options to validate and no
    /// deadline to expire).
    pub fn answer_query(&self, query: &Query) -> QueryResponse {
        self.answer_with(
            query,
            &self.config,
            None,
            &Trace::disabled(),
            &Deadline::none(),
            &FailSoft::off(),
        )
        .expect("a query without a deadline cannot time out")
    }

    fn answer_with(
        &self,
        query: &Query,
        cfg: &WwtConfig,
        max_rows: Option<usize>,
        trace: &Trace,
        deadline: &Deadline,
        soft: &FailSoft,
    ) -> Result<QueryResponse, WwtError> {
        let (retrieval, premap) = self.retrieve_with(query, cfg, deadline, trace, soft)?;
        let mut timing = retrieval.timing.clone();
        let mut candidates = retrieval.candidates();

        // Stage boundary: candidate tables are in hand; mapping is the
        // most expensive online stage, so refuse it on a spent budget —
        // or, fail-soft, cut it back to the first-probe candidates the
        // stage-1 pre-mapping already labeled.
        let mut mapping_cut = false;
        if let Err(e) = deadline.check("column mapping") {
            if soft.is_on() {
                soft.note("column mapping: limited to first-probe candidates (deadline exceeded)");
                mapping_cut = true;
                candidates.truncate(retrieval.stage1.len());
            } else {
                return Err(e);
            }
        }

        let t0 = Instant::now();
        let mut tables: Vec<&WebTable> =
            candidates.iter().filter_map(|&id| self.table(id)).collect();
        timing.read2 += t0.elapsed();

        // The stage-1 pre-map already labeled exactly this candidate set
        // when the second probe contributed nothing (or fail-soft cut
        // the mapping back to stage 1) — reuse it instead of re-running
        // the most expensive online stage (the mapper is deterministic
        // over identical inputs).
        let premap_stats = premap.stats;
        let reused_premap =
            (retrieval.stage2.is_empty() || mapping_cut) && premap.labelings.len() == tables.len();
        let mut fell_back = false;
        let mapping = if reused_premap {
            if trace.is_enabled() {
                trace.note("column_map", "reused premap");
            }
            premap
        } else {
            let t0 = Instant::now();
            // Fail-soft deadline pressure (over half the budget already
            // spent): joint inference would likely blow what remains, so
            // downgrade to independent per-table labeling — a cheaper
            // answer beats none.
            let mut algorithm = cfg.algorithm;
            if soft.is_on() && deadline.pressured() && algorithm != InferenceAlgorithm::Independent
            {
                soft.note(
                    "column mapping: downgraded to independent inference (deadline pressure)",
                );
                algorithm = InferenceAlgorithm::Independent;
            }
            let mapper = ColumnMapper {
                config: cfg.mapper.clone(),
                algorithm,
                pair_memo: Some(Arc::clone(&self.pair_memo)),
            };
            match self.map_traced(&mapper, query, &tables, trace, deadline, "column_map") {
                Ok(mapping) => {
                    timing.column_map += t0.elapsed();
                    mapping
                }
                Err(e) if soft.is_on() => {
                    timing.column_map += t0.elapsed();
                    soft.note(format!("column mapping: {e}"));
                    fell_back = true;
                    // Fall back to the stage-1 pre-mapping: candidates
                    // are stage1 ++ stage2 and table reads preserve that
                    // prefix order, so the premap labels exactly the
                    // first `premap.labelings.len()` tables (zero when
                    // the premap itself degraded away).
                    tables.truncate(premap.labelings.len());
                    candidates.truncate(tables.len());
                    premap
                }
                Err(e) => return Err(e),
            }
        };
        // Diagnostics counters cover every mapper run this request made:
        // the final map plus the premap when the latter wasn't reused
        // (reuse — including the fail-soft fallback onto the premap —
        // would double-count the same run).
        let mut map_stats = mapping.stats;
        if !reused_premap && !fell_back {
            map_stats.merge(&premap_stats);
        }

        // Stage boundary: mapping is done; consolidation is refused on a
        // spent budget (fail-soft: noted and run anyway — it is cheap
        // relative to what is already in hand, and it is the step that
        // turns the surviving candidates into an answer).
        if let Err(e) = deadline.check("consolidation") {
            if soft.is_on() {
                soft.note("consolidation: ran past the deadline");
            } else {
                return Err(e);
            }
        }

        let t0 = Instant::now();
        let inputs: Vec<RelevantInput<'_>> = (0..tables.len())
            .filter(|&i| mapping.labelings[i].is_relevant())
            .map(|i| RelevantInput {
                table: tables[i],
                labeling: &mapping.labelings[i],
                relevance: mapping.table_relevance[i],
            })
            .collect();
        let mut table = consolidate(query, &inputs);
        timing.consolidate = t0.elapsed();
        if trace.is_enabled() {
            trace.push_span(
                SpanRecord::new("consolidate", timing.consolidate)
                    .with_detail("relevant_tables", inputs.len().to_string()),
            );
            trace.note("candidates", candidates.len().to_string());
        }

        let rows_before_limit = table.len();
        if let Some(limit) = max_rows {
            table.rows.truncate(limit);
        }
        let diagnostics = QueryDiagnostics {
            timing,
            probe2_used: retrieval.probe2_used,
            n_candidates: candidates.len(),
            n_relevant: inputs.len(),
            rows_before_limit,
            trace: None,
            map_stats,
            degraded: soft.any(),
            degraded_reasons: soft.take(),
        };
        Ok(QueryResponse {
            table,
            mapping,
            candidates,
            retrieval,
            diagnostics,
        })
    }

    /// The column-map batch with optional per-view tracing: disabled
    /// traces take the untimed pooled path unchanged; enabled traces run
    /// the timed variant (identical output) and record a span carrying
    /// one child per view — a deterministic prefix in candidate order,
    /// so traces of the same request are structurally stable run to run.
    ///
    /// The batch runs under `deadline` with in-stage granularity: the
    /// cancel hook is consulted once per view inside the node-potential
    /// loop and once per table during edge construction, so a giant
    /// candidate set cannot carry the request far past its budget
    /// between stage boundaries (the same contract as
    /// [`MERGE_DEADLINE_STRIDE`] in retrieval merging).
    fn map_traced(
        &self,
        mapper: &ColumnMapper,
        query: &Query,
        tables: &[&WebTable],
        trace: &Trace,
        deadline: &Deadline,
        span_name: &'static str,
    ) -> Result<MappingResult, WwtError> {
        wwt_chaos::io_failpoint(wwt_chaos::MAP_BATCH)?;
        let views = self.views_for(tables);
        let check = || deadline.check("column mapping");
        let cancel: Option<&(dyn Fn() -> Result<(), WwtError> + Sync)> = Some(&check);
        if !trace.is_enabled() {
            return mapper.map_views_cancellable(
                query,
                &views,
                self.index.stats(),
                Some(self.docsets()),
                self.map_threads,
                cancel,
            );
        }
        let t0 = Instant::now();
        let (mapping, view_times) = mapper.map_views_cancellable_timed(
            query,
            &views,
            self.index.stats(),
            Some(self.docsets()),
            self.map_threads,
            cancel,
        )?;
        let mut span = SpanRecord::new(span_name, t0.elapsed())
            .with_detail("views", tables.len().to_string())
            .with_detail("threads", self.map_threads.to_string());
        const MAX_VIEW_CHILDREN: usize = 8;
        for (i, elapsed) in view_times.iter().take(MAX_VIEW_CHILDREN).enumerate() {
            span = span.with_child(SpanRecord::new(
                format!("view:{}", tables[i].id.0),
                *elapsed,
            ));
        }
        trace.push_span(span);
        Ok(mapping)
    }

    /// Views over `tables`, reusing bind-time precomputed features when
    /// available (the common path) and computing on the spot otherwise
    /// (`precompute_views` off, or a table unknown at bind). Both paths
    /// produce identical answers — with `precompute_views` on, spot
    /// views carry the same interned fast-path layout bind-time views
    /// do; with it off, the engine stays entirely on the string oracle
    /// path (the reference implementation equivalence tests diff
    /// against).
    fn views_for<'t>(&self, tables: &[&'t WebTable]) -> Vec<TableView<'t>> {
        tables
            .iter()
            .map(|t| {
                // Delta tables (and delta overrides of frozen ids) carry
                // their own bind-time features; they are checked first so
                // a re-ingested id never reuses the stale frozen view.
                if let Some(overlay) = &self.live {
                    if let Some(f) = overlay.features.get(&t.id) {
                        return TableView::with_features(t, Arc::clone(f));
                    }
                    if overlay.live.delta_table(t.id).is_some() {
                        return self.spot_view(t);
                    }
                }
                match self.features.get(&t.id) {
                    Some(f) => TableView::with_features(t, Arc::clone(f)),
                    None => self.spot_view(t),
                }
            })
            .collect()
    }

    /// A view computed at query time for a table with no bind-time
    /// features, matching the engine's configured feature flavor.
    fn spot_view<'t>(&self, t: &'t WebTable) -> TableView<'t> {
        if self.config.precompute_views {
            TableView::new(t, self.index.stats(), self.config.mapper.body_freq_frac)
        } else {
            TableView::new_oracle(t, self.index.stats(), self.config.mapper.body_freq_frac)
        }
    }

    /// One table of the live view: the delta's copy wins, tombstoned
    /// frozen tables are gone, everything else reads the frozen store.
    fn table(&self, id: TableId) -> Option<&WebTable> {
        if let Some(overlay) = &self.live {
            if let Some(t) = overlay.live.delta_table(id) {
                return Some(t);
            }
            if overlay.live.is_tombstoned(id) {
                return None;
            }
        }
        self.store.get(id)
    }

    /// The doc-set probe surface the column mapper consumes: the live
    /// overlay when one exists (shadow-filtered + delta-extended ids),
    /// the frozen facade otherwise.
    fn docsets(&self) -> &dyn DocSets {
        match &self.live {
            Some(overlay) => overlay.live.as_ref() as &dyn DocSets,
            None => self.index.as_ref() as &dyn DocSets,
        }
    }

    /// Entries resident in the index's doc-set probe memo (facade +
    /// shards) — the `wwt_docset_cache_entries` gauge.
    pub fn docset_cache_entries(&self) -> usize {
        self.index.docset_cache_entries()
    }

    /// Assembles an engine from a built sharded index and store without
    /// validation (internal: the builder feeds the store and index from
    /// the same table list, so they cannot disagree). When
    /// `config.precompute_views` is on (the default), every stored
    /// table's feature view is computed here, once, against the final
    /// global statistics — the per-query mapper then reuses them instead
    /// of re-tokenizing candidates on every request.
    fn assemble(index: ShardedIndex, store: TableStore, config: WwtConfig) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::assemble_with_threads(index, store, config, threads)
    }

    /// [`Engine::assemble`] with an explicit bind concurrency: the
    /// per-table feature precompute — the dominant bind-time cost after
    /// the freeze — fans out over the persistent worker pool. Each
    /// table's features depend only on that table and the shared frozen
    /// statistics, so the resulting engine is identical for every thread
    /// count.
    fn assemble_with_threads(
        index: ShardedIndex,
        store: TableStore,
        config: WwtConfig,
        threads: usize,
    ) -> Self {
        let features: HashMap<TableId, Arc<TableFeatures>> = if config.precompute_views {
            let tables: Vec<&WebTable> = store.iter().collect();
            fan_out(tables.len(), threads, |i| {
                let t = tables[i];
                (
                    t.id,
                    Arc::new(TableFeatures::compute(
                        t,
                        index.stats(),
                        config.mapper.body_freq_frac,
                    )),
                )
            })
            .into_iter()
            .collect()
        } else {
            HashMap::new()
        };
        Engine {
            probe_threads: index.n_shards().min(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            ),
            map_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            index: Arc::new(index),
            store: Arc::new(store),
            features: Arc::new(features),
            pair_memo: Arc::new(wwt_core::PairMemo::for_config(&config.mapper)),
            config,
            live: None,
        }
    }

    /// Assembles an engine from already-built single-index parts (e.g. a
    /// legacy persisted layout). Every table the index knows must be
    /// present in the store — a missing table would silently vanish from
    /// answers, so the mismatch is rejected up front.
    pub fn from_parts(
        index: TableIndex,
        store: TableStore,
        config: WwtConfig,
    ) -> Result<Self, WwtError> {
        Self::from_sharded_parts(ShardedIndex::single(index), store, config)
    }

    /// [`Engine::from_parts`] for a sharded index.
    pub fn from_sharded_parts(
        index: ShardedIndex,
        store: TableStore,
        config: WwtConfig,
    ) -> Result<Self, WwtError> {
        for id in index.table_ids() {
            if store.get(id).is_none() {
                return Err(WwtError::Corrupt(format!(
                    "index references table {id} missing from the store"
                )));
            }
        }
        Ok(Self::assemble(index, store, config))
    }

    /// True when this engine carries uncompacted live mutations.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Tables in the live delta segment (0 on a frozen engine).
    pub fn delta_len(&self) -> usize {
        self.live.as_ref().map_or(0, |o| o.live.delta_len())
    }

    /// Tombstoned frozen tables (0 on a frozen engine).
    pub fn tombstone_len(&self) -> usize {
        self.live.as_ref().map_or(0, |o| o.live.tombstone_len())
    }

    /// Logical table count: frozen minus deleted/overridden, plus delta.
    pub fn n_tables(&self) -> usize {
        match &self.live {
            Some(overlay) => overlay.live.n_tables(),
            None => self.store.len(),
        }
    }

    /// A new engine with `table` added to (or replacing the same id in)
    /// the live delta segment. The frozen shards are untouched — sharing
    /// stays `Arc`-cheap — and the returned engine answers queries over
    /// the updated corpus immediately. Cost is O(delta): the delta index
    /// is rebuilt from its (threshold-bounded) tables plus one feature
    /// computation for the new table. A single-op batch of
    /// [`Engine::with_mutations_applied`].
    pub fn with_table_added(&self, table: WebTable) -> Engine {
        self.with_mutations_applied(vec![EngineMutation::Add(table)])
    }

    /// A new engine with table `id` removed from the live view: dropped
    /// from the delta if it lives there, tombstoned if it is a frozen
    /// table. Returns `None` when the id exists nowhere (already
    /// deleted, or never ingested).
    pub fn with_table_removed(&self, id: TableId) -> Option<Engine> {
        let in_frozen = self.store.get(id).is_some();
        let (in_delta, already_gone) = match &self.live {
            Some(o) => (o.live.delta_table(id).is_some(), o.live.is_tombstoned(id)),
            None => (false, false),
        };
        if !in_delta && (!in_frozen || already_gone) {
            return None;
        }
        Some(self.with_mutations_applied(vec![EngineMutation::Remove(id)]))
    }

    /// A new engine with N tables added in **one** delta rebuild — the
    /// batch-ingest path (`POST /admin/tables/batch`). Equivalent to
    /// folding the tables through [`Engine::with_table_added`] one at a
    /// time, but the delta index is rebuilt once instead of N times and
    /// the caller publishes one generation instead of N.
    pub fn with_tables_added(&self, tables: Vec<WebTable>) -> Engine {
        self.with_mutations_applied(tables.into_iter().map(EngineMutation::Add).collect())
    }

    /// Applies an ordered batch of live mutations with one delta rebuild
    /// and returns the resulting engine. This is the single apply path
    /// every live mutation goes through — single-table ingest/removal,
    /// batch ingest, and journal replay — so the delta state is always
    /// the same deterministic function of the logical mutation sequence,
    /// which is what makes a replayed engine byte-identical to one that
    /// took the same mutations live.
    ///
    /// Removals of ids that exist nowhere *at their position in the
    /// batch* are skipped, matching [`Engine::with_table_removed`]
    /// returning `None`. An empty (or all-skipped) batch returns a cheap
    /// clone.
    pub fn with_mutations_applied(&self, mutations: Vec<EngineMutation>) -> Engine {
        // Pending delta membership / tombstones, tracked through the
        // batch so each removal sees the state its predecessors left:
        // the base overlay's view, corrected by what this batch has
        // tombstoned (`added_tombstones`) or re-added (`revived`).
        let mut in_delta: HashSet<TableId> = match &self.live {
            Some(o) => o.live.delta_tables().iter().map(|t| t.id).collect(),
            None => HashSet::new(),
        };
        let mut added_tombstones: HashSet<TableId> = HashSet::new();
        let mut revived: HashSet<TableId> = HashSet::new();
        let mut features = self
            .live
            .as_ref()
            .map(|o| o.features.clone())
            .unwrap_or_default();
        let mut ops: Vec<LiveOp> = Vec::with_capacity(mutations.len());
        for mutation in mutations {
            match mutation {
                EngineMutation::Add(table) => {
                    let id = table.id;
                    let overrides_frozen = self.store.get(id).is_some();
                    features.remove(&id);
                    if self.config.precompute_views {
                        features.insert(
                            id,
                            Arc::new(TableFeatures::compute(
                                &table,
                                self.index.stats(),
                                self.config.mapper.body_freq_frac,
                            )),
                        );
                    }
                    in_delta.insert(id);
                    added_tombstones.remove(&id);
                    revived.insert(id);
                    ops.push(LiveOp::Add {
                        table,
                        overrides_frozen,
                    });
                }
                EngineMutation::Remove(id) => {
                    let in_frozen = self.store.get(id).is_some();
                    let base_tombstoned =
                        self.live.as_ref().is_some_and(|o| o.live.is_tombstoned(id));
                    let tombstoned = (base_tombstoned && !revived.contains(&id))
                        || added_tombstones.contains(&id);
                    if !in_delta.contains(&id) && (!in_frozen || tombstoned) {
                        continue; // removing what isn't there: a no-op
                    }
                    features.remove(&id);
                    in_delta.remove(&id);
                    if in_frozen {
                        added_tombstones.insert(id);
                        revived.remove(&id);
                    }
                    ops.push(LiveOp::Remove {
                        id,
                        tombstone_frozen: in_frozen,
                    });
                }
            }
        }
        if ops.is_empty() {
            return self.clone();
        }
        let base_live = match &self.live {
            Some(o) => o.live.with_ops_applied(ops),
            None => LiveIndex::empty(Arc::clone(&self.index)).with_ops_applied(ops),
        };
        self.with_overlay(base_live, features)
    }

    /// Replays a journal recovered at boot over this (frozen) engine,
    /// reconstructing the exact pre-crash logical corpus: add records
    /// parse back through the table codec, remove records tombstone or
    /// evict, and the whole sequence applies as one batch. The result is
    /// byte-identical to the engine that originally took those mutations
    /// live (`tests/crash_recovery.rs` is the differential proof).
    pub fn with_journal_replayed(&self, records: &[JournalRecord]) -> Result<Engine, WwtError> {
        let mut mutations = Vec::with_capacity(records.len());
        for record in records {
            match record {
                JournalRecord::AddTable(line) => {
                    let table = wwt_index::table_from_json(line.trim()).map_err(|e| {
                        WwtError::Corrupt(format!("journal add record does not parse: {e}"))
                    })?;
                    mutations.push(EngineMutation::Add(table));
                }
                JournalRecord::RemoveTable(id) => mutations.push(EngineMutation::Remove(*id)),
            }
        }
        Ok(self.with_mutations_applied(mutations))
    }

    /// Freezes the live delta into the main shards: rebuilds the engine
    /// canonically over its logical tables (frozen minus deleted and
    /// overridden, plus delta, ascending by id). The result is
    /// **byte-identical** to a from-scratch build over the same tables
    /// with the same configuration and shard count — compaction erases
    /// the delta approximation entirely. A frozen engine compacts to a
    /// cheap clone of itself.
    pub fn compacted(&self) -> Engine {
        let Some(overlay) = &self.live else {
            return self.clone();
        };
        let mut tables: Vec<WebTable> = self
            .store
            .iter()
            .filter(|t| !overlay.live.is_shadowed(t.id))
            .cloned()
            .collect();
        tables.extend(overlay.live.delta_tables().iter().cloned());
        tables.sort_by_key(|t| t.id);
        let mut b = EngineBuilder::with_config(self.config.clone());
        b.shards(self.n_shards());
        b.add_tables(tables);
        b.build()
    }

    /// Wraps live state into a new engine sharing every frozen part.
    fn with_overlay(
        &self,
        live: LiveIndex,
        features: HashMap<TableId, Arc<TableFeatures>>,
    ) -> Engine {
        let mut next = self.clone();
        // A mutation can rebind a table id to different content, which
        // would poison memoized pair matchings keyed by id: start fresh.
        next.pair_memo = Arc::new(wwt_core::PairMemo::for_config(&self.config.mapper));
        next.live = if live.is_empty() && features.is_empty() {
            // An overlay that cancelled itself out (add then remove):
            // drop it so the engine takes the frozen-only paths again.
            None
        } else {
            Some(Arc::new(LiveOverlay {
                live: Arc::new(live),
                features,
            }))
        };
        next
    }

    /// Persists the engine into `dir` (created if needed): the sharded
    /// index layout (versioned `manifest.json` + one `shard-NNNN.idx`
    /// per shard, [`wwt_index::persist::save_sharded`]) and
    /// `tables.jsonl` (the table store). [`Engine::load_from_dir`] reads
    /// it back into an identical-answering engine with the same shard
    /// count.
    ///
    /// An engine carrying uncompacted live mutations refuses to save —
    /// the persisted layout has no delta section, so saving would
    /// silently drop the mutations. Compact first ([`Engine::compacted`]).
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), WwtError> {
        if self.is_live() {
            return Err(WwtError::Invalid(format!(
                "engine has {} uncompacted live mutation(s); fold them first — \
                 call compacted() (over HTTP: POST /admin/compact), or restart \
                 with --journal so the delta replays instead of being saved",
                self.delta_len() + self.tombstone_len()
            )));
        }
        std::fs::create_dir_all(dir)?;
        wwt_index::persist::save_sharded(&self.index, dir)?;
        self.store.save(&dir.join("tables.jsonl"))?;
        Ok(())
    }

    /// Persists like [`Engine::save_to_dir`], but replaces an existing
    /// directory's files through a write-new-then-rename dance:
    /// everything is written into a temporary subdirectory first, then
    /// renamed over the live files one by one — data files first, the
    /// manifest last, so a crash mid-replacement leaves a directory the
    /// manifest's term checksum flags as inconsistent instead of one
    /// that silently misloads. This is the "write-new, rename" half of
    /// compaction's persist-then-truncate-journal contract.
    pub fn save_to_dir_atomic(&self, dir: &Path) -> Result<(), WwtError> {
        let tmp = dir.join(format!(".compact-tmp-{}", std::process::id()));
        self.save_to_dir(&tmp)?;
        let mut names: Vec<String> = (0..self.n_shards())
            .map(wwt_index::persist::shard_file)
            .collect();
        names.push("tables.jsonl".into());
        names.push(wwt_index::persist::MANIFEST_FILE.into());
        for name in &names {
            std::fs::rename(tmp.join(name), dir.join(name))?;
        }
        let _ = std::fs::remove_dir_all(&tmp);
        // Best-effort directory fsync so the renames themselves are
        // durable before the caller truncates its journal.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Loads an engine persisted by [`Engine::save_to_dir`], with the
    /// given online configuration (the persisted files carry no config).
    /// Directories written before the sharded layout existed — a bare
    /// `index.idx` with no manifest — still load, as a single shard.
    pub fn load_from_dir(dir: &Path, config: WwtConfig) -> Result<Self, WwtError> {
        let store = TableStore::load(&dir.join("tables.jsonl"))?;
        let index = if dir.join(wwt_index::persist::MANIFEST_FILE).exists() {
            wwt_index::persist::load_sharded(dir)?
        } else {
            // Pre-manifest layout: one unsharded index file.
            ShardedIndex::single(wwt_index::persist::load(&dir.join("index.idx"))?)
        };
        Self::from_sharded_parts(index, store, config)
    }
}

/// Builds the trace span for one scatter-gather probe: stage duration,
/// one child span per shard (scatter order, matching the
/// `probe*_shards` diagnostics), and the hit/k accounting.
fn probe_span(
    name: &'static str,
    elapsed: Duration,
    shard_times: &[Duration],
    hits: usize,
    k: usize,
) -> SpanRecord {
    let mut span = SpanRecord::new(name, elapsed)
        .with_detail("hits", hits.to_string())
        .with_detail("k", k.to_string());
    for (s, t) in shard_times.iter().enumerate() {
        span = span.with_child(SpanRecord::new(format!("shard{s}"), *t));
    }
    span
}

/// Merges per-shard top-k hit lists under the request deadline: the
/// equivalence-preserving total-order merge of
/// [`ShardedIndex::merge_hits`], with the budget re-checked every
/// [`MERGE_DEADLINE_STRIDE`] candidates so an enormous gathered set
/// cannot stall the request between stage boundaries.
fn merge_shard_hits(
    lists: Vec<Vec<SearchHit>>,
    k: usize,
    deadline: &Deadline,
) -> Result<Vec<SearchHit>, WwtError> {
    // One check guards the whole merge (the sort is its only expensive
    // block); the merge itself is exactly the facade's, so the ranking
    // can never drift from what `ShardedIndex::search` produces.
    deadline.check("retrieval merge")?;
    Ok(ShardedIndex::merge_hits(lists, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::QueryOptions;
    use wwt_core::InferenceAlgorithm;
    use wwt_model::ContextSnippet;

    fn currency_page(i: usize, countries: &[(&str, &str)]) -> String {
        let mut rows = String::new();
        for (c, m) in countries {
            rows.push_str(&format!("<tr><td>{c}</td><td>{m}</td></tr>"));
        }
        format!(
            "<html><head><title>currencies {i}</title></head><body>\
             <p>List of countries and their currency</p>\
             <table><tr><th>Country</th><th>Currency</th></tr>{rows}</table>\
             </body></html>"
        )
    }

    fn junk_page() -> String {
        "<html><body><p>nothing here about forests</p>\
         <table><tr><th>ID</th><th>Area</th></tr>\
         <tr><td>7</td><td>2236</td></tr><tr><td>9</td><td>880</td></tr></table>\
         </body></html>"
            .to_string()
    }

    fn build_engine() -> Engine {
        let docs = [
            currency_page(
                0,
                &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            ),
            currency_page(
                1,
                &[("India", "Rupee"), ("Brazil", "Real"), ("Japan", "Yen")],
            ),
            junk_page(),
        ];
        let mut b = Engine::builder();
        b.add_documents(docs.iter().map(String::as_str));
        b.build()
    }

    #[test]
    fn offline_build_extracts_and_indexes() {
        let engine = build_engine();
        assert_eq!(engine.store().len(), 3);
        assert_eq!(engine.index().n_docs(), 3);
    }

    #[test]
    fn answer_consolidates_currency_tables() {
        let engine = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let out = engine.answer_query(&q);
        assert!(!out.table.is_empty(), "no answer rows");
        // India appears in both tables: must be merged with support 2.
        let india = out
            .table
            .rows
            .iter()
            .find(|r| r.cells[0] == "India")
            .expect("India row");
        assert_eq!(india.support, 2);
        assert_eq!(india.cells[1], "Rupee");
        // Four distinct countries in total.
        assert_eq!(out.table.len(), 4);
        // Junk table must not contribute.
        assert!(out
            .table
            .rows
            .iter()
            .all(|r| r.cells[0] != "7" && r.cells[1] != "2236"));
    }

    #[test]
    fn timings_and_diagnostics_populated() {
        let engine = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let out = engine.answer_query(&q);
        assert!(out.diagnostics.timing.column_map > std::time::Duration::ZERO);
        assert!(out.diagnostics.timing.total() >= out.diagnostics.timing.column_map);
        assert_eq!(out.diagnostics.n_candidates, out.candidates.len());
        assert!(out.diagnostics.n_relevant >= 2);
        assert_eq!(out.diagnostics.rows_before_limit, out.table.len());
    }

    #[test]
    fn explain_attaches_a_trace_and_plain_requests_stay_trace_free() {
        let engine = build_engine();
        let request = QueryRequest::parse("country | currency").unwrap();

        let plain = engine.answer(&request).unwrap();
        assert!(plain.diagnostics.trace.is_none());

        let traced = engine.answer(&request.clone().explain(true)).unwrap();
        let trace = traced.diagnostics.trace.expect("explain must trace");
        // Everything except the trace is identical to the plain answer.
        assert_eq!(plain.table, traced.table);
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"probe1"), "spans: {names:?}");
        assert!(names.contains(&"read1"), "spans: {names:?}");
        assert!(
            names.iter().any(|n| n.starts_with("column_map")),
            "spans: {names:?}"
        );
        assert!(names.contains(&"consolidate"), "spans: {names:?}");
        // Per-shard hit counts and candidate accounting rode along.
        assert!(trace.notes.iter().any(|(k, _)| k == "probe1_shard_hits"));
        assert!(trace.notes.iter().any(|(k, _)| k == "candidates"));
        // A service-supplied trace carries its request id into the report.
        let external = wwt_obs::Trace::enabled("req-42");
        let out = engine.answer_traced(&request, &external).unwrap();
        let report = out.diagnostics.trace.expect("enabled trace is attached");
        assert_eq!(report.request_id, "req-42");
        assert!(!report.spans.is_empty());
    }

    #[test]
    fn fail_soft_without_faults_matches_the_healthy_answer() {
        let engine = build_engine();
        let req = QueryRequest::parse("country | currency").unwrap();
        let healthy = engine.answer(&req).unwrap();
        let soft = engine.answer(&req.clone().fail_soft(true)).unwrap();
        // No fault, no deadline: fail-soft must be a pure pass-through.
        assert_eq!(healthy.table, soft.table);
        assert_eq!(healthy.candidates, soft.candidates);
        assert!(!soft.diagnostics.degraded);
        assert!(soft.diagnostics.degraded_reasons.is_empty());
        assert!(!healthy.diagnostics.degraded);
    }

    #[test]
    fn fail_soft_expired_admission_still_fails_hard() {
        // A budget spent before any work ran has nothing to salvage:
        // fail-soft keeps the admission-time 504 contract.
        let engine = build_engine();
        let req = QueryRequest::parse("country | currency")
            .unwrap()
            .fail_soft(true)
            .deadline_ms(0);
        assert!(matches!(
            engine.answer(&req),
            Err(WwtError::DeadlineExceeded(_))
        ));
    }

    #[test]
    fn retrieval_finds_stage1_candidates() {
        let engine = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let r = engine.retrieve(&q);
        assert!(r.stage1.len() >= 2, "stage1 {:?}", r.stage1);
        assert_eq!(r.len(), r.stage1.len() + r.stage2.len());
    }

    #[test]
    fn unanswerable_query_yields_empty_table() {
        let engine = build_engine();
        let q = Query::parse("zebra migrations | season").unwrap();
        let out = engine.answer_query(&q);
        assert!(out.table.is_empty());
    }

    #[test]
    fn empty_engine_is_safe() {
        let engine = Engine::from_tables(vec![], WwtConfig::default());
        let q = Query::parse("anything | at all").unwrap();
        let out = engine.answer_query(&q);
        assert!(out.table.is_empty());
        assert!(out.candidates.is_empty());
    }

    #[test]
    fn request_overrides_change_behavior() {
        let engine = build_engine();
        let req = QueryRequest::parse("country | currency").unwrap();
        let full = engine.answer(&req).unwrap();
        assert_eq!(full.table.len(), 4);

        // Row limit truncates, keeping rank order, and diagnostics keep
        // the pre-limit count.
        let limited = engine.answer(&req.clone().max_rows(2)).unwrap();
        assert_eq!(limited.table.len(), 2);
        assert_eq!(limited.diagnostics.rows_before_limit, 4);
        assert_eq!(limited.table.rows[0].cells, full.table.rows[0].cells);

        // Algorithm override is honored.
        let indep = engine
            .answer(&req.clone().algorithm(InferenceAlgorithm::Independent))
            .unwrap();
        assert!(!indep.table.is_empty());

        // Invalid overrides surface as typed errors.
        assert!(matches!(
            engine.answer(&req.clone().probe1_k(0)),
            Err(WwtError::Invalid(_))
        ));
        assert!(matches!(
            engine.answer(&req.clone().high_relevance(2.0)),
            Err(WwtError::Invalid(_))
        ));
    }

    #[test]
    fn engine_answers_identically_across_threads() {
        let engine = Arc::new(build_engine());
        let q = Query::parse("country | currency").unwrap();
        let serial = engine.answer_query(&q);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let engine = Arc::clone(&engine);
                let q = q.clone();
                let serial_table = serial.table.clone();
                scope.spawn(move || {
                    for _ in 0..3 {
                        let out = engine.answer_query(&q);
                        assert_eq!(out.table, serial_table);
                    }
                });
            }
        });
    }

    #[test]
    fn builder_counts_and_config_roundtrip() {
        let mut b = EngineBuilder::with_config(WwtConfig {
            probe1_k: 17,
            ..WwtConfig::default()
        });
        assert_eq!(b.n_tables(), 0);
        b.add_html(&currency_page(0, &[("India", "Rupee")]));
        assert_eq!(b.n_tables(), 1);
        let engine = b.build();
        assert_eq!(engine.config().probe1_k, 17);
        assert_eq!(engine.store().len(), 1);
    }

    #[test]
    fn zero_deadline_trips_before_any_work() {
        let engine = build_engine();
        let req = QueryRequest::parse("country | currency")
            .unwrap()
            .deadline_ms(0);
        match engine.answer(&req) {
            Err(WwtError::DeadlineExceeded(stage)) => assert_eq!(stage, "retrieval"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_deadline_answers_identically() {
        let engine = build_engine();
        let plain = QueryRequest::parse("country | currency").unwrap();
        let reference = engine.answer(&plain).unwrap();
        let budgeted = engine.answer(&plain.clone().deadline_ms(60_000)).unwrap();
        assert_eq!(budgeted.table, reference.table);
        assert_eq!(budgeted.candidates, reference.candidates);
        assert_eq!(
            budgeted.retrieval.stage1, reference.retrieval.stage1,
            "a deadline that never trips must not change retrieval"
        );
    }

    #[test]
    fn dir_persistence_roundtrip_answers_identically() {
        let engine = build_engine();
        let dir = std::env::temp_dir().join(format!("wwt_engine_dir_{}", std::process::id()));
        engine.save_to_dir(&dir).unwrap();
        let restored = Engine::load_from_dir(&dir, engine.config().clone()).unwrap();
        assert_eq!(restored.store().len(), engine.store().len());
        let q = Query::parse("country | currency").unwrap();
        let a = engine.answer_query(&q);
        let b = restored.answer_query(&q);
        assert_eq!(a.table, b.table);
        assert_eq!(a.candidates, b.candidates);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn from_parts_rejects_index_store_mismatch() {
        let engine = build_engine();
        let dir = std::env::temp_dir().join(format!("wwt_engine_mismatch_{}", std::process::id()));
        engine.save_to_dir(&dir).unwrap();
        let index = wwt_index::persist::load_sharded(&dir).unwrap();
        // An empty store cannot back a populated index.
        let r = Engine::from_sharded_parts(index, TableStore::new(), WwtConfig::default());
        assert!(matches!(r, Err(WwtError::Corrupt(_))), "{r:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_single_index_layout_still_loads() {
        // A pre-manifest directory: bare `index.idx` + `tables.jsonl`.
        let engine = {
            let docs = [currency_page(0, &[("India", "Rupee"), ("Japan", "Yen")])];
            let mut b = Engine::builder();
            b.shards(1);
            b.add_documents(docs.iter().map(String::as_str));
            b.build()
        };
        let dir = std::env::temp_dir().join(format!("wwt_engine_legacy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        wwt_index::persist::save(engine.index().shard(0), &dir.join("index.idx")).unwrap();
        engine.store().save(&dir.join("tables.jsonl")).unwrap();
        let restored = Engine::load_from_dir(&dir, engine.config().clone()).unwrap();
        assert_eq!(restored.n_shards(), 1);
        let q = Query::parse("country | currency").unwrap();
        assert_eq!(
            restored.answer_query(&q).table,
            engine.answer_query(&q).table
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_persistence_roundtrip_keeps_shard_count_and_answers() {
        let docs: Vec<String> = (0..6)
            .map(|i| currency_page(i, &[("India", "Rupee"), ("Japan", "Yen")]))
            .collect();
        let mut b = Engine::builder();
        b.shards(4);
        b.add_documents(docs.iter().map(String::as_str));
        let engine = b.build();
        assert_eq!(engine.n_shards(), 4);
        let dir = std::env::temp_dir().join(format!("wwt_engine_shards_{}", std::process::id()));
        engine.save_to_dir(&dir).unwrap();
        let restored = Engine::load_from_dir(&dir, engine.config().clone()).unwrap();
        assert_eq!(restored.n_shards(), 4);
        let q = Query::parse("country | currency").unwrap();
        let a = engine.answer_query(&q);
        let b = restored.answer_query(&q);
        assert_eq!(a.table, b.table);
        assert_eq!(a.candidates, b.candidates);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_engine_answers_identically_to_single_shard() {
        let docs = [
            currency_page(
                0,
                &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            ),
            currency_page(
                1,
                &[("India", "Rupee"), ("Brazil", "Real"), ("Japan", "Yen")],
            ),
            junk_page(),
        ];
        let build = |n: usize| {
            let mut b = Engine::builder();
            b.shards(n);
            b.add_documents(docs.iter().map(String::as_str));
            b.build()
        };
        let reference = build(1);
        let q = Query::parse("country | currency").unwrap();
        let expected = reference.answer_query(&q);
        for n in [2usize, 3, 8] {
            let sharded = build(n);
            assert_eq!(sharded.n_shards(), n);
            let out = sharded.answer_query(&q);
            assert_eq!(out.table, expected.table, "answer drift at {n} shards");
            assert_eq!(
                out.candidates, expected.candidates,
                "candidate drift at {n} shards"
            );
            assert_eq!(out.retrieval.stage1, expected.retrieval.stage1);
            assert_eq!(out.retrieval.stage2, expected.retrieval.stage2);
        }
    }

    #[test]
    fn merge_loop_respects_an_expired_deadline() {
        let hits: Vec<SearchHit> = (0..10)
            .map(|i| SearchHit {
                table: TableId(i),
                score: 1.0 / (i + 1) as f64,
            })
            .collect();
        // A generous deadline merges normally...
        let merged =
            merge_shard_hits(vec![hits.clone(), hits.clone()], 5, &Deadline::none()).unwrap();
        assert_eq!(merged.len(), 5);
        // ...an expired one is refused inside the merge itself, naming
        // the in-stage checkpoint.
        let expired = Deadline::starting_now(Some(0));
        match merge_shard_hits(vec![hits.clone(), hits], 5, &expired) {
            Err(WwtError::DeadlineExceeded(stage)) => assert_eq!(stage, "retrieval merge"),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn precomputed_views_answer_identically_to_per_query_views() {
        let docs = [
            currency_page(
                0,
                &[("India", "Rupee"), ("Japan", "Yen"), ("France", "Euro")],
            ),
            currency_page(1, &[("India", "Rupee"), ("Brazil", "Real")]),
            junk_page(),
        ];
        let build = |precompute: bool| {
            let mut b = EngineBuilder::with_config(WwtConfig {
                precompute_views: precompute,
                ..WwtConfig::default()
            });
            b.add_documents(docs.iter().map(String::as_str));
            b.build()
        };
        let fast = build(true);
        let oracle = build(false);
        for query in ["country | currency", "forest | area", "zebra | stripes"] {
            let q = Query::parse(query).unwrap();
            let a = fast.answer_query(&q);
            let b = oracle.answer_query(&q);
            assert_eq!(a.table, b.table, "{query}");
            assert_eq!(a.candidates, b.candidates, "{query}");
            for (x, y) in a
                .mapping
                .table_relevance
                .iter()
                .zip(&b.mapping.table_relevance)
            {
                assert_eq!(x.to_bits(), y.to_bits(), "relevance drift for {query}");
            }
        }
    }

    #[test]
    fn per_shard_probe_timings_reported() {
        let engine = build_engine();
        let q = Query::parse("country | currency").unwrap();
        let out = engine.answer_query(&q);
        assert_eq!(
            out.diagnostics.timing.probe1_shards.len(),
            engine.n_shards(),
            "one probe-1 entry per shard"
        );
        if out.diagnostics.probe2_used {
            assert_eq!(
                out.diagnostics.timing.probe2_shards.len(),
                engine.n_shards()
            );
        } else {
            assert!(out.diagnostics.timing.probe2_shards.is_empty());
        }
    }

    #[test]
    fn live_ingest_makes_a_table_queryable_without_rebuild() {
        let engine = build_engine();
        let volcano = WebTable::new(
            TableId(900),
            "u",
            Some("Volcano heights".into()),
            vec![vec!["Volcano".into(), "Elevation".into()]],
            vec![
                vec!["Etna".into(), "3329".into()],
                vec!["Fuji".into(), "3776".into()],
            ],
            vec![],
        )
        .unwrap();
        let live = engine.with_table_added(volcano);
        assert!(live.is_live());
        assert_eq!(live.delta_len(), 1);
        assert_eq!(live.n_tables(), engine.n_tables() + 1);
        let q = Query::parse("volcano | elevation").unwrap();
        let out = live.answer_query(&q);
        assert!(
            out.table.rows.iter().any(|r| r.cells[0] == "Etna"),
            "ingested table must answer: {:?}",
            out.table
        );
        // The original engine is untouched (immutable snapshots).
        assert!(engine.answer_query(&q).table.is_empty());
        // Existing queries still answer over the frozen corpus.
        let cq = Query::parse("country | currency").unwrap();
        assert_eq!(live.answer_query(&cq).table, engine.answer_query(&cq).table);
    }

    #[test]
    fn live_removal_tombstones_and_double_delete_is_none() {
        let engine = build_engine();
        let victim = engine
            .retrieve(&Query::parse("country | currency").unwrap())
            .stage1[0];
        let live = engine.with_table_removed(victim).expect("known table");
        assert_eq!(live.tombstone_len(), 1);
        let q = Query::parse("country | currency").unwrap();
        let out = live.answer_query(&q);
        assert!(out.candidates.iter().all(|&id| id != victim));
        // Deleting again, or deleting an unknown id, reports not-found.
        assert!(live.with_table_removed(victim).is_none());
        assert!(engine.with_table_removed(TableId(12345)).is_none());
    }

    #[test]
    fn compaction_is_byte_identical_to_a_fresh_build() {
        let engine = build_engine();
        let extra = WebTable::new(
            TableId(50),
            "u",
            None,
            vec![vec!["Country".into(), "Capital".into()]],
            vec![vec!["India".into(), "Delhi".into()]],
            vec![ContextSnippet::new("capitals of countries", 0.7)],
        )
        .unwrap();
        let victim = engine.store().iter().next().unwrap().id;
        let live = engine
            .with_table_added(extra.clone())
            .with_table_removed(victim)
            .unwrap();
        let compacted = live.compacted();
        assert!(!compacted.is_live());

        // The oracle: build from scratch over the same logical tables.
        let mut tables: Vec<WebTable> = engine
            .store()
            .iter()
            .filter(|t| t.id != victim)
            .cloned()
            .collect();
        tables.push(extra);
        tables.sort_by_key(|t| t.id);
        let mut b = EngineBuilder::with_config(engine.config().clone());
        b.shards(engine.n_shards());
        b.add_tables(tables);
        let oracle = b.build();

        for probe in ["country | currency", "country | capital"] {
            let q = Query::parse(probe).unwrap();
            let a = compacted.answer_query(&q);
            let o = oracle.answer_query(&q);
            assert_eq!(a.table, o.table, "{probe}");
            assert_eq!(a.candidates, o.candidates, "{probe}");
            for (x, y) in a
                .mapping
                .table_relevance
                .iter()
                .zip(&o.mapping.table_relevance)
            {
                assert_eq!(x.to_bits(), y.to_bits(), "relevance drift for {probe}");
            }
        }
    }

    #[test]
    fn add_then_remove_cancels_back_to_frozen() {
        let engine = build_engine();
        let t = WebTable::new(
            TableId(700),
            "u",
            None,
            vec![vec!["A".into(), "B".into()]],
            vec![vec!["x".into(), "y".into()]],
            vec![],
        )
        .unwrap();
        let live = engine.with_table_added(t);
        assert!(live.is_live());
        let back = live.with_table_removed(TableId(700)).unwrap();
        assert!(!back.is_live(), "cancelled overlay must be dropped");
    }

    #[test]
    fn live_engine_refuses_to_save_until_compacted() {
        let engine = build_engine();
        let t = WebTable::new(
            TableId(800),
            "u",
            None,
            vec![vec!["A".into(), "B".into()]],
            vec![vec!["x".into(), "y".into()]],
            vec![],
        )
        .unwrap();
        let live = engine.with_table_added(t);
        let dir = std::env::temp_dir().join(format!("wwt_live_save_{}", std::process::id()));
        assert!(matches!(live.save_to_dir(&dir), Err(WwtError::Invalid(_))));
        live.compacted().save_to_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reingest_overrides_the_frozen_copy_end_to_end() {
        let engine = build_engine();
        let victim = engine
            .retrieve(&Query::parse("country | currency").unwrap())
            .stage1[0];
        let replacement = WebTable::new(
            victim,
            "u",
            Some("Volcano heights".into()),
            vec![vec!["Volcano".into(), "Elevation".into()]],
            vec![vec!["Etna".into(), "3329".into()]],
            vec![],
        )
        .unwrap();
        let live = engine.with_table_added(replacement);
        assert_eq!(live.n_tables(), engine.n_tables());
        let vq = Query::parse("volcano | elevation").unwrap();
        assert!(live.answer_query(&vq).candidates.contains(&victim));
        let cq = Query::parse("country | currency").unwrap();
        let out = live.answer_query(&cq);
        assert!(
            out.candidates.iter().all(|&id| id != victim),
            "stale frozen copy must not answer: {:?}",
            out.candidates
        );
    }

    #[test]
    fn bind_threads_produce_identical_engines() {
        let docs: Vec<String> = (0..10)
            .map(|i| currency_page(i, &[("India", "Rupee"), ("Japan", "Yen")]))
            .collect();
        let build = |threads: usize| {
            let mut b = Engine::builder();
            b.shards(4);
            b.bind_threads(threads);
            b.add_documents(docs.iter().map(String::as_str));
            b.build()
        };
        let serial = build(1);
        let q = Query::parse("country | currency").unwrap();
        let expected = serial.answer_query(&q);
        for threads in [2usize, 8] {
            let parallel = build(threads);
            let out = parallel.answer_query(&q);
            assert_eq!(out.table, expected.table, "threads={threads}");
            assert_eq!(out.candidates, expected.candidates);
            for (x, y) in out
                .mapping
                .table_relevance
                .iter()
                .zip(&expected.mapping.table_relevance)
            {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn default_options_resolve_to_engine_config() {
        let engine = build_engine();
        let cfg = QueryOptions::default().resolve(engine.config()).unwrap();
        assert_eq!(cfg.probe1_k, engine.config().probe1_k);
        assert_eq!(cfg.algorithm, engine.config().algorithm);
    }
}
