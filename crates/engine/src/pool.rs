//! Indexed fan-out shared by the probe scatter, the evaluation harness
//! and the service layer's `answer_batch`.
//!
//! Since the live-ingest work this is a re-export of [`wwt_pool`]'s
//! persistent-pool `fan_out`: same signature, same index-ordered
//! results, same serial degeneration for `threads <= 1` — but the
//! workers live for the process instead of being spawned per call, so
//! `thread_local!` scratch in pooled code (the index's epoch-tagged
//! score accumulator) is actually reused across probes.

pub use wwt_pool::{fan_out, try_fan_out};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(fan_out(57, threads, |i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 1), vec![1]);
    }
}
