//! Minimal scoped fan-out helper shared by the evaluation harness and
//! the service layer's `answer_batch`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` on up to `threads` scoped workers (work-stealing over a
/// shared cursor) and returns the results in index order. With one
/// worker (or `n <= 1`) it degenerates to a plain serial map.
pub fn fan_out<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.max(1).min(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                *slots[i].lock().unwrap() = Some(f(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("fan_out slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_thread_counts() {
        let expected: Vec<usize> = (0..57).map(|i| i * i).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(fan_out(57, threads, |i| i * i), expected);
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert_eq!(fan_out(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(fan_out(1, 4, |i| i + 1), vec![1]);
    }
}
