//! # wwt-engine
//!
//! The end-to-end WWT system of paper Figure 2, split along the
//! offline/online service boundary:
//!
//! * **offline** ([`EngineBuilder`]): crawl documents → table extraction
//!   (`wwt-html`) → table store + fielded index (`wwt-index`);
//! * **online** ([`Engine`]): an immutable, `Send + Sync` snapshot whose
//!   [`Engine::answer`] runs the two-stage index probe (§2.2.1), column
//!   mapping (`wwt-core`), consolidation and ranking (`wwt-consolidate`)
//!   for a typed [`QueryRequest`], returning a [`QueryResponse`] with
//!   per-stage timing (the Figure 7 breakdown) in [`QueryDiagnostics`];
//! * **baselines** ([`baselines`]): the Basic / NbrText / PMI2 methods of
//!   §5 that WWT is compared against;
//! * **evaluation** ([`evaluate`]): binding generated corpora to ground
//!   truth and computing the F1 error per method (the machinery behind
//!   every table and figure reproduction in `wwt-bench`).
//!
//! Build with [`EngineBuilder`], serve through `wwt-service`'s
//! `TableSearchService` (or over HTTP via `wwt-server`). The pre-0.2
//! `Wwt` facade and its `QueryOutcome` shape are gone: build via
//! [`EngineBuilder`] and answer via [`Engine::answer`] /
//! [`Engine::answer_query`] instead.

pub mod baselines;
pub mod deadline;
pub mod engine;
pub mod evaluate;
pub mod pipeline;
pub mod pool;
pub mod request;
pub mod retrieval;
pub mod soft;
pub mod timing;

pub use baselines::{baseline_map, BaselineConfig, BaselineMethod};
pub use deadline::Deadline;
pub use engine::{default_shards, Engine, EngineBuilder, EngineMutation};
pub use evaluate::{
    bind_corpus, bind_corpus_sharded, evaluate_query, evaluate_query_with, evaluate_workload,
    evaluate_workload_with, BoundCorpus, Method, QueryEvaluation,
};
pub use pipeline::WwtConfig;
pub use pool::fan_out;
pub use request::{QueryDiagnostics, QueryOptions, QueryRequest, QueryResponse};
pub use retrieval::Retrieval;
pub use soft::FailSoft;
pub use timing::StageTimings;
// Re-exported so `answer_traced` callers need no direct wwt-obs dep.
pub use wwt_obs::{Trace, TraceReport};
