//! # wwt-engine
//!
//! The end-to-end WWT system of paper Figure 2:
//!
//! * **offline** ([`Wwt::build`]): crawl documents → table extraction
//!   (`wwt-html`) → table store + fielded index (`wwt-index`);
//! * **online** ([`Wwt::answer`]): two-stage index probe (§2.2.1), column
//!   mapping (`wwt-core`), consolidation and ranking (`wwt-consolidate`),
//!   with per-stage wall-clock timing (the Figure 7 breakdown);
//! * **baselines** ([`baselines`]): the Basic / NbrText / PMI2 methods of
//!   §5 that WWT is compared against;
//! * **evaluation** ([`evaluate`]): binding generated corpora to ground
//!   truth and computing the F1 error per method (the machinery behind
//!   every table and figure reproduction in `wwt-bench`).

pub mod baselines;
pub mod evaluate;
pub mod pipeline;
pub mod timing;

pub use baselines::{baseline_map, BaselineConfig, BaselineMethod};
pub use evaluate::{bind_corpus, evaluate_query, evaluate_query_with, evaluate_workload, evaluate_workload_with, BoundCorpus, Method, QueryEvaluation};
pub use pipeline::{QueryOutcome, Wwt, WwtConfig};
pub use timing::StageTimings;
