//! The baseline column-mapping methods of paper §5:
//!
//! * **Basic** — threshold the TF-IDF similarity of the query keywords to
//!   a table's context+header text for relevance, then greedily match each
//!   query column to its best-scoring header (§3's opening description);
//! * **NbrText** — Basic with header text imported from similar columns:
//!   `sim(Qℓ,tc) = max(TI(Qℓ,tc), max_{t'c'} sim(tc,t'c')·TI(Qℓ,t'c'))`;
//! * **PMI2** — Basic augmented with the PMI² corpus co-occurrence score.

use wwt_core::colsim::column_similarity;
use wwt_core::features::{pmi2, QueryView};
use wwt_core::TableView;
use wwt_index::DocSets;
use wwt_model::{Label, Labeling, Query, WebTable};
use wwt_text::{tokenize, CorpusStats, TfIdfVector};

/// Baseline selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineMethod {
    /// Thresholded whole-string similarity (the paper's strawman).
    Basic,
    /// Basic + neighbor header text.
    NbrText,
    /// Basic + PMI² (requires an index).
    Pmi2,
}

/// Baseline thresholds and weights.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Minimum whole-table relevance (cosine of query vs header+context).
    pub rel_threshold: f64,
    /// Minimum per-column similarity for a query-column assignment.
    pub col_threshold: f64,
    /// Weight of the PMI² term (PMI2 method only).
    pub pmi_weight: f64,
    /// Cell-overlap/header mix for NbrText's column similarity.
    pub content_sim_mix: f64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            rel_threshold: 0.5,
            col_threshold: 0.3,
            pmi_weight: 0.5,
            content_sim_mix: 0.7,
        }
    }
}

/// Runs a baseline method over candidate tables, returning one labeling
/// per table.
pub fn baseline_map(
    method: BaselineMethod,
    query: &Query,
    tables: &[&WebTable],
    stats: &CorpusStats,
    index: Option<&dyn DocSets>,
    cfg: &BaselineConfig,
) -> Vec<Labeling> {
    let qv = QueryView::new(query, stats);
    let q = query.q();
    let views: Vec<TableView<'_>> = tables
        .iter()
        .map(|t| TableView::new(t, stats, 0.3))
        .collect();
    let whole_query = TfIdfVector::from_tokens(&tokenize(&query.all_keywords()), stats);

    // Per-column query-to-header similarity for every (table, column).
    let mut col_sim: Vec<Vec<Vec<f64>>> = views
        .iter()
        .map(|v| {
            (0..v.n_cols())
                .map(|c| {
                    (0..q)
                        .map(|l| qv.columns[l].vec.cosine(&v.column_header_vecs[c]))
                        .collect()
                })
                .collect()
        })
        .collect();

    match method {
        BaselineMethod::Basic => {}
        BaselineMethod::NbrText => {
            // Import neighbor header similarity scaled by column sim. The
            // naive all-pairs version (no max-matching) — this is exactly
            // the ad hoc method the paper shows to be fragile.
            let snapshot = col_sim.clone();
            for (ti, v) in views.iter().enumerate() {
                for c in 0..v.n_cols() {
                    for (tj, v2) in views.iter().enumerate() {
                        if ti == tj {
                            continue;
                        }
                        for c2 in 0..v2.n_cols() {
                            let s = column_similarity(v, c, v2, c2, cfg.content_sim_mix);
                            if s <= 0.0 {
                                continue;
                            }
                            for l in 0..q {
                                let imported = s * snapshot[tj][c2][l];
                                if imported > col_sim[ti][c][l] {
                                    col_sim[ti][c][l] = imported;
                                }
                            }
                        }
                    }
                }
            }
        }
        BaselineMethod::Pmi2 => {
            if let Some(idx) = index {
                for (ti, v) in views.iter().enumerate() {
                    for c in 0..v.n_cols() {
                        for l in 0..q {
                            col_sim[ti][c][l] += cfg.pmi_weight * pmi2(&qv.columns[l], v, c, idx);
                        }
                    }
                }
            }
        }
    }

    views
        .iter()
        .enumerate()
        .map(|(ti, v)| {
            let t = tables[ti];
            // Whole-table relevance: cosine of the full query against
            // header and context text.
            let header_vec = TfIdfVector::from_tokens(&tokenize(&t.all_header_text()), stats);
            let ctx_vec = TfIdfVector::from_tokens(&tokenize(&t.all_context_text()), stats);
            let rel = whole_query.cosine(&header_vec) + whole_query.cosine(&ctx_vec);
            if rel < cfg.rel_threshold {
                return Labeling::all_nr(t.id, v.n_cols());
            }
            // Greedy best-first assignment with mutex.
            let mut labels = vec![Label::Na; v.n_cols()];
            let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
            for c in 0..v.n_cols() {
                for l in 0..q {
                    let s = col_sim[ti][c][l];
                    if s >= cfg.col_threshold {
                        pairs.push((s, c, l));
                    }
                }
            }
            pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut used_col = vec![false; v.n_cols()];
            let mut used_label = vec![false; q];
            for (_, c, l) in pairs {
                if !used_col[c] && !used_label[l] {
                    labels[c] = Label::Col(l);
                    used_col[c] = true;
                    used_label[l] = true;
                }
            }
            if !labels.iter().any(|l| l.is_query_col()) {
                return Labeling::all_nr(t.id, v.n_cols());
            }
            Labeling::new(t.id, labels)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::{ContextSnippet, TableId};

    fn currency_table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![vec!["Country".into(), "Currency".into()]],
            vec![
                vec!["India".into(), "Rupee".into()],
                vec!["Japan".into(), "Yen".into()],
            ],
            vec![ContextSnippet::new("currencies by country", 0.9)],
        )
        .unwrap()
    }

    fn unrelated_table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![vec!["Reserve".into(), "Area".into()]],
            vec![vec!["Hills".into(), "2236".into()]],
            vec![ContextSnippet::new("forestry act reserves", 0.9)],
        )
        .unwrap()
    }

    fn headerless_currency(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![],
            vec![
                vec!["India".into(), "Rupee".into()],
                vec!["Japan".into(), "Yen".into()],
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn basic_maps_clean_table_and_rejects_junk() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let bad = unrelated_table(1);
        let stats = CorpusStats::new();
        let out = baseline_map(
            BaselineMethod::Basic,
            &q,
            &[&good, &bad],
            &stats,
            None,
            &BaselineConfig::default(),
        );
        assert_eq!(out[0].labels, vec![Label::Col(0), Label::Col(1)]);
        assert_eq!(out[1].labels, vec![Label::Nr, Label::Nr]);
    }

    #[test]
    fn basic_cannot_map_headerless_tables() {
        let q = Query::parse("country | currency").unwrap();
        let naked = headerless_currency(0);
        let stats = CorpusStats::new();
        let out = baseline_map(
            BaselineMethod::Basic,
            &q,
            &[&naked],
            &stats,
            None,
            &BaselineConfig::default(),
        );
        assert!(!out[0].is_relevant());
    }

    #[test]
    fn nbrtext_imports_neighbor_headers() {
        let q = Query::parse("country | currency").unwrap();
        let good = currency_table(0);
        let naked = headerless_currency(1);
        let stats = CorpusStats::new();
        let out = baseline_map(
            BaselineMethod::NbrText,
            &q,
            &[&good, &naked],
            &stats,
            None,
            &BaselineConfig {
                rel_threshold: 0.0, // headerless tables have no text to match
                ..BaselineConfig::default()
            },
        );
        assert!(
            out[1].is_relevant(),
            "NbrText should rescue the headerless table: {:?}",
            out[1]
        );
    }

    #[test]
    fn greedy_mutex_no_double_assignment() {
        let q = Query::parse("name | name again").unwrap();
        let t = WebTable::new(
            TableId(0),
            "u",
            None,
            vec![vec!["Name".into(), "Name".into()]],
            vec![vec!["a".into(), "b".into()]],
            vec![ContextSnippet::new("name name again", 0.9)],
        )
        .unwrap();
        let stats = CorpusStats::new();
        let out = baseline_map(
            BaselineMethod::Basic,
            &q,
            &[&t],
            &stats,
            None,
            &BaselineConfig::default(),
        );
        let cols: Vec<_> = out[0].labels.iter().filter(|l| l.is_query_col()).collect();
        let mut dedup = cols.clone();
        dedup.dedup();
        assert_eq!(cols.len(), dedup.len(), "{:?}", out[0].labels);
    }

    #[test]
    fn empty_inputs() {
        let q = Query::parse("a | b").unwrap();
        let stats = CorpusStats::new();
        let out = baseline_map(
            BaselineMethod::Basic,
            &q,
            &[],
            &stats,
            None,
            &BaselineConfig::default(),
        );
        assert!(out.is_empty());
    }
}
