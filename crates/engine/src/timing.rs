//! Per-stage timing of the online pipeline (paper Figure 7 splits query
//! time into: 1st index probe, 1st table read, 2nd index probe, 2nd table
//! read, column mapping, consolidation).

use std::time::Duration;

/// Wall-clock time spent in each online stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// First index probe.
    pub index1: Duration,
    /// Reading stage-1 candidate tables from the store.
    pub read1: Duration,
    /// Second index probe (zero when not used).
    pub index2: Duration,
    /// Reading stage-2 candidate tables.
    pub read2: Duration,
    /// Column mapping (including the top-2 pre-mapping for the probe).
    pub column_map: Duration,
    /// Consolidation + ranking.
    pub consolidate: Duration,
    /// First probe, per index shard, in scatter order — the straggler
    /// view of the scatter-gather (one entry per shard; a single-shard
    /// engine reports one entry).
    pub probe1_shards: Vec<Duration>,
    /// Second probe, per index shard (empty when the probe did not fire).
    pub probe2_shards: Vec<Duration>,
}

impl StageTimings {
    /// Total time across stages.
    pub fn total(&self) -> Duration {
        self.index1 + self.read1 + self.index2 + self.read2 + self.column_map + self.consolidate
    }

    /// The stage durations in Figure 7's stacking order, with labels.
    pub fn stacked(&self) -> [(&'static str, Duration); 6] {
        [
            ("1st Index", self.index1),
            ("1st Table Read", self.read1),
            ("2nd Index", self.index2),
            ("2nd Table Read", self.read2),
            ("Column Map", self.column_map),
            ("Consolidate", self.consolidate),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let t = StageTimings {
            index1: Duration::from_millis(5),
            read1: Duration::from_millis(10),
            index2: Duration::from_millis(3),
            read2: Duration::from_millis(7),
            column_map: Duration::from_millis(20),
            consolidate: Duration::from_millis(5),
            ..Default::default()
        };
        assert_eq!(t.total(), Duration::from_millis(50));
        let stacked = t.stacked();
        assert_eq!(stacked.len(), 6);
        assert_eq!(stacked[4].0, "Column Map");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(StageTimings::default().total(), Duration::ZERO);
    }
}
