//! Evaluation machinery: binding a generated corpus to ground truth and
//! scoring every method with the F1 error of §5.

use crate::baselines::{baseline_map, BaselineConfig, BaselineMethod};
use crate::engine::Engine;
use crate::pipeline::WwtConfig;
use wwt_core::{f1_error, ColumnMapper, InferenceAlgorithm, SimilarityMode};
use wwt_corpus::{GeneratedCorpus, QuerySpec};
use wwt_html::extract_tables;
use wwt_model::{Label, Labeling, TableId, WebTable};

/// A corpus extracted, indexed and bound to ground truth.
pub struct BoundCorpus {
    /// The assembled immutable engine (index + store), shareable across
    /// evaluation threads.
    pub engine: Engine,
    /// For each table id: `(home query index, reference labels)`.
    /// Tables without an entry (distractors) are all-`nr` for every query.
    truth: std::collections::HashMap<TableId, (usize, Vec<Label>)>,
    /// Documents whose candidate table failed extraction (diagnostics).
    pub extraction_failures: usize,
}

impl BoundCorpus {
    /// Reference labels of `table` for workload query `qidx`: the stored
    /// labels when the table's home query matches, all-`nr` otherwise
    /// (domains are private — see wwt-corpus docs).
    pub fn truth_for(&self, qidx: usize, table: TableId, n_cols: usize) -> Vec<Label> {
        match self.truth.get(&table) {
            Some((home, labels)) if *home == qidx => labels.clone(),
            _ => vec![Label::Nr; n_cols],
        }
    }

    /// Number of ground-truth-labeled tables.
    pub fn n_labeled(&self) -> usize {
        self.truth.len()
    }
}

/// Extracts every document of `corpus`, builds the engine, and binds each
/// candidate table to its reference labeling.
pub fn bind_corpus(corpus: &GeneratedCorpus, config: WwtConfig) -> BoundCorpus {
    bind_corpus_sharded(corpus, config, None)
}

/// [`bind_corpus`] with an explicit index shard count (`None` = the
/// builder default). Sharding never changes evaluation results — it only
/// changes how retrieval parallelizes.
pub fn bind_corpus_sharded(
    corpus: &GeneratedCorpus,
    config: WwtConfig,
    shards: Option<usize>,
) -> BoundCorpus {
    let mut tables: Vec<WebTable> = Vec::new();
    let mut truth = std::collections::HashMap::new();
    let mut failures = 0usize;
    let mut next_id = 0u32;
    for doc in &corpus.documents {
        let extracted = extract_tables(&doc.html, &doc.url, next_id);
        match (extracted.len(), &doc.truth, doc.home_query) {
            (1, Some(labels), Some(home)) => {
                let t = extracted.into_iter().next().unwrap();
                if t.n_cols() == labels.len() {
                    truth.insert(t.id, (home, labels.clone()));
                    next_id += 1;
                    tables.push(t);
                } else {
                    failures += 1;
                }
            }
            (1, _, _) => {
                let t = extracted.into_iter().next().unwrap();
                next_id += 1;
                tables.push(t);
            }
            (0, Some(_), _) => failures += 1,
            _ => {
                // Multiple tables from one doc: keep them unlabeled.
                for t in extracted {
                    next_id += 1;
                    tables.push(t);
                }
            }
        }
    }
    let mut builder = crate::EngineBuilder::with_config(config);
    if let Some(n) = shards {
        builder.shards(n);
    }
    builder.add_tables(tables);
    BoundCorpus {
        engine: builder.build(),
        truth,
        extraction_failures: failures,
    }
}

/// A column-mapping method under evaluation (the rows of Figure 5 and
/// Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The Basic baseline.
    Basic,
    /// Basic + neighbor text.
    NbrText,
    /// Basic + PMI².
    Pmi2,
    /// Full WWT with the given inference algorithm.
    Wwt(InferenceAlgorithm),
    /// WWT with the unsegmented similarity (Figure 8 ablation).
    WwtUnsegmented,
}

impl Method {
    /// Display name used by the experiment harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Basic => "Basic",
            Method::NbrText => "NbrText",
            Method::Pmi2 => "PMI2",
            Method::Wwt(InferenceAlgorithm::Independent) => "WWT-None",
            Method::Wwt(InferenceAlgorithm::TableCentric) => "WWT",
            Method::Wwt(InferenceAlgorithm::AlphaExpansion) => "WWT-AlphaExp",
            Method::Wwt(InferenceAlgorithm::BeliefPropagation) => "WWT-BP",
            Method::Wwt(InferenceAlgorithm::Trws) => "WWT-TRWS",
            Method::WwtUnsegmented => "WWT-Unseg",
        }
    }
}

/// Result of evaluating one method on one query.
#[derive(Debug, Clone)]
pub struct QueryEvaluation {
    /// Workload query index.
    pub query_index: usize,
    /// The method evaluated.
    pub method: Method,
    /// F1 error (percent) over all candidate tables.
    pub f1_error: f64,
    /// Candidate tables retrieved.
    pub candidates: usize,
    /// Candidates whose reference marks them relevant.
    pub relevant_candidates: usize,
    /// Predicted labelings (aligned with candidate ids).
    pub labelings: Vec<Labeling>,
    /// Candidate table ids.
    pub candidate_ids: Vec<TableId>,
}

/// Evaluates `method` on one workload query against the bound corpus.
///
/// Retrieval always uses the full WWT two-stage probe so that every method
/// labels the *same* candidate set, exactly as the paper evaluates all
/// methods on the tables returned by the index probe.
pub fn evaluate_query(bound: &BoundCorpus, spec: &QuerySpec, method: Method) -> QueryEvaluation {
    evaluate_query_with(bound, spec, method, None)
}

/// [`evaluate_query`] with an optional mapper-configuration override for
/// `Method::Wwt` (used by ablation studies).
pub fn evaluate_query_with(
    bound: &BoundCorpus,
    spec: &QuerySpec,
    method: Method,
    mapper_override: Option<&wwt_core::MapperConfig>,
) -> QueryEvaluation {
    let query = &spec.query;
    let candidate_ids: Vec<TableId> = bound.engine.retrieve(query).candidates();
    let tables: Vec<&WebTable> = candidate_ids
        .iter()
        .filter_map(|&id| bound.engine.store().get(id))
        .collect();
    let stats = bound.engine.index().stats();
    let index = bound.engine.index() as &dyn wwt_index::DocSets;

    let labelings: Vec<Labeling> = match method {
        Method::Basic => baseline_map(
            BaselineMethod::Basic,
            query,
            &tables,
            stats,
            Some(index),
            &BaselineConfig::default(),
        ),
        Method::NbrText => baseline_map(
            BaselineMethod::NbrText,
            query,
            &tables,
            stats,
            Some(index),
            &BaselineConfig::default(),
        ),
        Method::Pmi2 => baseline_map(
            BaselineMethod::Pmi2,
            query,
            &tables,
            stats,
            Some(index),
            &BaselineConfig::default(),
        ),
        Method::Wwt(alg) => {
            let mapper = ColumnMapper {
                config: mapper_override
                    .cloned()
                    .unwrap_or_else(|| bound.engine.config().mapper.clone()),
                algorithm: alg,
                pair_memo: None,
            };
            mapper.map(query, &tables, stats, Some(index)).labelings
        }
        Method::WwtUnsegmented => {
            let mut cfg = bound.engine.config().mapper.clone();
            cfg.similarity = SimilarityMode::Unsegmented;
            let mapper = ColumnMapper {
                config: cfg,
                algorithm: bound.engine.config().algorithm,
                pair_memo: None,
            };
            mapper.map(query, &tables, stats, Some(index)).labelings
        }
    };

    let truths: Vec<Vec<Label>> = tables
        .iter()
        .map(|t| bound.truth_for(spec.index, t.id, t.n_cols()))
        .collect();
    let relevant_candidates = truths
        .iter()
        .filter(|l| l.iter().any(|x| x.is_query_col()))
        .count();
    let err = f1_error(
        labelings
            .iter()
            .zip(&truths)
            .map(|(p, t)| (p.labels.as_slice(), t.as_slice())),
    );
    QueryEvaluation {
        query_index: spec.index,
        method,
        f1_error: err,
        candidates: tables.len(),
        relevant_candidates,
        labelings,
        candidate_ids,
    }
}

/// Evaluates `method` on many queries in parallel (via
/// [`crate::pool::fan_out`]). Results come back in workload order.
pub fn evaluate_workload(
    bound: &BoundCorpus,
    specs: &[QuerySpec],
    method: Method,
    threads: usize,
) -> Vec<QueryEvaluation> {
    evaluate_workload_with(bound, specs, method, threads, None)
}

/// [`evaluate_workload`] with an optional mapper-configuration override
/// for `Method::Wwt` (used by ablation studies).
pub fn evaluate_workload_with(
    bound: &BoundCorpus,
    specs: &[QuerySpec],
    method: Method,
    threads: usize,
    mapper_override: Option<&wwt_core::MapperConfig>,
) -> Vec<QueryEvaluation> {
    crate::pool::fan_out(specs.len(), threads, |i| {
        evaluate_query_with(bound, &specs[i], method, mapper_override)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_corpus::{workload, CorpusConfig, CorpusGenerator};

    fn small_bound(query_prefix: &str) -> (BoundCorpus, QuerySpec) {
        let spec = workload()
            .into_iter()
            .find(|s| s.query.to_string().starts_with(query_prefix))
            .unwrap();
        let corpus =
            CorpusGenerator::new(CorpusConfig::small()).generate_for(std::slice::from_ref(&spec));
        (bind_corpus(&corpus, WwtConfig::default()), spec)
    }

    #[test]
    fn binding_labels_most_candidates() {
        let (bound, _) = small_bound("country | currency");
        assert!(bound.n_labeled() >= 5, "labeled {}", bound.n_labeled());
        assert!(
            bound.extraction_failures <= 1,
            "failures {}",
            bound.extraction_failures
        );
    }

    #[test]
    fn truth_for_foreign_query_is_all_nr() {
        let (bound, spec) = small_bound("country | currency");
        let some_id = *bound.truth.keys().next().unwrap();
        let foreign = bound.truth_for(spec.index + 1, some_id, 3);
        assert_eq!(foreign, vec![Label::Nr; 3]);
    }

    #[test]
    fn wwt_beats_or_matches_basic_on_clean_domain() {
        let (bound, spec) = small_bound("country | currency");
        let wwt = evaluate_query(&bound, &spec, Method::Wwt(InferenceAlgorithm::TableCentric));
        let basic = evaluate_query(&bound, &spec, Method::Basic);
        assert!(wwt.candidates > 0);
        assert!(
            wwt.f1_error <= basic.f1_error + 1e-9,
            "WWT {} vs Basic {}",
            wwt.f1_error,
            basic.f1_error
        );
        assert!(wwt.f1_error <= 50.0, "WWT error too high: {}", wwt.f1_error);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let (bound, spec) = small_bound("black metal bands");
        let a = evaluate_query(&bound, &spec, Method::Wwt(InferenceAlgorithm::TableCentric));
        let b = evaluate_query(&bound, &spec, Method::Wwt(InferenceAlgorithm::TableCentric));
        assert_eq!(a.f1_error, b.f1_error);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let specs: Vec<QuerySpec> = workload()
            .into_iter()
            .filter(|s| {
                let q = s.query.to_string();
                q.starts_with("country | currency") || q.starts_with("dog breed")
            })
            .collect();
        let corpus = CorpusGenerator::new(CorpusConfig::small()).generate_for(&specs);
        let bound = bind_corpus(&corpus, WwtConfig::default());
        let serial = evaluate_workload(&bound, &specs, Method::Basic, 1);
        let parallel = evaluate_workload(&bound, &specs, Method::Basic, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.query_index, b.query_index);
            assert_eq!(a.f1_error, b.f1_error);
        }
    }

    #[test]
    fn method_names_unique() {
        let methods = [
            Method::Basic,
            Method::NbrText,
            Method::Pmi2,
            Method::Wwt(InferenceAlgorithm::Independent),
            Method::Wwt(InferenceAlgorithm::TableCentric),
            Method::Wwt(InferenceAlgorithm::AlphaExpansion),
            Method::Wwt(InferenceAlgorithm::BeliefPropagation),
            Method::Wwt(InferenceAlgorithm::Trws),
            Method::WwtUnsegmented,
        ];
        let mut names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), methods.len());
    }
}
