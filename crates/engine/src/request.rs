//! Typed request/response types of the service-grade query API.
//!
//! A [`QueryRequest`] carries the parsed [`Query`] plus optional
//! per-request overrides of the engine defaults ([`QueryOptions`]); the
//! engine answers it with a [`QueryResponse`] bundling the consolidated
//! answer, the column mapping, the named [`Retrieval`] and
//! [`QueryDiagnostics`] (per-stage timings and candidate counts).

use crate::pipeline::WwtConfig;
use crate::retrieval::Retrieval;
use crate::timing::StageTimings;
use wwt_core::{InferenceAlgorithm, MappingResult};
use wwt_model::{AnswerTable, Query, QueryParseError, TableId, WwtError};
use wwt_obs::TraceReport;

/// Per-request overrides of the engine configuration. `None` means "use
/// the engine default"; see [`WwtConfig`] for the semantics of each knob.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// Collective inference algorithm override.
    pub algorithm: Option<InferenceAlgorithm>,
    /// First-probe candidate count override (must be ≥ 1).
    pub probe1_k: Option<usize>,
    /// Second-probe new-candidate cap override (0 disables the second
    /// probe's contribution).
    pub probe2_k: Option<usize>,
    /// Relevance bar for second-probe seed tables (must be in `[0, 1]`).
    pub high_relevance: Option<f64>,
    /// Maximum number of answer rows returned (`None` = unlimited).
    pub max_rows: Option<usize>,
    /// Wall-clock budget for this request in milliseconds. The engine
    /// checks it at pipeline stage boundaries and aborts with
    /// [`WwtError::DeadlineExceeded`] once it passes; `0` trips at the
    /// first checkpoint. `None` (the default) never reads the clock.
    pub deadline_ms: Option<u64>,
    /// Return a request-scoped execution trace in
    /// [`QueryDiagnostics::trace`]: one span per pipeline stage, child
    /// spans per shard probe / column-map batch, plus cache-path notes.
    /// Off by default — a disabled trace is a no-op handle, so plain
    /// requests pay nothing.
    pub explain: bool,
    /// Aggressive candidate pruning in the column mapper
    /// ([`wwt_core::MapperConfig::early_exit`]): hopeless tables are
    /// dropped from edge construction and zero-similarity columns'
    /// query labels collapsed before message passing. **May change
    /// results** (a pruned table can no longer be rescued by its
    /// neighbors), so it participates in the cache fingerprint and is
    /// excluded from the default path's byte-identity guarantee.
    pub early_exit: bool,
    /// Fail-soft execution: when a shard probe errors (or panics) or the
    /// deadline expires mid-stage, return the merged **partial** results
    /// with [`QueryDiagnostics::degraded`] set instead of aborting with
    /// 504/500, and downgrade joint mapping algorithms to `Independent`
    /// under deadline pressure rather than giving up. Off by default —
    /// and because a degraded answer may differ from the healthy one, it
    /// participates in the cache fingerprint.
    pub fail_soft: bool,
}

impl QueryOptions {
    /// True iff every knob is at the engine default.
    pub fn is_default(&self) -> bool {
        *self == QueryOptions::default()
    }

    /// Applies the overrides to a base configuration, validating them.
    pub(crate) fn resolve(&self, base: &WwtConfig) -> Result<WwtConfig, WwtError> {
        let mut cfg = base.clone();
        if let Some(alg) = self.algorithm {
            cfg.algorithm = alg;
        }
        if let Some(k) = self.probe1_k {
            if k == 0 {
                return Err(WwtError::Invalid("probe1_k must be >= 1".into()));
            }
            cfg.probe1_k = k;
        }
        if let Some(k) = self.probe2_k {
            cfg.probe2_k = k;
        }
        if let Some(bar) = self.high_relevance {
            if !(0.0..=1.0).contains(&bar) {
                return Err(WwtError::Invalid(format!(
                    "high_relevance must be in [0, 1], got {bar}"
                )));
            }
            cfg.high_relevance = bar;
        }
        if self.early_exit {
            cfg.mapper.early_exit = true;
        }
        Ok(cfg)
    }

    /// A stable textual fingerprint of the overrides, used in response
    /// cache keys. Defaults collapse to the empty string so that an
    /// explicit request and a plain query share cache entries.
    ///
    /// `deadline_ms` is deliberately excluded: a deadline bounds *when*
    /// a response may be computed, never *what* it contains, so requests
    /// differing only in their budget share one cache entry (and a
    /// deadline-carrying repeat of a cached query is a free hit).
    pub fn fingerprint(&self) -> String {
        let mut s = String::new();
        if let Some(a) = self.algorithm {
            s.push_str(&format!("alg={a:?};"));
        }
        if let Some(k) = self.probe1_k {
            s.push_str(&format!("p1={k};"));
        }
        if let Some(k) = self.probe2_k {
            s.push_str(&format!("p2={k};"));
        }
        if let Some(b) = self.high_relevance {
            s.push_str(&format!("hr={};", b.to_bits()));
        }
        if let Some(m) = self.max_rows {
            s.push_str(&format!("rows={m};"));
        }
        if self.explain {
            // Defensive: the service layer bypasses the response cache
            // entirely for explain requests (each one gets a fresh
            // trace), but should one ever be cached, it must never
            // collide with the plain entry clients expect to be
            // trace-free.
            s.push_str("explain;");
        }
        if self.early_exit {
            // Pruning may change the answer, so pruned and exact
            // responses must never share a cache entry.
            s.push_str("ee;");
        }
        if self.fail_soft {
            // A degraded (partial) answer must never be served from the
            // cache entry of a healthy run, nor vice versa.
            s.push_str("fs;");
        }
        s
    }
}

/// One query plus per-request options — the unit the engine and the
/// service layer answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// The column-keyword query.
    pub query: Query,
    /// Per-request overrides.
    pub options: QueryOptions,
}

impl QueryRequest {
    /// A request with engine-default options.
    pub fn new(query: Query) -> Self {
        QueryRequest {
            query,
            options: QueryOptions::default(),
        }
    }

    /// Parses the `"kw kw | kw kw | ..."` syntax into a request.
    pub fn parse(s: &str) -> Result<Self, QueryParseError> {
        Ok(Self::new(Query::parse(s)?))
    }

    /// Overrides the inference algorithm for this request.
    pub fn algorithm(mut self, algorithm: InferenceAlgorithm) -> Self {
        self.options.algorithm = Some(algorithm);
        self
    }

    /// Overrides the first-probe candidate count.
    pub fn probe1_k(mut self, k: usize) -> Self {
        self.options.probe1_k = Some(k);
        self
    }

    /// Overrides the second-probe new-candidate cap.
    pub fn probe2_k(mut self, k: usize) -> Self {
        self.options.probe2_k = Some(k);
        self
    }

    /// Overrides the high-relevance bar seeding the second probe.
    pub fn high_relevance(mut self, bar: f64) -> Self {
        self.options.high_relevance = Some(bar);
        self
    }

    /// Limits the number of answer rows returned.
    pub fn max_rows(mut self, rows: usize) -> Self {
        self.options.max_rows = Some(rows);
        self
    }

    /// Bounds this request's wall-clock budget in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.options.deadline_ms = Some(ms);
        self
    }

    /// Requests an execution trace in [`QueryDiagnostics::trace`].
    pub fn explain(mut self, on: bool) -> Self {
        self.options.explain = on;
        self
    }

    /// Enables aggressive candidate pruning ([`QueryOptions::early_exit`]).
    pub fn early_exit(mut self, on: bool) -> Self {
        self.options.early_exit = on;
        self
    }

    /// Enables fail-soft execution ([`QueryOptions::fail_soft`]):
    /// partial results with `degraded: true` instead of 504/500.
    pub fn fail_soft(mut self, on: bool) -> Self {
        self.options.fail_soft = on;
        self
    }

    /// The canonical cache key of this request: the normalized query
    /// (columns joined by `" | "`, as parsed) plus the options
    /// fingerprint.
    pub fn cache_key(&self) -> String {
        format!("{}\u{1f}{}", self.query, self.options.fingerprint())
    }
}

impl From<Query> for QueryRequest {
    fn from(query: Query) -> Self {
        QueryRequest::new(query)
    }
}

/// Measurements and counters describing how a response was produced.
#[derive(Debug, Clone, Default)]
pub struct QueryDiagnostics {
    /// Per-stage wall-clock timing (Figure 7 breakdown).
    pub timing: StageTimings,
    /// Whether the second index probe fired.
    pub probe2_used: bool,
    /// Candidate tables retrieved across both probes.
    pub n_candidates: usize,
    /// Candidates the mapper labeled relevant.
    pub n_relevant: usize,
    /// Consolidated rows before the `max_rows` limit was applied.
    pub rows_before_limit: usize,
    /// The execution trace, present iff the request ran with tracing
    /// enabled ([`QueryOptions::explain`] or a service-supplied
    /// [`wwt_obs::Trace`]). `None` costs nothing on the wire.
    pub trace: Option<TraceReport>,
    /// Column-mapper fast-path counters (premap + final map combined).
    /// Diagnostics-only: deliberately **not** wire-encoded in query
    /// responses, so the default path stays byte-identical; the service
    /// aggregates it into its stats surface instead.
    pub map_stats: wwt_core::MapStats,
    /// True iff this response was produced fail-soft from partial data —
    /// a shard probe failed, a stage was cut short by the deadline, or
    /// the mapping algorithm was downgraded. Only ever set when
    /// [`QueryOptions::fail_soft`] was on; wire-encoded conditionally so
    /// healthy responses stay byte-identical.
    pub degraded: bool,
    /// Why the response is degraded, one human-readable reason per
    /// affected stage (e.g. `"probe1: shard 2 failed: …"`). Empty iff
    /// `degraded` is false.
    pub degraded_reasons: Vec<String>,
}

/// Everything the engine produces for one request.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The consolidated, ranked answer table (truncated to the request's
    /// `max_rows`, if set).
    pub table: AnswerTable,
    /// The column mapping over all candidates.
    pub mapping: MappingResult,
    /// Candidate table ids, aligned with `mapping.labelings`.
    pub candidates: Vec<TableId>,
    /// The two-stage retrieval outcome.
    pub retrieval: Retrieval,
    /// Timings and counters.
    pub diagnostics: QueryDiagnostics,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_options() {
        let req = QueryRequest::parse("country | currency")
            .unwrap()
            .algorithm(InferenceAlgorithm::Independent)
            .probe1_k(10)
            .probe2_k(3)
            .high_relevance(0.5)
            .max_rows(7);
        assert_eq!(req.query.q(), 2);
        assert_eq!(req.options.algorithm, Some(InferenceAlgorithm::Independent));
        assert_eq!(req.options.probe1_k, Some(10));
        assert_eq!(req.options.probe2_k, Some(3));
        assert_eq!(req.options.high_relevance, Some(0.5));
        assert_eq!(req.options.max_rows, Some(7));
        assert!(!req.options.is_default());
    }

    #[test]
    fn parse_propagates_query_errors() {
        assert!(QueryRequest::parse(" | ").is_err());
    }

    #[test]
    fn resolve_applies_and_validates() {
        let base = WwtConfig::default();
        let ok = QueryRequest::parse("a | b")
            .unwrap()
            .probe1_k(5)
            .high_relevance(0.9)
            .options
            .resolve(&base)
            .unwrap();
        assert_eq!(ok.probe1_k, 5);
        assert_eq!(ok.high_relevance, 0.9);
        assert_eq!(ok.probe2_k, base.probe2_k);

        let zero_probe = QueryOptions {
            probe1_k: Some(0),
            ..Default::default()
        };
        assert!(matches!(
            zero_probe.resolve(&base),
            Err(WwtError::Invalid(_))
        ));
        let bad_bar = QueryOptions {
            high_relevance: Some(1.5),
            ..Default::default()
        };
        assert!(matches!(bad_bar.resolve(&base), Err(WwtError::Invalid(_))));
        let nan_bar = QueryOptions {
            high_relevance: Some(f64::NAN),
            ..Default::default()
        };
        assert!(matches!(nan_bar.resolve(&base), Err(WwtError::Invalid(_))));
    }

    #[test]
    fn cache_key_separates_query_and_options() {
        let plain = QueryRequest::parse("country | currency").unwrap();
        let tuned = plain.clone().probe1_k(10);
        let other = QueryRequest::parse("country | gdp").unwrap();
        assert_ne!(plain.cache_key(), tuned.cache_key());
        assert_ne!(plain.cache_key(), other.cache_key());
        // Whitespace-normalized equivalent queries share a key.
        let spaced = QueryRequest::parse("  country |currency ").unwrap();
        assert_eq!(plain.cache_key(), spaced.cache_key());
        // Default options fingerprint matches a bare query.
        assert_eq!(
            plain.cache_key(),
            QueryRequest::new(Query::parse("country | currency").unwrap()).cache_key()
        );
    }

    #[test]
    fn explain_changes_the_fingerprint_but_not_plain_keys() {
        let plain = QueryRequest::parse("country | currency").unwrap();
        let traced = plain.clone().explain(true);
        assert!(traced.options.explain);
        assert!(!traced.options.is_default());
        assert_ne!(plain.cache_key(), traced.cache_key());
        assert_eq!(plain.clone().explain(false).cache_key(), plain.cache_key());
    }

    #[test]
    fn early_exit_changes_the_fingerprint_and_resolves() {
        let plain = QueryRequest::parse("country | currency").unwrap();
        let pruned = plain.clone().early_exit(true);
        assert!(pruned.options.early_exit);
        assert!(!pruned.options.is_default());
        // Pruning may change results, so keys must not collide.
        assert_ne!(plain.cache_key(), pruned.cache_key());
        assert_eq!(
            plain.clone().early_exit(false).cache_key(),
            plain.cache_key()
        );
        let base = WwtConfig::default();
        assert!(!base.mapper.early_exit);
        let cfg = pruned.options.resolve(&base).unwrap();
        assert!(cfg.mapper.early_exit);
        let cfg = plain.options.resolve(&base).unwrap();
        assert!(!cfg.mapper.early_exit);
    }

    #[test]
    fn fail_soft_changes_the_fingerprint() {
        let plain = QueryRequest::parse("country | currency").unwrap();
        let soft = plain.clone().fail_soft(true);
        assert!(soft.options.fail_soft);
        assert!(!soft.options.is_default());
        // A degraded answer may differ from the healthy one, so the two
        // must never share a cache entry.
        assert_ne!(plain.cache_key(), soft.cache_key());
        assert_eq!(
            plain.clone().fail_soft(false).cache_key(),
            plain.cache_key()
        );
    }

    #[test]
    fn deadline_does_not_change_the_cache_key() {
        // A deadline bounds when a response may be computed, not what it
        // contains: budgeted and unbudgeted requests share a cache entry.
        let plain = QueryRequest::parse("country | currency").unwrap();
        let hurried = plain.clone().deadline_ms(5);
        assert_eq!(hurried.options.deadline_ms, Some(5));
        assert!(!hurried.options.is_default());
        assert_eq!(plain.cache_key(), hurried.cache_key());
        // But combined with a result-shaping override the key still moves.
        let tuned = plain.clone().deadline_ms(5).max_rows(1);
        assert_ne!(plain.cache_key(), tuned.cache_key());
    }
}
