//! The named result of two-stage candidate retrieval (§2.2.1), replacing
//! the former `(Vec<TableId>, Vec<TableId>, bool, StageTimings)` tuple.

use crate::timing::StageTimings;
use wwt_model::TableId;

/// Outcome of the two-stage index probe for one query.
#[derive(Debug, Clone, Default)]
pub struct Retrieval {
    /// Ids retrieved by the first probe (query keywords), ranked.
    pub stage1: Vec<TableId>,
    /// Ids newly contributed by the second probe (sampled rows of
    /// confident stage-1 tables), ranked; disjoint from `stage1`.
    pub stage2: Vec<TableId>,
    /// Whether the second probe fired (some stage-1 table cleared the
    /// high-relevance bar).
    pub probe2_used: bool,
    /// Wall-clock timing of the probe/read/pre-map stages so far.
    pub timing: StageTimings,
}

impl Retrieval {
    /// All candidate ids, stage-1 first then stage-2, preserving rank
    /// order within each stage.
    pub fn candidates(&self) -> Vec<TableId> {
        self.stage1
            .iter()
            .chain(self.stage2.iter())
            .copied()
            .collect()
    }

    /// Total number of candidates across both stages.
    pub fn len(&self) -> usize {
        self.stage1.len() + self.stage2.len()
    }

    /// True iff neither probe found any candidate.
    pub fn is_empty(&self) -> bool {
        self.stage1.is_empty() && self.stage2.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_concatenates_stages_in_order() {
        let r = Retrieval {
            stage1: vec![TableId(3), TableId(1)],
            stage2: vec![TableId(9)],
            probe2_used: true,
            timing: StageTimings::default(),
        };
        assert_eq!(r.candidates(), vec![TableId(3), TableId(1), TableId(9)]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(Retrieval::default().is_empty());
    }
}
