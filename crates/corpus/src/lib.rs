//! # wwt-corpus
//!
//! Synthetic web corpus generator and workload — the stand-in for the
//! paper's 500M-page crawl (25M data tables) and the 59-query AMT-derived
//! workload of Table 1. See DESIGN.md §2 for the substitution rationale.
//!
//! Every workload query owns a *domain*: a private universe of entities
//! with deterministic attribute values. For each query the generator emits
//! HTML documents containing:
//!
//! * **relevant tables** — subsets of the domain universe with the paper's
//!   noise modes: missing headers (18%), multi-row/split headers,
//!   uninformative headers ("Name"), title rows, swapped/extra columns,
//!   keyword-bearing context;
//! * **irrelevant candidates** — foreign content dressed with enough query
//!   keywords (context/headers) to be retrieved by the index probe, like
//!   the paper's "Forest reserves … mineral exploration" example;
//! * **distractor documents** — unrelated tables for realistic IDF, plus
//!   layout/form/calendar junk exercising the extractor's classifier.
//!
//! Ground-truth column labels are tracked by construction: each document
//! carries the reference labeling of its single candidate table *for its
//! home query*; for any other query the table is irrelevant (all `nr`) —
//! domains are private, so cross-query retrieval is irrelevant by design.

pub mod generator;
pub mod render;
pub mod tablegen;
pub mod values;
pub mod workload;

pub use generator::{CorpusConfig, CorpusGenerator, DocKind, GeneratedCorpus, GeneratedDoc};
pub use workload::{workload, QueryClass, QuerySpec};
