//! Logical table specs for a query domain: relevant tables with the
//! paper's noise modes, and keyword-dressed irrelevant candidates.

use crate::values::{hash_parts, infer_kind, syllable_name, ValueKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wwt_model::{Label, Query};

/// A query's private domain: a universe of entities with deterministic
/// attribute values per query column.
#[derive(Debug, Clone)]
pub struct Domain {
    /// Domain seed (derived from corpus seed + query index).
    pub seed: u64,
    /// The owning query.
    pub query: Query,
    /// Value kind per query column.
    pub kinds: Vec<ValueKind>,
    /// Universe size (number of entities).
    pub universe: usize,
}

impl Domain {
    /// Builds the domain of workload query `qidx`.
    pub fn new(corpus_seed: u64, qidx: usize, query: Query) -> Self {
        let kinds = query
            .columns
            .iter()
            .enumerate()
            .map(|(c, kw)| infer_kind(kw, c == 0))
            .collect();
        Domain {
            seed: hash_parts(&[corpus_seed, 0xD0_11A1, qidx as u64]),
            query,
            kinds,
            universe: 60,
        }
    }

    /// Value of entity `i` in query column `col`.
    pub fn value(&self, col: usize, i: usize) -> String {
        self.kinds[col].value(self.seed, col, i)
    }
}

/// A fully specified logical table plus its reference labeling.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Optional title-row text (rendered as a colspan row).
    pub title: Option<String>,
    /// Header rows (may be empty = headerless table).
    pub header_rows: Vec<Vec<String>>,
    /// Body rows.
    pub rows: Vec<Vec<String>>,
    /// Context paragraphs (rendered around the table).
    pub context: Vec<String>,
    /// Reference label per column for the *home* query.
    pub truth: Vec<Label>,
}

/// Per-query noise profile. Queries differ in difficulty (this is what
/// spreads Basic's error into the seven groups of Figure 5); the profile
/// is derived deterministically from the query index.
#[derive(Debug, Clone, Copy)]
pub struct NoiseProfile {
    /// Probability a relevant table has no header at all (paper: 18%).
    pub p_no_header: f64,
    /// Probability an informative header is split over two rows.
    pub p_split_header: f64,
    /// Probability a header cell is uninformative ("Name", "Value").
    pub p_generic_header: f64,
    /// Probability of a title row.
    pub p_title: f64,
    /// Probability the context mentions the query keywords.
    pub p_context_keywords: f64,
    /// Probability the column order is shuffled.
    pub p_swap: f64,
}

impl NoiseProfile {
    /// Profile for query `qidx`: base rates (matching the corpus-wide
    /// statistics the paper reports) plus a per-query difficulty factor in
    /// `[0, 1]`.
    pub fn for_query(corpus_seed: u64, qidx: usize) -> Self {
        let h = hash_parts(&[corpus_seed, 0x0D1F_F1C0, qidx as u64]);
        // Difficulty skewed toward easy (the paper found one third of its
        // queries "easy"): squaring a uniform draw concentrates mass low.
        let u = (h % 1000) as f64 / 999.0;
        let d = u * u;
        NoiseProfile {
            p_no_header: 0.08 + 0.16 * d,
            p_split_header: 0.12 + 0.10 * d,
            p_generic_header: 0.05 + 0.40 * d,
            p_title: 0.25,
            p_context_keywords: 0.95 - 0.45 * d,
            p_swap: 0.4,
        }
    }
}

const GENERIC_HEADERS: &[&str] = &["Name", "Value", "Details", "Item", "Info"];
const EXTRA_HEADERS: &[&str] = &["Rank", "Notes", "Ref", "Region", "Code"];

/// Header text variants for query column `col`: the full keyword phrase,
/// a truncated variant, or a title-cased fragment.
fn header_variant(rng: &mut StdRng, keywords: &str) -> String {
    let words: Vec<&str> = keywords.split_whitespace().collect();
    match rng.random_range(0..3u8) {
        0 => title_case(keywords),
        1 if words.len() > 1 => title_case(words[words.len() - 1]),
        _ => {
            // Keyword phrase with a filler suffix, e.g. "Currency used".
            let suffix = ["used", "(official)", "info"][rng.random_range(0..3usize)];
            format!("{} {suffix}", title_case(keywords))
        }
    }
}

fn title_case(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut first = true;
    for w in s.split_whitespace() {
        if !first {
            out.push(' ');
        }
        if first {
            let mut cs = w.chars();
            if let Some(c) = cs.next() {
                out.extend(c.to_uppercase());
                out.push_str(cs.as_str());
            }
        } else {
            out.push_str(w);
        }
        first = false;
    }
    out
}

/// Generates one relevant table for `domain` with noise from `profile`.
pub fn relevant_table(domain: &Domain, profile: &NoiseProfile, table_seed: u64) -> TableSpec {
    let mut rng = StdRng::seed_from_u64(table_seed);
    let q = domain.query.q();

    // Entities: a random contiguous-ish sample of the universe.
    let n_rows = rng.random_range(6..=20usize);
    let mut entities: Vec<usize> = (0..domain.universe).collect();
    shuffle(&mut entities, &mut rng);
    entities.truncate(n_rows);
    entities.sort_unstable();

    // Columns: all query columns, plus extras; ensure >= 2 total columns so
    // the data-table classifier keeps the table.
    let mut columns: Vec<Option<usize>> = (0..q).map(Some).collect(); // Some = query col
    let n_extra = if q == 1 {
        rng.random_range(1..=2usize)
    } else {
        rng.random_range(0..=2usize)
    };
    for _ in 0..n_extra {
        columns.push(None);
    }
    if rng.random_bool(profile.p_swap) {
        shuffle(&mut columns, &mut rng);
    }

    // Extra-column content kinds and headers. With some probability an
    // extra column *shadows* a query column — mostly the same values with
    // a different meaning (the paper's "capitals | largest cities" trap
    // that breaks NbrText's naive neighbor-text import).
    let extra_kinds = [
        ValueKind::Number {
            lo: 1,
            hi: 500,
            decimals: 0,
        },
        ValueKind::Phrase,
        ValueKind::Year,
    ];
    let shadow_source: Option<usize> = if rng.random_bool(0.3) {
        Some(rng.random_range(0..q))
    } else {
        None
    };
    let mut extra_ids: Vec<usize> = Vec::new();

    let truth: Vec<Label> = columns
        .iter()
        .map(|c| match c {
            Some(l) => Label::Col(*l),
            None => Label::Na,
        })
        .collect();

    // Body rows.
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(entities.len());
    for &e in &entities {
        let mut row = Vec::with_capacity(columns.len());
        for (ci, col) in columns.iter().enumerate() {
            match col {
                Some(l) => row.push(domain.value(*l, e)),
                None => match shadow_source {
                    // Shadow column: ~80% of cells replicate a query
                    // column's value for the same entity.
                    Some(src) if e % 5 != 0 => row.push(domain.value(src, e)),
                    _ => {
                        let kind = extra_kinds[ci % extra_kinds.len()];
                        // Extra columns draw from a column-specific pool
                        // keyed off the domain seed so they stay coherent.
                        row.push(kind.value(domain.seed ^ 0xE77A, 100 + ci, e));
                    }
                },
            }
        }
        rows.push(row);
    }

    // Headers.
    let mut header_rows: Vec<Vec<String>> = Vec::new();
    let mut dropped_keywords: Vec<String> = Vec::new();
    if !rng.random_bool(profile.p_no_header) {
        let mut row1: Vec<String> = Vec::with_capacity(columns.len());
        let mut row2: Vec<String> = vec![String::new(); columns.len()];
        let mut use_row2 = false;
        for (ci, col) in columns.iter().enumerate() {
            match col {
                Some(l) => {
                    let kw = domain.query.column(*l);
                    if rng.random_bool(profile.p_generic_header) {
                        row1.push(
                            GENERIC_HEADERS[rng.random_range(0..GENERIC_HEADERS.len())].to_string(),
                        );
                        dropped_keywords.push(kw.to_string());
                    } else if rng.random_bool(profile.p_split_header)
                        && kw.split_whitespace().count() >= 2
                    {
                        // Split the phrase over two header rows.
                        let words: Vec<&str> = kw.split_whitespace().collect();
                        let cut = words.len() / 2;
                        row1.push(title_case(&words[..cut.max(1)].join(" ")));
                        row2[ci] = words[cut.max(1)..].join(" ");
                        use_row2 = true;
                    } else {
                        row1.push(header_variant(&mut rng, kw));
                    }
                }
                None => {
                    extra_ids.push(ci);
                    row1.push(EXTRA_HEADERS[rng.random_range(0..EXTRA_HEADERS.len())].to_string());
                }
            }
        }
        header_rows.push(row1);
        if use_row2 {
            header_rows.push(row2);
        }
    }

    // Title and context.
    let all_kw = domain.query.all_keywords();
    let title = if rng.random_bool(profile.p_title) {
        Some(format!("List of {}", domain.query.column(0)))
    } else {
        None
    };
    let mut context = Vec::new();
    if rng.random_bool(profile.p_context_keywords) {
        context.push(format!(
            "This page lists {all_kw} collected from public sources."
        ));
    }
    // Keywords dropped from headers resurface in context half the time —
    // exactly the split-evidence situation SegSim exploits.
    for kw in dropped_keywords {
        if rng.random_bool(0.5) {
            context.push(format!("The table below covers {kw} entries."));
        }
    }
    context.push(format!(
        "Compiled by {} on behalf of the archive.",
        syllable_name(table_seed ^ 0xC0FFEE)
    ));

    TableSpec {
        title,
        header_rows,
        rows,
        context,
        truth,
    }
}

/// Generates an irrelevant-but-retrievable candidate: foreign content with
/// query keywords planted in its context (the "Forest reserves … mineral
/// exploration" pattern).
pub fn irrelevant_table(domain: &Domain, table_seed: u64) -> TableSpec {
    let mut rng = StdRng::seed_from_u64(table_seed ^ 0xBAD);
    let decoy_seed = hash_parts(&[domain.seed, 0xD_EC07, table_seed]);
    let n_cols = rng.random_range(2..=4usize);
    let n_rows = rng.random_range(5..=14usize);
    let kinds = [
        ValueKind::Thing,
        ValueKind::Number {
            lo: 1,
            hi: 5000,
            decimals: 0,
        },
        ValueKind::Person,
        ValueKind::Phrase,
    ];
    let header_rows = vec![(0..n_cols)
        .map(|c| title_case(&syllable_name(hash_parts(&[decoy_seed, c as u64, 0x4EAD]))))
        .collect::<Vec<String>>()];
    let rows: Vec<Vec<String>> = (0..n_rows)
        .map(|r| {
            (0..n_cols)
                .map(|c| kinds[c % kinds.len()].value(decoy_seed, c, r))
                .collect()
        })
        .collect();

    // Plant 1–2 query keywords in the context.
    let all_kw = domain.query.all_keywords();
    let words: Vec<&str> = all_kw.split_whitespace().collect();
    let mut planted: Vec<&str> = Vec::new();
    for _ in 0..rng.random_range(1..=2usize) {
        planted.push(words[rng.random_range(0..words.len())]);
    }
    let context = vec![
        format!(
            "All {} will be available for {} related inquiries.",
            syllable_name(decoy_seed ^ 1).to_lowercase(),
            planted.join(" and ")
        ),
        format!("Records maintained by {}.", syllable_name(decoy_seed ^ 2)),
    ];
    let truth = vec![Label::Nr; n_cols];
    TableSpec {
        title: Some(format!("{} registry", syllable_name(decoy_seed ^ 3))),
        header_rows,
        rows,
        context,
        truth,
    }
}

/// Fisher–Yates shuffle with the local RNG (avoids depending on rand's
/// `SliceRandom` trait surface).
fn shuffle<T>(xs: &mut [T], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Domain {
        Domain::new(
            42,
            8,
            Query::parse("name of explorers | nationality | areas explored").unwrap(),
        )
    }

    #[test]
    fn relevant_table_shape_and_truth() {
        let d = domain();
        let p = NoiseProfile::for_query(42, 8);
        for seed in 0..20 {
            let t = relevant_table(&d, &p, seed);
            let n_cols = t.truth.len();
            assert!(n_cols >= 3, "must contain all query columns");
            assert!(t.rows.iter().all(|r| r.len() == n_cols));
            for l in 0..3 {
                assert!(
                    t.truth.contains(&Label::Col(l)),
                    "query column {l} missing from {:?}",
                    t.truth
                );
            }
            assert!(t.rows.len() >= 6);
        }
    }

    #[test]
    fn values_consistent_across_tables() {
        // The same entity must carry the same value in different tables —
        // this is what content overlap relies on.
        let d = domain();
        let v1 = d.value(0, 5);
        let v2 = d.value(0, 5);
        assert_eq!(v1, v2);
        // Overlap between two generated tables' first query column.
        let p = NoiseProfile::for_query(42, 8);
        let t1 = relevant_table(&d, &p, 1);
        let t2 = relevant_table(&d, &p, 2);
        let col_of = |t: &TableSpec, l: usize| -> Vec<String> {
            let c = t.truth.iter().position(|&x| x == Label::Col(l)).unwrap();
            t.rows.iter().map(|r| r[c].clone()).collect()
        };
        let a: std::collections::HashSet<String> = col_of(&t1, 0).into_iter().collect();
        let b: std::collections::HashSet<String> = col_of(&t2, 0).into_iter().collect();
        assert!(a.intersection(&b).count() >= 1, "universes must overlap");
    }

    #[test]
    fn single_column_queries_get_extra_columns() {
        let d = Domain::new(42, 0, Query::parse("dog breed").unwrap());
        let p = NoiseProfile::for_query(42, 0);
        for seed in 0..10 {
            let t = relevant_table(&d, &p, seed);
            assert!(t.truth.len() >= 2, "classifier needs >= 2 columns");
            assert_eq!(t.truth.iter().filter(|l| l.is_query_col()).count(), 1);
        }
    }

    #[test]
    fn irrelevant_tables_all_nr_with_planted_keywords() {
        let d = domain();
        let t = irrelevant_table(&d, 7);
        assert!(t.truth.iter().all(|&l| l == Label::Nr));
        let ctx = t.context.join(" ");
        let kw_hit = d
            .query
            .all_keywords()
            .split_whitespace()
            .any(|w| ctx.contains(w));
        assert!(kw_hit, "context must mention a query keyword: {ctx}");
    }

    #[test]
    fn generation_is_deterministic() {
        let d = domain();
        let p = NoiseProfile::for_query(42, 8);
        let a = relevant_table(&d, &p, 5);
        let b = relevant_table(&d, &p, 5);
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.header_rows, b.header_rows);
        assert_eq!(a.truth, b.truth);
    }

    #[test]
    fn noise_profiles_vary_by_query() {
        let a = NoiseProfile::for_query(42, 0);
        let b = NoiseProfile::for_query(42, 30);
        assert!((a.p_generic_header - b.p_generic_header).abs() > 1e-6);
    }
}
