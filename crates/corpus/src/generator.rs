//! Corpus orchestration: turns workload specs into a document collection
//! with per-document ground truth.

use crate::render::render_doc;
use crate::tablegen::{irrelevant_table, relevant_table, Domain, NoiseProfile};
use crate::values::{hash_parts, syllable_name, ValueKind};
use crate::workload::QuerySpec;
use wwt_model::Label;

/// What role a generated document plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocKind {
    /// Contains a table relevant to its home query.
    Relevant,
    /// Contains an irrelevant table dressed with query keywords (should be
    /// retrieved, then labeled all-`nr`).
    IrrelevantCandidate,
    /// Unrelated filler (IDF realism; not expected to be retrieved).
    Distractor,
}

/// One generated web document. Each document contains exactly one
/// *candidate* data table (plus possibly junk tables the extractor must
/// reject), so ground truth binds to "the table extracted from this
/// document".
#[derive(Debug, Clone)]
pub struct GeneratedDoc {
    /// Synthetic URL (unique per document).
    pub url: String,
    /// Full HTML.
    pub html: String,
    /// Workload index of the home query (None for distractors).
    pub home_query: Option<usize>,
    /// Reference labels of the candidate table, aligned with its columns,
    /// valid **for the home query**. For any other query the table is all
    /// `nr` (domains are private).
    pub truth: Option<Vec<Label>>,
    /// Document role.
    pub kind: DocKind,
}

/// The generated corpus.
#[derive(Debug, Clone, Default)]
pub struct GeneratedCorpus {
    /// All documents, in a stable order.
    pub documents: Vec<GeneratedDoc>,
}

impl GeneratedCorpus {
    /// Documents whose home query is `qidx`.
    pub fn docs_for_query(&self, qidx: usize) -> impl Iterator<Item = &GeneratedDoc> {
        self.documents
            .iter()
            .filter(move |d| d.home_query == Some(qidx))
    }

    /// Number of relevant documents per query.
    pub fn relevant_count(&self, qidx: usize) -> usize {
        self.docs_for_query(qidx)
            .filter(|d| d.kind == DocKind::Relevant)
            .count()
    }
}

/// Corpus size / noise knobs.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Master seed; everything is deterministic given the seed.
    pub seed: u64,
    /// Scale factor on Table 1's per-query candidate counts
    /// (1.0 reproduces the paper's ~1,900 candidate tables).
    pub scale: f64,
    /// Number of unrelated distractor documents.
    pub distractors: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            scale: 0.35,
            distractors: 120,
        }
    }
}

impl CorpusConfig {
    /// Tiny corpus for unit tests and doc examples.
    pub fn small() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            scale: 0.12,
            distractors: 30,
        }
    }

    /// Full paper-scale corpus (~1,900 candidate tables, like the paper's
    /// 1,906 labeled tables).
    pub fn full() -> Self {
        CorpusConfig {
            seed: 0xC0FFEE,
            scale: 1.0,
            distractors: 400,
        }
    }
}

/// The generator.
#[derive(Debug, Clone, Default)]
pub struct CorpusGenerator {
    config: CorpusConfig,
}

impl CorpusGenerator {
    /// A generator with the given configuration.
    pub fn new(config: CorpusConfig) -> Self {
        CorpusGenerator { config }
    }

    /// Scaled `(total, relevant)` counts for one workload entry.
    pub fn scaled_counts(&self, spec: &QuerySpec) -> (usize, usize) {
        let s = self.config.scale;
        let total = if spec.total == 0 {
            0
        } else {
            ((spec.total as f64 * s).round() as usize).max(1)
        };
        let mut relevant = if spec.relevant == 0 {
            0
        } else {
            ((spec.relevant as f64 * s).round() as usize).max(1)
        };
        relevant = relevant.min(total);
        (total, relevant)
    }

    /// Generates documents for the given workload entries (plus the
    /// configured distractors).
    pub fn generate_for(&self, specs: &[QuerySpec]) -> GeneratedCorpus {
        let seed = self.config.seed;
        let mut documents = Vec::new();
        for spec in specs {
            let (total, relevant) = self.scaled_counts(spec);
            let domain = Domain::new(seed, spec.index, spec.query.clone());
            let profile = NoiseProfile::for_query(seed, spec.index);
            for j in 0..total {
                let table_seed = hash_parts(&[seed, spec.index as u64, j as u64]);
                let (table, kind) = if j < relevant {
                    (
                        relevant_table(&domain, &profile, table_seed),
                        DocKind::Relevant,
                    )
                } else {
                    (
                        irrelevant_table(&domain, table_seed),
                        DocKind::IrrelevantCandidate,
                    )
                };
                let page_title = match kind {
                    DocKind::Relevant => {
                        format!("{} - reference tables", spec.query.column(0))
                    }
                    _ => format!("{} archive", syllable_name(table_seed ^ 0x717)),
                };
                let truth = Some(table.truth.clone());
                let html = render_doc(&page_title, &table, table_seed ^ 0xD0C);
                documents.push(GeneratedDoc {
                    url: format!("http://corpus.wwt/q{}/t{}", spec.index, j),
                    html,
                    home_query: Some(spec.index),
                    truth,
                    kind,
                });
            }
        }
        // Distractors: unrelated filler tables.
        for d in 0..self.config.distractors {
            let dseed = hash_parts(&[seed, 0xF111, d as u64]);
            let kinds = [
                ValueKind::Thing,
                ValueKind::Number {
                    lo: 1,
                    hi: 10_000,
                    decimals: 0,
                },
                ValueKind::Phrase,
            ];
            let n_cols = 2 + (d % 3);
            let n_rows = 5 + (d % 9);
            let table = crate::tablegen::TableSpec {
                title: None,
                header_rows: vec![(0..n_cols)
                    .map(|c| syllable_name(hash_parts(&[dseed, c as u64])))
                    .collect()],
                rows: (0..n_rows)
                    .map(|r| {
                        (0..n_cols)
                            .map(|c| kinds[c % kinds.len()].value(dseed, c, r))
                            .collect()
                    })
                    .collect(),
                context: vec![format!(
                    "Miscellaneous records from the {} collection.",
                    syllable_name(dseed ^ 5)
                )],
                truth: vec![Label::Nr; n_cols],
            };
            let html = render_doc(
                &format!("{} records", syllable_name(dseed ^ 9)),
                &table,
                dseed ^ 0xD0C,
            );
            documents.push(GeneratedDoc {
                url: format!("http://corpus.wwt/misc/{d}"),
                html,
                home_query: None,
                truth: None,
                kind: DocKind::Distractor,
            });
        }
        GeneratedCorpus { documents }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;

    #[test]
    fn scaled_counts_rules() {
        let g = CorpusGenerator::new(CorpusConfig {
            seed: 1,
            scale: 0.1,
            distractors: 0,
        });
        let w = workload();
        // "pain killers | company" (1, 1) must survive scaling.
        let pain = w
            .iter()
            .find(|s| s.query.to_string().contains("pain"))
            .unwrap();
        assert_eq!(g.scaled_counts(pain), (1, 1));
        // "bittorrent clients" (0,0) stays empty.
        let bt = w
            .iter()
            .find(|s| s.query.to_string().contains("bittorrent"))
            .unwrap();
        assert_eq!(g.scaled_counts(bt), (0, 0));
        // relevant <= total always.
        for s in &w {
            let (t, r) = g.scaled_counts(s);
            assert!(r <= t);
        }
    }

    #[test]
    fn generate_small_corpus_for_one_query() {
        let w = workload();
        let spec = w
            .iter()
            .find(|s| s.query.to_string().starts_with("country | currency"))
            .unwrap()
            .clone();
        let g = CorpusGenerator::new(CorpusConfig::small());
        let corpus = g.generate_for(std::slice::from_ref(&spec));
        let (total, relevant) = g.scaled_counts(&spec);
        assert_eq!(corpus.docs_for_query(spec.index).count(), total);
        assert_eq!(corpus.relevant_count(spec.index), relevant);
        // Distractors included.
        assert_eq!(
            corpus.documents.len(),
            total + CorpusConfig::small().distractors
        );
    }

    #[test]
    fn documents_extract_to_single_candidate_tables() {
        let w = workload();
        let spec = w
            .iter()
            .find(|s| s.query.to_string().starts_with("country | currency"))
            .unwrap()
            .clone();
        let corpus = CorpusGenerator::new(CorpusConfig::small()).generate_for(&[spec]);
        let mut extracted = 0;
        for doc in &corpus.documents {
            let tables = wwt_html::extract_tables(&doc.html, &doc.url, 0);
            assert!(
                tables.len() <= 1,
                "doc {} produced {} tables",
                doc.url,
                tables.len()
            );
            if let Some(t) = tables.first() {
                extracted += 1;
                if let Some(truth) = &doc.truth {
                    assert_eq!(
                        t.n_cols(),
                        truth.len(),
                        "column count mismatch for {}",
                        doc.url
                    );
                }
            }
        }
        // The vast majority of documents must yield their candidate table.
        assert!(
            extracted * 10 >= corpus.documents.len() * 9,
            "only {extracted}/{} docs extracted",
            corpus.documents.len()
        );
    }

    #[test]
    fn deterministic_generation() {
        let w = workload();
        let specs = [w[14].clone()];
        let a = CorpusGenerator::new(CorpusConfig::small()).generate_for(&specs);
        let b = CorpusGenerator::new(CorpusConfig::small()).generate_for(&specs);
        assert_eq!(a.documents.len(), b.documents.len());
        for (x, y) in a.documents.iter().zip(&b.documents) {
            assert_eq!(x.html, y.html);
        }
    }

    #[test]
    fn full_workload_scale_statistics() {
        // Scaled-down full workload: relevant fraction should track the
        // paper's ~60%.
        let g = CorpusGenerator::new(CorpusConfig {
            seed: 2,
            scale: 0.2,
            distractors: 0,
        });
        let corpus = g.generate_for(&workload());
        let total = corpus.documents.len();
        let relevant = corpus
            .documents
            .iter()
            .filter(|d| d.kind == DocKind::Relevant)
            .count();
        assert!(total > 300, "total {total}");
        let frac = relevant as f64 / total as f64;
        assert!((0.5..0.75).contains(&frac), "relevant fraction {frac}");
    }
}
