//! The 59-query workload of paper Table 1 (51 AMT topic queries converted
//! to multi-column queries + 12 Wikipedia-sourced queries, minus 4 the
//! authors could not interpret), with the paper's per-query candidate and
//! relevant table counts.

use wwt_model::Query;

/// Query arity class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// One column keyword set.
    Single,
    /// Two column keyword sets.
    Two,
    /// Three column keyword sets.
    Three,
}

/// One workload entry of Table 1.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Position in Table 1 (0-based; stable across runs).
    pub index: usize,
    /// The column-keyword query.
    pub query: Query,
    /// Source tables returned by the two-phase index probe (paper count).
    pub total: usize,
    /// Relevant source tables among them (paper count).
    pub relevant: usize,
}

impl QuerySpec {
    /// Arity class.
    pub fn class(&self) -> QueryClass {
        match self.query.q() {
            1 => QueryClass::Single,
            2 => QueryClass::Two,
            _ => QueryClass::Three,
        }
    }
}

/// `(query, total, relevant)` rows of Table 1, verbatim.
const TABLE1: &[(&str, usize, usize)] = &[
    // Single column queries.
    ("dog breed", 68, 66),
    ("kings of africa", 26, 0),
    ("phases of moon", 56, 17),
    ("prime ministers of england", 35, 3),
    ("professional wrestlers", 52, 52),
    // Two column queries.
    ("2008 beijing Olympic events | winners", 29, 0),
    ("2008 olympic gold medal winners | sports/event", 26, 0),
    ("australian cities | area", 30, 4),
    ("banks | interest rates", 51, 34),
    ("black metal bands | country", 39, 19),
    ("books in United States | author", 6, 2),
    ("car accidents location | year", 46, 8),
    ("clothing sizes | symbols", 20, 0),
    ("composition of the sun | percentage", 50, 12),
    ("country | currency", 56, 53),
    ("country | daily fuel consumption", 38, 14),
    ("country | gdp", 58, 56),
    ("country | population", 58, 55),
    ("country | us dollar exchange rate", 52, 43),
    ("fifa worlds cup winners | year", 49, 9),
    ("Golden Globe award winners | year", 23, 19),
    ("Ibanez guitar series | models", 21, 3),
    ("Internet domains | entity", 10, 4),
    ("James Bond films | year", 16, 11),
    ("Microsoft Windows products | release date", 25, 12),
    ("MLB world series winners | year", 13, 3),
    ("movies | gross collection", 57, 57),
    ("name of parrot | binomial name", 11, 8),
    ("north american mountains | height", 47, 28),
    ("pain killers | company", 1, 1),
    ("pga players | total score", 40, 29),
    ("pre-production electric vehicle | release date", 3, 0),
    ("running shoes model | company", 11, 5),
    ("science discoveries | discoverers", 41, 37),
    ("university | motto", 7, 5),
    ("us cities | population", 34, 32),
    ("us pizza store | annual sales", 35, 1),
    ("usa states | population", 41, 37),
    ("used cellphones | price", 29, 0),
    ("video games | company", 30, 28),
    ("wimbledon champions | year", 38, 24),
    ("world tallest buildings | height", 51, 12),
    // Three column queries.
    ("academy award category | winner | year", 56, 22),
    ("bittorrent clients | license | cost", 0, 0),
    ("chemical element | atomic number | atomic weight", 33, 30),
    ("company | stock ticker | price", 53, 53),
    (
        "educational exchange discipline in US | number of students | year",
        13,
        2,
    ),
    ("fast cars | company | top speed", 34, 29),
    ("food | fat | protein", 47, 43),
    ("ipod models | release date | price", 44, 16),
    ("name of explorers | nationality | areas explored", 19, 13),
    ("NBA Match | date | winner", 44, 34),
    ("new Jedi Order novels | authors | year", 25, 24),
    ("Nobel prize winners | field | year", 12, 10),
    ("Olympus digital SLR Models | resolution | price", 11, 3),
    ("president | library name | location", 8, 1),
    ("religion | number of followers | country of origin", 37, 32),
    ("Star Trek novels | authors | release date", 8, 8),
    ("us states | capitals | largest cities", 32, 30),
];

/// The full 59-query workload, in Table 1 order.
pub fn workload() -> Vec<QuerySpec> {
    TABLE1
        .iter()
        .enumerate()
        .map(|(index, &(q, total, relevant))| QuerySpec {
            index,
            query: Query::parse(q).expect("workload query parses"),
            total,
            relevant,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_nine_queries() {
        assert_eq!(workload().len(), 59);
    }

    #[test]
    fn arity_distribution_matches_paper() {
        let w = workload();
        let singles = w.iter().filter(|s| s.class() == QueryClass::Single).count();
        let twos = w.iter().filter(|s| s.class() == QueryClass::Two).count();
        let threes = w.iter().filter(|s| s.class() == QueryClass::Three).count();
        assert_eq!((singles, twos, threes), (5, 37, 17));
    }

    #[test]
    fn relevant_never_exceeds_total() {
        for s in workload() {
            assert!(s.relevant <= s.total, "{}", s.query);
        }
    }

    #[test]
    fn average_candidates_close_to_paper() {
        // Paper: between 0 and 68 candidates, average 32.29; ~60% relevant.
        let w = workload();
        let total: usize = w.iter().map(|s| s.total).sum();
        let avg = total as f64 / w.len() as f64;
        assert!((avg - 32.29).abs() < 0.5, "avg {avg}");
        let rel: usize = w.iter().map(|s| s.relevant).sum();
        let frac = rel as f64 / total as f64;
        assert!((0.5..0.7).contains(&frac), "relevant fraction {frac}");
    }

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, s) in workload().iter().enumerate() {
            assert_eq!(s.index, i);
        }
    }
}
