//! Deterministic value generation for domain universes.
//!
//! Every (domain, column, entity) triple maps to a fixed value, so the same
//! entity carries the same attribute value in every table that mentions it
//! — which is what makes content overlap across tables (paper §3.3) real.

/// What kind of values a column holds, inferred from its keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Person names ("Kalomar Denve").
    Person,
    /// Place names ("Veluta").
    Place,
    /// Organization names ("Tagave Corp").
    Org,
    /// Generic named things ("Rimodu").
    Thing,
    /// Years (1900–2012).
    Year,
    /// Numbers within a range, possibly with decimals.
    Number {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Decimal places (0 = integer).
        decimals: u32,
    },
    /// Short multi-word phrases ("sea route to veluta").
    Phrase,
}

/// Infers the value kind of a column from its keyword string.
pub fn infer_kind(keywords: &str, is_entity_column: bool) -> ValueKind {
    let k = keywords.to_ascii_lowercase();
    let has = |w: &str| k.contains(w);
    if has("year") || has("date") {
        return ValueKind::Year;
    }
    if has("price") || has("sales") || has("gdp") || has("cost") {
        return ValueKind::Number {
            lo: 10,
            hi: 90_000,
            decimals: 2,
        };
    }
    if has("population") || has("number of") {
        return ValueKind::Number {
            lo: 10_000,
            hi: 90_000_000,
            decimals: 0,
        };
    }
    if has("height")
        || has("area")
        || has("weight")
        || has("speed")
        || has("score")
        || has("resolution")
    {
        return ValueKind::Number {
            lo: 10,
            hi: 9_000,
            decimals: 0,
        };
    }
    if has("percentage") || has("rate") || has("consumption") {
        return ValueKind::Number {
            lo: 0,
            hi: 100,
            decimals: 2,
        };
    }
    if has("atomic number") {
        return ValueKind::Number {
            lo: 1,
            hi: 118,
            decimals: 0,
        };
    }
    if has("winner")
        || has("player")
        || has("president")
        || has("author")
        || has("discoverer")
        || has("minister")
        || has("wrestler")
        || has("king")
        || has("champion")
        || has("explorer")
    {
        return ValueKind::Person;
    }
    if has("country")
        || has("city")
        || has("state")
        || has("capital")
        || has("location")
        || has("nationality")
        || has("origin")
    {
        return ValueKind::Place;
    }
    if has("company") || has("band") || has("university") || has("bank") || has("store") {
        return ValueKind::Org;
    }
    if has("motto")
        || has("explored")
        || has("symbol")
        || has("license")
        || has("entity")
        || has("field")
        || has("discipline")
        || has("event")
    {
        return ValueKind::Phrase;
    }
    if is_entity_column {
        ValueKind::Thing
    } else {
        ValueKind::Phrase
    }
}

/// SplitMix64: cheap deterministic hashing for (seed, indices) → u64.
pub fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Combines parts into one hash.
pub fn hash_parts(parts: &[u64]) -> u64 {
    let mut h = 0x8c90_4ad6_36f4_9b1fu64;
    for &p in parts {
        h = mix(h ^ p);
    }
    h
}

const SYLLABLES: &[&str] = &[
    "ka", "ri", "mo", "ta", "lu", "ne", "si", "do", "va", "be", "tu", "ga", "ye", "pol", "den",
    "mar", "vel", "sho", "ran", "qui", "zan", "fe", "lor", "mi", "sta", "gre", "nor", "wes",
];

/// A pronounceable pseudo-name from a hash (2–4 syllables, capitalized).
pub fn syllable_name(h: u64) -> String {
    let n = 2 + (h % 3) as usize;
    let mut s = String::new();
    let mut x = h;
    for _ in 0..n {
        x = mix(x);
        s.push_str(SYLLABLES[(x % SYLLABLES.len() as u64) as usize]);
    }
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => s,
    }
}

impl ValueKind {
    /// The deterministic value of entity `i` in the column identified by
    /// `(domain_seed, column)`.
    pub fn value(self, domain_seed: u64, column: usize, i: usize) -> String {
        let h = hash_parts(&[domain_seed, column as u64, i as u64]);
        match self {
            ValueKind::Person => {
                format!("{} {}", syllable_name(h), syllable_name(mix(h)))
            }
            ValueKind::Place => syllable_name(h),
            ValueKind::Org => {
                let suffix = ["Corp", "Group", "Ltd", "Inc"][(h % 4) as usize];
                format!("{} {}", syllable_name(h), suffix)
            }
            ValueKind::Thing => syllable_name(h),
            ValueKind::Year => format!("{}", 1900 + (h % 113)),
            ValueKind::Number { lo, hi, decimals } => {
                let span = (hi - lo).max(1) as u64;
                let v = lo + (h % span) as i64;
                if decimals == 0 {
                    format!("{v}")
                } else {
                    let frac = mix(h) % 10u64.pow(decimals);
                    format!("{v}.{frac:0width$}", width = decimals as usize)
                }
            }
            ValueKind::Phrase => {
                let a = syllable_name(h).to_lowercase();
                let b = syllable_name(mix(h)).to_lowercase();
                let joiner = ["of", "near", "with"][(h % 3) as usize];
                format!("{a} {joiner} {b}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_are_deterministic() {
        let k = ValueKind::Person;
        assert_eq!(k.value(7, 0, 3), k.value(7, 0, 3));
        assert_ne!(k.value(7, 0, 3), k.value(7, 0, 4));
        assert_ne!(k.value(7, 0, 3), k.value(8, 0, 3));
        assert_ne!(k.value(7, 1, 3), k.value(7, 0, 3));
    }

    #[test]
    fn kind_inference_rules() {
        assert_eq!(infer_kind("year", false), ValueKind::Year);
        assert_eq!(infer_kind("release date", false), ValueKind::Year);
        assert_eq!(infer_kind("country of origin", false), ValueKind::Place);
        assert_eq!(infer_kind("name of explorers", true), ValueKind::Person);
        assert_eq!(infer_kind("company", false), ValueKind::Org);
        assert!(matches!(
            infer_kind("population", false),
            ValueKind::Number { .. }
        ));
        assert_eq!(infer_kind("weird unseen words", true), ValueKind::Thing);
        assert_eq!(infer_kind("motto", false), ValueKind::Phrase);
    }

    #[test]
    fn year_values_in_range() {
        for i in 0..50 {
            let v: u32 = ValueKind::Year.value(1, 0, i).parse().unwrap();
            assert!((1900..=2012).contains(&v));
        }
    }

    #[test]
    fn number_values_in_range_and_format() {
        let k = ValueKind::Number {
            lo: 10,
            hi: 100,
            decimals: 2,
        };
        for i in 0..50 {
            let v = k.value(2, 1, i);
            let f: f64 = v.parse().unwrap();
            assert!((10.0..101.0).contains(&f), "{v}");
            assert_eq!(v.split('.').nth(1).unwrap().len(), 2, "{v}");
        }
    }

    #[test]
    fn names_look_reasonable() {
        let n = syllable_name(42);
        assert!(n.chars().next().unwrap().is_uppercase());
        assert!(n.len() >= 4);
        let p = ValueKind::Person.value(3, 0, 0);
        assert_eq!(p.split(' ').count(), 2);
    }

    #[test]
    fn different_domains_have_disjoint_universes() {
        // Collision probability should be negligible for small universes.
        let a: std::collections::HashSet<String> = (0..60)
            .map(|i| ValueKind::Place.value(1000, 0, i))
            .collect();
        let b: std::collections::HashSet<String> = (0..60)
            .map(|i| ValueKind::Place.value(2000, 0, i))
            .collect();
        let inter = a.intersection(&b).count();
        assert!(inter <= 3, "too much cross-domain collision: {inter}");
    }
}
