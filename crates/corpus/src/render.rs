//! HTML rendering of table specs into full documents, with realistic
//! markup variety: `<th>` vs bold vs background-colored headers, optional
//! tag soup (unclosed cells), junk tables (forms, calendars) and noise
//! siblings around the candidate table.

use crate::tablegen::TableSpec;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How header cells are marked up (the paper: only 20% of web tables use
/// `<th>`; the rest rely on visual markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderStyle {
    /// `<th>` cells.
    Th,
    /// `<td><b>…</b></td>`.
    Bold,
    /// `<tr bgcolor=…><td class="hd">…`.
    Background,
}

/// Extra junk embedded in a document to exercise the extractor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Junk {
    /// A search-form layout table (must be rejected).
    Form,
    /// A calendar grid (must be rejected).
    Calendar,
    /// A single-column nav list (must be rejected).
    NavList,
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders a candidate table plus its page into a full HTML document.
///
/// `doc_seed` drives markup style choices (header style, tag soup, junk).
pub fn render_doc(page_title: &str, spec: &TableSpec, doc_seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(doc_seed);
    let style = match rng.random_range(0..10u8) {
        0..=5 => HeaderStyle::Th,
        6..=7 => HeaderStyle::Bold,
        _ => HeaderStyle::Background,
    };
    let soup = rng.random_bool(0.15);
    let junk = match rng.random_range(0..10u8) {
        0 => Some(Junk::Form),
        1 => Some(Junk::Calendar),
        2 => Some(Junk::NavList),
        _ => None,
    };

    let mut html = String::with_capacity(4096);
    html.push_str("<html><head><title>");
    html.push_str(&esc(page_title));
    html.push_str("</title></head>\n<body>\n");
    html.push_str(&format!("<h1>{}</h1>\n", esc(page_title)));
    if let Some(j) = junk {
        html.push_str(&render_junk(j));
    }
    // Context before the table.
    for (i, para) in spec.context.iter().enumerate() {
        if i % 2 == 0 {
            html.push_str(&format!("<p>{}</p>\n", esc(para)));
        }
    }
    html.push_str(&render_table(spec, style, soup));
    // Context after the table.
    for (i, para) in spec.context.iter().enumerate() {
        if i % 2 == 1 {
            html.push_str(&format!("<p>{}</p>\n", esc(para)));
        }
    }
    html.push_str("<p>Generated page footer with navigation links.</p>\n");
    html.push_str("</body></html>\n");
    html
}

/// Renders just the table element.
pub fn render_table(spec: &TableSpec, style: HeaderStyle, soup: bool) -> String {
    let n_cols = spec
        .rows
        .first()
        .map(Vec::len)
        .or_else(|| spec.header_rows.first().map(Vec::len))
        .unwrap_or(1);
    let mut html = String::from("<table>\n");
    if let Some(title) = &spec.title {
        html.push_str(&format!(
            "<tr><td colspan=\"{n_cols}\"><b>{}</b></td></tr>\n",
            esc(title)
        ));
    }
    for hrow in &spec.header_rows {
        match style {
            HeaderStyle::Th => {
                html.push_str("<tr>");
                for h in hrow {
                    html.push_str(&format!("<th>{}</th>", esc(h)));
                }
                html.push_str("</tr>\n");
            }
            HeaderStyle::Bold => {
                html.push_str("<tr>");
                for h in hrow {
                    html.push_str(&format!("<td><b>{}</b></td>", esc(h)));
                }
                html.push_str("</tr>\n");
            }
            HeaderStyle::Background => {
                html.push_str("<tr bgcolor=\"#d0d0d0\">");
                for h in hrow {
                    html.push_str(&format!("<td class=\"hd\">{}</td>", esc(h)));
                }
                html.push_str("</tr>\n");
            }
        }
    }
    for row in &spec.rows {
        html.push_str("<tr>");
        for cell in row {
            if soup {
                // Tag soup: unclosed <td> — the DOM builder auto-closes.
                html.push_str(&format!("<td>{}", esc(cell)));
            } else {
                html.push_str(&format!("<td>{}</td>", esc(cell)));
            }
        }
        html.push_str("</tr>\n");
    }
    html.push_str("</table>\n");
    html
}

fn render_junk(junk: Junk) -> String {
    match junk {
        Junk::Form => "<table><tr><td><form><input type=\"text\" name=\"q\"></form></td>\
                       <td><input type=\"submit\" value=\"Search\"></td></tr>\
                       <tr><td>advanced</td><td>help</td></tr></table>\n"
            .to_string(),
        Junk::Calendar => {
            let mut s = String::from("<table><tr>");
            for d in ["Mo", "Tu", "We", "Th", "Fr", "Sa", "Su"] {
                s.push_str(&format!("<td>{d}</td>"));
            }
            s.push_str("</tr>");
            for w in 0..4 {
                s.push_str("<tr>");
                for d in 1..=7 {
                    s.push_str(&format!("<td>{}</td>", w * 7 + d));
                }
                s.push_str("</tr>");
            }
            s.push_str("</table>\n");
            s
        }
        Junk::NavList => "<table><tr><td>Home</td></tr><tr><td>About</td></tr>\
                          <tr><td>Contact</td></tr></table>\n"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::Label;

    fn spec() -> TableSpec {
        TableSpec {
            title: Some("Forest reserves".into()),
            header_rows: vec![vec!["Name".into(), "Area".into()]],
            rows: vec![
                vec!["Shakespeare Hills".into(), "2236".into()],
                vec!["Plains Creek".into(), "880".into()],
                vec!["Welcome Swamp".into(), "168".into()],
            ],
            context: vec![
                "Reserves under the Forestry Act".into(),
                "available for mineral exploration".into(),
            ],
            truth: vec![Label::Nr, Label::Nr],
        }
    }

    #[test]
    fn rendered_doc_extracts_back_to_one_table() {
        for seed in 0..30 {
            let html = render_doc("Reserve registry", &spec(), seed);
            let tables = wwt_html::extract_tables(&html, "u", 0);
            assert_eq!(tables.len(), 1, "seed {seed}: {html}");
            let t = &tables[0];
            assert_eq!(t.n_cols(), 2, "seed {seed}");
            assert_eq!(t.n_rows(), 3, "seed {seed}: rows {:?}", t.rows);
            assert_eq!(t.cell(0, 0), "Shakespeare Hills");
            // Context made it through.
            let ctx = t.all_context_text();
            assert!(
                ctx.contains("Forestry Act") || ctx.contains("mineral"),
                "seed {seed}: {ctx}"
            );
        }
    }

    #[test]
    fn header_styles_all_detected() {
        for style in [HeaderStyle::Th, HeaderStyle::Bold, HeaderStyle::Background] {
            let html = format!(
                "<html><body>{}</body></html>",
                render_table(&spec(), style, false)
            );
            let tables = wwt_html::extract_tables(&html, "u", 0);
            assert_eq!(tables.len(), 1);
            assert_eq!(
                tables[0].n_header_rows(),
                1,
                "style {style:?} header missed"
            );
            assert_eq!(tables[0].header(0, 1), "Area", "style {style:?}");
        }
    }

    #[test]
    fn tag_soup_still_parses() {
        let html = format!(
            "<html><body>{}</body></html>",
            render_table(&spec(), HeaderStyle::Th, true)
        );
        let tables = wwt_html::extract_tables(&html, "u", 0);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].n_rows(), 3);
        assert_eq!(tables[0].cell(2, 1), "168");
    }

    #[test]
    fn title_row_recovered() {
        let html = render_doc("page", &spec(), 3);
        let tables = wwt_html::extract_tables(&html, "u", 0);
        let title = tables[0].title.clone().unwrap_or_default();
        assert!(title.contains("Forest reserves"), "title: {title}");
    }

    #[test]
    fn junk_tables_rejected() {
        for junk in [Junk::Form, Junk::Calendar, Junk::NavList] {
            let html = format!("<html><body>{}</body></html>", render_junk(junk));
            let tables = wwt_html::extract_tables(&html, "u", 0);
            assert!(tables.is_empty(), "{junk:?} must be rejected");
        }
    }

    #[test]
    fn escaping_special_characters() {
        let mut s = spec();
        s.rows[0][0] = "Tom & Jerry <3".into();
        let html = render_doc("t", &s, 0);
        let tables = wwt_html::extract_tables(&html, "u", 0);
        assert_eq!(tables[0].cell(0, 0), "Tom & Jerry <3");
    }
}
