//! The memo behind repeated conjunctive doc-set probes (PMI² §3.2.3
//! re-probes the same cell values constantly), rebuilt for production
//! traffic:
//!
//! * **Keyed by term ids.** Keys are sorted `TermId` lists plus a field
//!   mask — a handful of `u32`s instead of a `Vec<String>` clone per
//!   probe.
//! * **Striped.** N independently locked shards instead of one global
//!   `Mutex`, so concurrent PMI-heavy queries stop serializing on a
//!   single lock.
//! * **Bounded.** Each stripe holds at most `capacity / stripes`
//!   entries; at the cap an arbitrary entry is evicted. Eviction is
//!   always safe — a doc-set probe is a pure function of the immutable
//!   index, so a miss merely recomputes.

use crate::shard::splitmix64;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A memo key: sorted, deduplicated term ids plus the field bitmask.
pub(crate) type DocsetKey = (Box<[u32]>, u8);

/// Total entries a [`DocsetCache`] holds by default, across stripes.
pub(crate) const DEFAULT_DOCSET_CACHE_CAPACITY: usize = 8192;

/// Lock stripes per cache. 16 is plenty: stripes only need to out-number
/// the threads that can concurrently sit in a PMI probe.
pub(crate) const DOCSET_CACHE_STRIPES: usize = 16;

/// A striped, size-capped memo from probe keys to shared doc-id sets.
#[derive(Debug)]
pub(crate) struct DocsetCache {
    stripes: Vec<Mutex<HashMap<DocsetKey, Arc<Vec<u32>>>>>,
    cap_per_stripe: usize,
}

impl Default for DocsetCache {
    fn default() -> Self {
        Self::new(DOCSET_CACHE_STRIPES, DEFAULT_DOCSET_CACHE_CAPACITY)
    }
}

impl DocsetCache {
    /// A cache with `stripes` locks and roughly `capacity` entries in
    /// total (rounded up to a multiple of the stripe count).
    pub(crate) fn new(stripes: usize, capacity: usize) -> Self {
        let stripes = stripes.max(1);
        DocsetCache {
            stripes: (0..stripes).map(|_| Mutex::new(HashMap::new())).collect(),
            cap_per_stripe: capacity.div_ceil(stripes).max(1),
        }
    }

    fn stripe(&self, key: &DocsetKey) -> &Mutex<HashMap<DocsetKey, Arc<Vec<u32>>>> {
        // SplitMix64 over the ids + mask: cheap, well distributed, and
        // stable (no dependence on the process hash seed).
        let mut h = 0x9E37_79B9_7F4A_7C15u64 ^ key.1 as u64;
        for &id in key.0.iter() {
            h = splitmix64(h ^ u64::from(id));
        }
        &self.stripes[(h % self.stripes.len() as u64) as usize]
    }

    /// The memoized set for `key`, if present.
    pub(crate) fn get(&self, key: &DocsetKey) -> Option<Arc<Vec<u32>>> {
        self.stripe(key).lock().unwrap().get(key).cloned()
    }

    /// Memoizes `value` under `key`, evicting an arbitrary resident entry
    /// if the stripe is at capacity.
    pub(crate) fn insert(&self, key: DocsetKey, value: Arc<Vec<u32>>) {
        let mut map = self.stripe(&key).lock().unwrap();
        if map.len() >= self.cap_per_stripe && !map.contains_key(&key) {
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        map.insert(key, value);
    }

    /// Entries currently resident, across all stripes (the
    /// `wwt_docset_cache_entries` gauge).
    pub(crate) fn entries(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ids: &[u32], mask: u8) -> DocsetKey {
        (ids.to_vec().into_boxed_slice(), mask)
    }

    #[test]
    fn get_insert_roundtrip() {
        let c = DocsetCache::default();
        assert!(c.get(&key(&[1, 2], 3)).is_none());
        c.insert(key(&[1, 2], 3), Arc::new(vec![7]));
        assert_eq!(*c.get(&key(&[1, 2], 3)).unwrap(), vec![7]);
        // Same ids, different field mask: a distinct entry.
        assert!(c.get(&key(&[1, 2], 1)).is_none());
        assert_eq!(c.entries(), 1);
    }

    #[test]
    fn capacity_is_bounded() {
        let c = DocsetCache::new(4, 64);
        for i in 0..10_000u32 {
            c.insert(key(&[i], 7), Arc::new(vec![i]));
        }
        // ceil(64/4) = 16 per stripe, 4 stripes.
        assert!(c.entries() <= 64, "entries {}", c.entries());
        assert!(c.entries() > 0);
    }

    #[test]
    fn eviction_keeps_reinserted_key() {
        let c = DocsetCache::new(1, 1);
        c.insert(key(&[1], 0), Arc::new(vec![1]));
        c.insert(key(&[2], 0), Arc::new(vec![2]));
        assert_eq!(c.entries(), 1);
        assert!(c.get(&key(&[2], 0)).is_some());
        // Overwriting the resident key does not evict it.
        c.insert(key(&[2], 0), Arc::new(vec![9]));
        assert_eq!(*c.get(&key(&[2], 0)).unwrap(), vec![9]);
    }
}
