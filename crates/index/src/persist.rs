//! Binary persistence of the index ("stored on disk" — paper §2.1).
//!
//! Shard-file format (little-endian, via the `bytes` crate) — unchanged
//! since v1, so files written before term interning still load:
//!
//! ```text
//! magic  u64  = 0x5757_5449_4458_0001            ("WWTIDX" v1)
//! n_docs u32
//! per doc: table_id u32, field_lens 3×u32
//! n_terms u32
//! per term: len u16, utf-8 bytes,
//!           per field: n_postings u32, then (doc u32, tf u32)*
//! ```
//!
//! Terms are written in sorted order (the dictionary's id order), and the
//! sharded layout's `manifest.json` (version 3) carries the **global term
//! dictionary's count and FNV-1a checksum** — the id space every shard's
//! postings are keyed by is rebuilt as the sorted union of the shard
//! vocabularies (exactly what the freeze would have produced) and
//! verified against the digest. Version-2 manifests (which persisted the
//! full vocabulary as JSON) verify against their stored terms, and
//! version-1 manifests (pre-interning) rebuild unverified; both still
//! load byte-identically.
//!
//! Corpus statistics are rebuilt from the postings at load time (df of a
//! term = number of distinct docs across fields), so they are not stored.

use crate::builder::FrozenShard;
use crate::field::Field;
use crate::search::{Posting, Postings, TableIndex};
use bytes::{Buf, BufMut, BytesMut};
use std::io::{Read, Write};
use std::path::Path;
use wwt_model::{TableId, WwtError};

const MAGIC: u64 = 0x5757_5449_4458_0001;

/// Serializes the index into a byte buffer. Fails loudly on a term
/// whose UTF-8 form exceeds the format's `u16` length field — silently
/// truncating one would desynchronize the reader mid-stream and corrupt
/// the whole file.
pub fn to_bytes(index: &TableIndex) -> Result<Vec<u8>, WwtError> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(MAGIC);
    buf.put_u32_le(index.doc_tables.len() as u32);
    for (i, t) in index.doc_tables.iter().enumerate() {
        buf.put_u32_le(t.0);
        for f in Field::ALL {
            buf.put_u32_le(index.field_lens[i][f.dense()]);
        }
    }
    // Ascending id = sorted term order (the dictionary is frozen sorted),
    // reproducing the deterministic layout of the pre-interning format.
    buf.put_u32_le(index.vocab_size() as u32);
    for (id, post) in index.postings.iter().enumerate() {
        let Some(post) = post else { continue };
        let bytes = index.dict.term(wwt_text::TermId(id as u32)).as_bytes();
        let len = u16::try_from(bytes.len()).map_err(|_| {
            WwtError::Invalid(format!(
                "term of {} bytes exceeds the index format's 64 KiB term limit",
                bytes.len()
            ))
        })?;
        buf.put_u16_le(len);
        buf.put_slice(bytes);
        for f in Field::ALL {
            let list = &post.per_field[f.dense()];
            buf.put_u32_le(list.len() as u32);
            for p in list {
                buf.put_u32_le(p.doc);
                buf.put_u32_le(p.tf);
            }
        }
    }
    Ok(buf.to_vec())
}

fn parse_bytes(data: &[u8]) -> Result<FrozenShard, WwtError> {
    let mut buf = data;
    let check = |ok: bool, what: &str| -> Result<(), WwtError> {
        if ok {
            Ok(())
        } else {
            Err(WwtError::Corrupt(format!("index file truncated at {what}")))
        }
    };
    check(buf.remaining() >= 12, "magic")?;
    if buf.get_u64_le() != MAGIC {
        return Err(WwtError::Corrupt("bad index magic".into()));
    }
    let n_docs = buf.get_u32_le() as usize;
    let mut doc_tables = Vec::with_capacity(n_docs);
    let mut field_lens = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        check(buf.remaining() >= 16, "doc row")?;
        doc_tables.push(TableId(buf.get_u32_le()));
        let mut lens = [0u32; 3];
        for l in &mut lens {
            *l = buf.get_u32_le();
        }
        field_lens.push(lens);
    }
    check(buf.remaining() >= 4, "term count")?;
    let n_terms = buf.get_u32_le() as usize;
    let mut entries: Vec<(String, Postings)> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        check(buf.remaining() >= 2, "term len")?;
        let len = buf.get_u16_le() as usize;
        check(buf.remaining() >= len, "term bytes")?;
        let mut tb = vec![0u8; len];
        buf.copy_to_slice(&mut tb);
        let term = String::from_utf8(tb).map_err(|_| WwtError::Corrupt("non-utf8 term".into()))?;
        let mut post = Postings::default();
        for f in Field::ALL {
            check(buf.remaining() >= 4, "posting len")?;
            let n = buf.get_u32_le() as usize;
            check(buf.remaining() >= n * 8, "posting list")?;
            let list = &mut post.per_field[f.dense()];
            list.reserve(n);
            for _ in 0..n {
                let d = buf.get_u32_le();
                let tf = buf.get_u32_le();
                if d as usize >= n_docs {
                    return Err(WwtError::Corrupt("doc id out of range".into()));
                }
                list.push(Posting {
                    doc: d,
                    tf,
                    sqrt_tf: (tf as f64).sqrt(),
                });
            }
        }
        entries.push((term, post));
    }
    // Files are written in sorted term order; tolerate (and canonicalize)
    // anything else rather than corrupting the positional dictionary.
    if entries.windows(2).any(|w| w[0].0 >= w[1].0) {
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries.dedup_by(|a, b| a.0 == b.0);
    }
    let mut terms = Vec::with_capacity(entries.len());
    let mut dfs = Vec::with_capacity(entries.len());
    let mut postings = Vec::with_capacity(entries.len());
    for (term, mut post) in entries {
        for list in &mut post.per_field {
            list.sort_unstable_by_key(|p| p.doc);
        }
        terms.push(term);
        dfs.push(crate::builder::distinct_docs(&post));
        postings.push(post);
    }
    Ok(FrozenShard {
        terms,
        dfs,
        postings,
        doc_tables,
        field_lens,
    })
}

/// Deserializes an index produced by [`to_bytes`], rebuilding its
/// vocabulary (sorted term order) and statistics from the postings.
pub fn from_bytes(data: &[u8]) -> Result<TableIndex, WwtError> {
    Ok(parse_bytes(data)?.into_index())
}

/// File name of the sharded-layout manifest inside an index directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Version tag written into the manifest; bumped on incompatible layout
/// changes so an old binary fails loudly instead of misreading. Version 2
/// added the persisted term dictionary; version 3 replaced that
/// full-vocabulary JSON array (O(vocabulary) manifest bytes — the PR 5
/// known defect) with a term **count + checksum**: the dictionary is
/// always rebuilt as the sorted union of the shard vocabularies and
/// verified against the digest. Version-1 and version-2 directories
/// still load byte-identically.
pub const MANIFEST_VERSION: u64 = 3;

/// Oldest manifest version this build can still read.
pub const MANIFEST_MIN_VERSION: u64 = 1;

/// Order-sensitive FNV-1a digest of a term dictionary: each term is fed
/// length-prefixed so `["ab","c"]` and `["a","bc"]` cannot collide. The
/// v3 manifest stores this (hex) instead of the terms themselves.
pub fn term_dictionary_checksum<S: AsRef<str>>(terms: &[S]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut feed = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for t in terms {
        let bytes = t.as_ref().as_bytes();
        feed(&(bytes.len() as u32).to_le_bytes());
        feed(bytes);
    }
    h
}

/// File name of shard `s`'s index inside an index directory.
pub fn shard_file(s: usize) -> String {
    format!("shard-{s:04}.idx")
}

/// Attaches the offending file's path to a load error, preserving the
/// error's type (corrupt stays corrupt, io stays io with its kind).
fn in_file(e: WwtError, path: &Path) -> WwtError {
    match e {
        WwtError::Corrupt(m) => WwtError::Corrupt(format!("{m} in {}", path.display())),
        WwtError::Io(io) => {
            let kind = io.kind();
            WwtError::Io(std::io::Error::new(
                kind,
                format!("{io} ({})", path.display()),
            ))
        }
        other => other,
    }
}

/// Persists a sharded index into `dir` (created if needed): a versioned
/// `manifest.json` naming the layout and carrying the term dictionary's
/// count + checksum, plus one [`save`]-format `.idx` file per shard.
/// [`load_sharded`] reads it back.
pub fn save_sharded(index: &crate::ShardedIndex, dir: &Path) -> Result<(), WwtError> {
    wwt_chaos::io_failpoint(wwt_chaos::PERSIST_SAVE)?;
    std::fs::create_dir_all(dir)?;
    for s in 0..index.n_shards() {
        save(index.shard(s), &dir.join(shard_file(s)))?;
    }
    let terms = index.dict().terms();
    let manifest = wwt_json::Json::obj([
        ("version", wwt_json::Json::from(MANIFEST_VERSION)),
        ("shards", wwt_json::Json::from(index.n_shards())),
        ("term_count", wwt_json::Json::from(terms.len())),
        (
            "term_checksum",
            wwt_json::Json::from(format!("{:016x}", term_dictionary_checksum(terms)).as_str()),
        ),
    ]);
    std::fs::write(dir.join(MANIFEST_FILE), manifest.encode())?;
    Ok(())
}

/// Loads a sharded index persisted by [`save_sharded`]. Per-shard
/// statistics (rebuilt from the postings, as in [`load`]) are merged
/// into one global table shared by every shard, so the reloaded index
/// scores bit-identically to the one that was saved. The term dictionary
/// is always rebuilt as the sorted union of shard vocabularies and then
/// verified against the manifest: count + checksum for version 3, the
/// stored vocabulary for version 2, nothing for version 1 — the same
/// ids every way.
pub fn load_sharded(dir: &Path) -> Result<crate::ShardedIndex, WwtError> {
    wwt_chaos::io_failpoint(wwt_chaos::PERSIST_LOAD)?;
    let manifest_path = dir.join(MANIFEST_FILE);
    let manifest_raw =
        std::fs::read_to_string(&manifest_path).map_err(|e| in_file(e.into(), &manifest_path))?;
    let manifest = wwt_json::Json::parse(&manifest_raw).map_err(|e| {
        WwtError::Corrupt(format!(
            "bad index manifest: {e} in {}",
            manifest_path.display()
        ))
    })?;
    let version = manifest
        .get("version")
        .and_then(wwt_json::Json::as_u64)
        .ok_or_else(|| WwtError::Corrupt("index manifest missing \"version\"".into()))?;
    if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
        return Err(WwtError::Corrupt(format!(
            "index manifest version {version} unsupported \
             (expected {MANIFEST_MIN_VERSION}..={MANIFEST_VERSION})"
        )));
    }
    let n_shards = manifest
        .get("shards")
        .and_then(wwt_json::Json::as_u64)
        .filter(|&n| n >= 1)
        .ok_or_else(|| WwtError::Corrupt("index manifest missing \"shards\" >= 1".into()))?
        as usize;
    let frozen: Vec<FrozenShard> = (0..n_shards)
        .map(|s| {
            let path = dir.join(shard_file(s));
            let mut data = Vec::new();
            // Name the offending shard file in every failure — an
            // operator staring at a corrupt multi-shard directory needs
            // to know *which* artifact to restore.
            (|| -> Result<FrozenShard, WwtError> {
                std::fs::File::open(&path)?.read_to_end(&mut data)?;
                parse_bytes(&data)
            })()
            .map_err(|e| in_file(e, &path))
        })
        .collect::<Result<_, _>>()?;
    let index = crate::builder::assemble_sharded(frozen);
    if version == 2 {
        // The v2 manifest persisted the full dictionary as JSON; it is
        // the layout's id-space contract, so the rebuilt (sorted-union)
        // dictionary must reproduce it exactly.
        let terms = manifest
            .get("terms")
            .and_then(wwt_json::Json::as_arr)
            .ok_or_else(|| WwtError::Corrupt("v2 index manifest missing \"terms\"".into()))?;
        let terms: Vec<&str> = terms
            .iter()
            .map(|t| {
                t.as_str()
                    .ok_or_else(|| WwtError::Corrupt("non-string term in manifest".into()))
            })
            .collect::<Result<_, _>>()?;
        let rebuilt = index.dict().terms();
        if terms.len() != rebuilt.len() || terms.iter().zip(rebuilt).any(|(a, b)| *a != b) {
            return Err(WwtError::Corrupt(format!(
                "manifest term dictionary disagrees with the shard vocabularies in {}",
                dir.display()
            )));
        }
    } else if version >= 3 {
        // The v3 manifest carries the dictionary's count + checksum
        // instead of the vocabulary itself: same consistency guarantee,
        // O(1) manifest bytes.
        let count = manifest
            .get("term_count")
            .and_then(wwt_json::Json::as_u64)
            .ok_or_else(|| WwtError::Corrupt("v3 index manifest missing \"term_count\"".into()))?;
        let checksum = manifest
            .get("term_checksum")
            .and_then(wwt_json::Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| {
                WwtError::Corrupt("v3 index manifest missing hex \"term_checksum\"".into())
            })?;
        let rebuilt = index.dict().terms();
        if count != rebuilt.len() as u64 || checksum != term_dictionary_checksum(rebuilt) {
            return Err(WwtError::Corrupt(format!(
                "manifest term dictionary disagrees with the shard vocabularies in {}",
                dir.display()
            )));
        }
    }
    Ok(index)
}

/// Writes the index to a file.
pub fn save(index: &TableIndex, path: &Path) -> Result<(), WwtError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&to_bytes(index)?)?;
    f.flush()?;
    Ok(())
}

/// Reads an index written by [`save`].
pub fn load(path: &Path) -> Result<TableIndex, WwtError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use wwt_model::{ContextSnippet, WebTable};

    fn sample_index() -> TableIndex {
        let mut b = IndexBuilder::new();
        for i in 0..5u32 {
            let t = WebTable::new(
                TableId(i * 2), // non-dense ids on purpose
                "u",
                None,
                vec![vec![format!("header{i}"), "common".into()]],
                vec![vec![format!("val{i}"), "shared".into()]],
                vec![ContextSnippet::new(format!("context {i} words"), 0.5)],
            )
            .unwrap();
            b.add_table(&t);
        }
        b.build()
    }

    #[test]
    fn roundtrip_preserves_search() {
        let idx = sample_index();
        let restored = from_bytes(&to_bytes(&idx).unwrap()).unwrap();
        assert_eq!(restored.n_docs(), idx.n_docs());
        assert_eq!(restored.vocab_size(), idx.vocab_size());
        for probe in ["common", "header3", "val1 shared", "context"] {
            let q = wwt_text::tokenize(probe);
            let a = idx.search(&q, 10);
            let b = restored.search(&q, 10);
            assert_eq!(a.len(), b.len(), "probe {probe}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "score drift, probe {probe}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_bytes_are_stable() {
        // Freezing, serializing and re-serializing must be a fixpoint —
        // the guarantee that re-saving a loaded index never rewrites
        // files.
        let idx = sample_index();
        let bytes = to_bytes(&idx).unwrap();
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(bytes, to_bytes(&restored).unwrap());
    }

    #[test]
    fn roundtrip_preserves_docsets() {
        let idx = sample_index();
        let restored = from_bytes(&to_bytes(&idx).unwrap()).unwrap();
        let toks = vec!["shared".to_string()];
        assert_eq!(
            *idx.docs_with_all(&toks, &[Field::Content]),
            *restored.docs_with_all(&toks, &[Field::Content])
        );
    }

    #[test]
    fn giant_token_no_longer_blocks_save() {
        // A 100 KiB "word" used to reach the dictionary intact and trip
        // to_bytes' u16 term-length guard; the tokenizer now caps tokens,
        // so indexing and serializing such a table must succeed.
        let giant = "x".repeat(100 * 1024);
        let t = WebTable::new(
            TableId(1),
            "u",
            None,
            vec![vec![giant.clone(), "header".into()]],
            vec![vec!["val".into(), giant]],
            vec![],
        )
        .unwrap();
        let mut b = IndexBuilder::new();
        b.add_table(&t);
        let idx = b.build();
        let bytes = to_bytes(&idx).expect("capped tokens fit the u16 term-length field");
        let restored = from_bytes(&bytes).unwrap();
        assert_eq!(restored.n_docs(), idx.n_docs());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = to_bytes(&sample_index()).unwrap();
        data[0] ^= 0xff;
        assert!(matches!(from_bytes(&data), Err(WwtError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected_not_panic() {
        let data = to_bytes(&sample_index()).unwrap();
        for cut in [0, 4, 11, data.len() / 2, data.len() - 1] {
            let r = from_bytes(&data[..cut]);
            assert!(r.is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample_index();
        let dir = std::env::temp_dir().join("wwt_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.idx");
        save(&idx, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.n_docs(), idx.n_docs());
        std::fs::remove_file(&path).ok();
    }

    fn sample_sharded() -> crate::ShardedIndex {
        let mut b = crate::ShardedIndexBuilder::new(3);
        for i in 0..12u32 {
            let t = WebTable::new(
                TableId(i * 3 + 1),
                "u",
                None,
                vec![vec![format!("header{}", i % 4), "common".into()]],
                vec![vec![format!("val{i}"), "shared".into()]],
                vec![ContextSnippet::new(format!("context {} words", i % 3), 0.5)],
            )
            .unwrap();
            b.add_table(&t);
        }
        b.build()
    }

    #[test]
    fn sharded_roundtrip_preserves_search_and_stats() {
        let idx = sample_sharded();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_idx_{}", std::process::id()));
        save_sharded(&idx, &dir).unwrap();
        let restored = load_sharded(&dir).unwrap();
        assert_eq!(restored.n_shards(), idx.n_shards());
        assert_eq!(restored.n_docs(), idx.n_docs());
        assert_eq!(restored.stats().n_docs(), idx.stats().n_docs());
        assert_eq!(restored.dict().terms(), idx.dict().terms());
        for probe in ["common", "header3", "val1 shared", "context"] {
            let toks = wwt_text::tokenize(probe);
            let a = idx.search(&toks, 10);
            let b = restored.search(&toks, 10);
            assert_eq!(a.len(), b.len(), "probe {probe}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "score drift after reload, probe {probe}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_manifest_without_terms_still_loads_identically() {
        // A PR-4 era directory: same shard files, but a version-1
        // manifest with no "terms". The dictionary must be rebuilt to the
        // same ids and answer the same bytes.
        let idx = sample_sharded();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_v1_{}", std::process::id()));
        save_sharded(&idx, &dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            format!(r#"{{"version":1,"shards":{}}}"#, idx.n_shards()),
        )
        .unwrap();
        let restored = load_sharded(&dir).unwrap();
        assert_eq!(restored.dict().terms(), idx.dict().terms());
        for probe in ["common", "header2", "context words"] {
            let toks = wwt_text::tokenize(probe);
            let a = idx.search(&toks, 10);
            let b = restored.search(&toks, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v2_manifest_with_full_terms_still_loads_identically() {
        // A PR-5 era directory: same shard files, but a version-2
        // manifest persisting the whole vocabulary as JSON. It must keep
        // loading (and keep being verified against its stored terms).
        let idx = sample_sharded();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_v2_{}", std::process::id()));
        save_sharded(&idx, &dir).unwrap();
        let manifest = wwt_json::Json::obj([
            ("version", wwt_json::Json::from(2u64)),
            ("shards", wwt_json::Json::from(idx.n_shards())),
            (
                "terms",
                wwt_json::Json::arr(idx.dict().terms().iter().map(String::as_str)),
            ),
        ]);
        std::fs::write(dir.join(MANIFEST_FILE), manifest.encode()).unwrap();
        let restored = load_sharded(&dir).unwrap();
        assert_eq!(restored.dict().terms(), idx.dict().terms());
        for probe in ["common", "header2", "context words"] {
            let toks = wwt_text::tokenize(probe);
            let a = idx.search(&toks, 10);
            let b = restored.search(&toks, 10);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v3_manifest_is_count_and_checksum_not_vocabulary() {
        let idx = sample_sharded();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_v3_{}", std::process::id()));
        save_sharded(&idx, &dir).unwrap();
        let raw = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        let manifest = wwt_json::Json::parse(&raw).unwrap();
        assert_eq!(
            manifest.get("version").and_then(wwt_json::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            manifest.get("term_count").and_then(wwt_json::Json::as_u64),
            Some(idx.dict().terms().len() as u64)
        );
        assert!(manifest.get("terms").is_none(), "vocabulary not persisted");
        // The manifest no longer grows with the vocabulary.
        assert!(
            raw.len() < 200,
            "v3 manifest should be O(1) bytes, got {}",
            raw.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn term_checksum_is_boundary_sensitive() {
        assert_ne!(
            term_dictionary_checksum(&["ab", "c"]),
            term_dictionary_checksum(&["a", "bc"])
        );
        assert_ne!(
            term_dictionary_checksum(&["a"]),
            term_dictionary_checksum(&["a", "a"])
        );
        assert_eq!(
            term_dictionary_checksum(&["a", "b"]),
            term_dictionary_checksum(&["a", "b"])
        );
    }

    #[test]
    fn sharded_load_rejects_bad_manifests() {
        let dir = std::env::temp_dir().join(format!("wwt_sharded_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing manifest: an io error, not a panic.
        assert!(load_sharded(&dir).is_err());
        // Unsupported version.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":999,"shards":1}"#).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // Zero shards.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":2,"shards":0}"#).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // A v2 manifest must carry its dictionary.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":2,"shards":1}"#).unwrap();
        save(&sample_index(), &dir.join(shard_file(0))).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // An unsorted dictionary is corrupt.
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":2,"shards":1,"terms":["b","a"]}"#,
        )
        .unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // A dictionary missing a shard's term is corrupt.
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":2,"shards":1,"terms":["common"]}"#,
        )
        .unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // A v3 manifest must carry count + checksum.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":3,"shards":1}"#).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // A v3 count that disagrees with the shard vocabularies is corrupt.
        std::fs::write(
            dir.join(MANIFEST_FILE),
            r#"{"version":3,"shards":1,"term_count":1,"term_checksum":"00000000deadbeef"}"#,
        )
        .unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // A v3 checksum that disagrees (right count, wrong digest).
        let idx = sample_index();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            format!(
                r#"{{"version":3,"shards":1,"term_count":{},"term_checksum":"00000000deadbeef"}}"#,
                idx.vocab_size()
            ),
        )
        .unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // Manifest promising more shards than exist on disk.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":1,"shards":2}"#).unwrap();
        assert!(load_sharded(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_artifacts_name_the_offending_file() {
        let idx = sample_sharded();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_corrupt_{}", std::process::id()));
        let shard1 = dir.join(shard_file(1));
        let shard1_name = shard1.display().to_string();

        // Truncated shard file on disk: typed Corrupt naming the path.
        save_sharded(&idx, &dir).unwrap();
        let bytes = std::fs::read(&shard1).unwrap();
        std::fs::write(&shard1, &bytes[..bytes.len() / 2]).unwrap();
        match load_sharded(&dir) {
            Err(WwtError::Corrupt(m)) => {
                assert!(m.contains("truncated"), "message: {m}");
                assert!(m.contains(&shard1_name), "message: {m}");
            }
            other => panic!("expected Corrupt for truncation, got {other:?}"),
        }

        // Bit-flipped payload (the doc-count word): the reader
        // desynchronizes → typed Corrupt, same path context.
        save_sharded(&idx, &dir).unwrap();
        let mut bytes = std::fs::read(&shard1).unwrap();
        bytes[11] ^= 0xFF; // high byte of n_docs, past the magic
        std::fs::write(&shard1, &bytes).unwrap();
        match load_sharded(&dir) {
            Err(WwtError::Corrupt(m)) => {
                assert!(m.contains(&shard1_name), "message: {m}");
            }
            other => panic!("expected Corrupt for bit flip, got {other:?}"),
        }

        // Missing shard file: typed Io error still naming the path.
        save_sharded(&idx, &dir).unwrap();
        std::fs::remove_file(&shard1).unwrap();
        match load_sharded(&dir) {
            Err(WwtError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
                assert!(e.to_string().contains(&shard1_name), "message: {e}");
            }
            other => panic!("expected Io for missing shard, got {other:?}"),
        }

        // A v3 term_checksum mismatch names the index directory.
        save_sharded(&idx, &dir).unwrap();
        std::fs::write(
            dir.join(MANIFEST_FILE),
            format!(
                r#"{{"version":3,"shards":{},"term_count":{},"term_checksum":"00000000deadbeef"}}"#,
                idx.n_shards(),
                idx.dict().terms().len()
            ),
        )
        .unwrap();
        match load_sharded(&dir) {
            Err(WwtError::Corrupt(m)) => {
                assert!(m.contains("disagrees"), "message: {m}");
                assert!(m.contains(&dir.display().to_string()), "message: {m}");
            }
            other => panic!("expected Corrupt for checksum mismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_index_roundtrip() {
        let idx = IndexBuilder::new().build();
        let restored = from_bytes(&to_bytes(&idx).unwrap()).unwrap();
        assert_eq!(restored.n_docs(), 0);
    }
}
