//! Binary persistence of the index ("stored on disk" — paper §2.1).
//!
//! Format (little-endian, via the `bytes` crate):
//!
//! ```text
//! magic  u64  = 0x5757_5449_4458_0001            ("WWTIDX" v1)
//! n_docs u32
//! per doc: table_id u32, field_lens 3×u32
//! n_terms u32
//! per term: len u16, utf-8 bytes,
//!           per field: n_postings u32, then (doc u32, tf u32)*
//! ```
//!
//! Corpus statistics are rebuilt from the postings at load time (df of a
//! term = number of distinct docs across fields), so they are not stored.

use crate::field::Field;
use crate::search::{Postings, TableIndex};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use wwt_model::{TableId, WwtError};
use wwt_text::CorpusStats;

const MAGIC: u64 = 0x5757_5449_4458_0001;

/// Serializes the index into a byte buffer.
pub fn to_bytes(index: &TableIndex) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u64_le(MAGIC);
    buf.put_u32_le(index.doc_tables.len() as u32);
    for (i, t) in index.doc_tables.iter().enumerate() {
        buf.put_u32_le(t.0);
        for f in Field::ALL {
            buf.put_u32_le(index.field_lens[i][f.dense()]);
        }
    }
    // Deterministic term order.
    let mut terms: Vec<&String> = index.postings.keys().collect();
    terms.sort();
    buf.put_u32_le(terms.len() as u32);
    for term in terms {
        let bytes = term.as_bytes();
        buf.put_u16_le(bytes.len() as u16);
        buf.put_slice(bytes);
        let post = &index.postings[term];
        for f in Field::ALL {
            let list = &post.per_field[f.dense()];
            buf.put_u32_le(list.len() as u32);
            for &(d, tf) in list {
                buf.put_u32_le(d);
                buf.put_u32_le(tf);
            }
        }
    }
    buf.to_vec()
}

/// Deserializes an index produced by [`to_bytes`].
pub fn from_bytes(data: &[u8]) -> Result<TableIndex, WwtError> {
    let mut buf = data;
    let check = |ok: bool, what: &str| -> Result<(), WwtError> {
        if ok {
            Ok(())
        } else {
            Err(WwtError::Corrupt(format!("index file truncated at {what}")))
        }
    };
    check(buf.remaining() >= 12, "magic")?;
    if buf.get_u64_le() != MAGIC {
        return Err(WwtError::Corrupt("bad index magic".into()));
    }
    let n_docs = buf.get_u32_le() as usize;
    let mut doc_tables = Vec::with_capacity(n_docs);
    let mut field_lens = Vec::with_capacity(n_docs);
    for _ in 0..n_docs {
        check(buf.remaining() >= 16, "doc row")?;
        doc_tables.push(TableId(buf.get_u32_le()));
        let mut lens = [0u32; 3];
        for l in &mut lens {
            *l = buf.get_u32_le();
        }
        field_lens.push(lens);
    }
    check(buf.remaining() >= 4, "term count")?;
    let n_terms = buf.get_u32_le() as usize;
    let mut postings: HashMap<String, Postings> = HashMap::with_capacity(n_terms);
    let mut doc_terms: Vec<Vec<String>> = vec![Vec::new(); n_docs];
    for _ in 0..n_terms {
        check(buf.remaining() >= 2, "term len")?;
        let len = buf.get_u16_le() as usize;
        check(buf.remaining() >= len, "term bytes")?;
        let mut tb = vec![0u8; len];
        buf.copy_to_slice(&mut tb);
        let term = String::from_utf8(tb).map_err(|_| WwtError::Corrupt("non-utf8 term".into()))?;
        let mut post = Postings::default();
        let mut seen_docs: Vec<u32> = Vec::new();
        for f in Field::ALL {
            check(buf.remaining() >= 4, "posting len")?;
            let n = buf.get_u32_le() as usize;
            check(buf.remaining() >= n * 8, "posting list")?;
            let list = &mut post.per_field[f.dense()];
            list.reserve(n);
            for _ in 0..n {
                let d = buf.get_u32_le();
                let tf = buf.get_u32_le();
                if d as usize >= n_docs {
                    return Err(WwtError::Corrupt("doc id out of range".into()));
                }
                list.push((d, tf));
                if !seen_docs.contains(&d) {
                    seen_docs.push(d);
                }
            }
        }
        for d in seen_docs {
            doc_terms[d as usize].push(term.clone());
        }
        postings.insert(term, post);
    }
    let mut stats = CorpusStats::new();
    for terms in &doc_terms {
        stats.add_doc(terms.iter().map(String::as_str));
    }
    Ok(TableIndex::from_parts(
        postings, doc_tables, field_lens, stats,
    ))
}

/// File name of the sharded-layout manifest inside an index directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Version tag written into the manifest; bumped on incompatible layout
/// changes so an old binary fails loudly instead of misreading.
pub const MANIFEST_VERSION: u64 = 1;

/// File name of shard `s`'s index inside an index directory.
pub fn shard_file(s: usize) -> String {
    format!("shard-{s:04}.idx")
}

/// Persists a sharded index into `dir` (created if needed): a versioned
/// `manifest.json` naming the layout plus one [`save`]-format `.idx`
/// file per shard. [`load_sharded`] reads it back.
pub fn save_sharded(index: &crate::ShardedIndex, dir: &Path) -> Result<(), WwtError> {
    std::fs::create_dir_all(dir)?;
    for s in 0..index.n_shards() {
        save(index.shard(s), &dir.join(shard_file(s)))?;
    }
    let manifest = wwt_json::Json::obj([
        ("version", wwt_json::Json::from(MANIFEST_VERSION)),
        ("shards", wwt_json::Json::from(index.n_shards())),
    ]);
    std::fs::write(dir.join(MANIFEST_FILE), manifest.encode())?;
    Ok(())
}

/// Loads a sharded index persisted by [`save_sharded`]. Per-shard
/// statistics (rebuilt from the postings, as in [`load`]) are merged
/// into one global table shared by every shard, so the reloaded index
/// scores bit-identically to the one that was saved.
pub fn load_sharded(dir: &Path) -> Result<crate::ShardedIndex, WwtError> {
    let manifest_raw = std::fs::read_to_string(dir.join(MANIFEST_FILE))?;
    let manifest = wwt_json::Json::parse(&manifest_raw)
        .map_err(|e| WwtError::Corrupt(format!("bad index manifest: {e}")))?;
    let version = manifest
        .get("version")
        .and_then(wwt_json::Json::as_u64)
        .ok_or_else(|| WwtError::Corrupt("index manifest missing \"version\"".into()))?;
    if version != MANIFEST_VERSION {
        return Err(WwtError::Corrupt(format!(
            "index manifest version {version} unsupported (expected {MANIFEST_VERSION})"
        )));
    }
    let n_shards = manifest
        .get("shards")
        .and_then(wwt_json::Json::as_u64)
        .filter(|&n| n >= 1)
        .ok_or_else(|| WwtError::Corrupt("index manifest missing \"shards\" >= 1".into()))?
        as usize;
    let shards: Vec<TableIndex> = (0..n_shards)
        .map(|s| load(&dir.join(shard_file(s))))
        .collect::<Result<_, _>>()?;
    let mut global = CorpusStats::new();
    for shard in &shards {
        global.merge(shard.stats());
    }
    let stats = std::sync::Arc::new(global);
    let shards = shards
        .into_iter()
        .map(|s| s.with_stats(std::sync::Arc::clone(&stats)))
        .collect();
    Ok(crate::ShardedIndex::from_loaded_shards(shards, stats))
}

/// Writes the index to a file.
pub fn save(index: &TableIndex, path: &Path) -> Result<(), WwtError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&to_bytes(index))?;
    f.flush()?;
    Ok(())
}

/// Reads an index written by [`save`].
pub fn load(path: &Path) -> Result<TableIndex, WwtError> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    from_bytes(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use wwt_model::{ContextSnippet, WebTable};

    fn sample_index() -> TableIndex {
        let mut b = IndexBuilder::new();
        for i in 0..5u32 {
            let t = WebTable::new(
                TableId(i * 2), // non-dense ids on purpose
                "u",
                None,
                vec![vec![format!("header{i}"), "common".into()]],
                vec![vec![format!("val{i}"), "shared".into()]],
                vec![ContextSnippet::new(format!("context {i} words"), 0.5)],
            )
            .unwrap();
            b.add_table(&t);
        }
        b.build()
    }

    #[test]
    fn roundtrip_preserves_search() {
        let idx = sample_index();
        let restored = from_bytes(&to_bytes(&idx)).unwrap();
        assert_eq!(restored.n_docs(), idx.n_docs());
        assert_eq!(restored.vocab_size(), idx.vocab_size());
        for probe in ["common", "header3", "val1 shared", "context"] {
            let q = wwt_text::tokenize(probe);
            let a = idx.search(&q, 10);
            let b = restored.search(&q, 10);
            assert_eq!(a.len(), b.len(), "probe {probe}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert!((x.score - y.score).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn roundtrip_preserves_docsets() {
        let idx = sample_index();
        let restored = from_bytes(&to_bytes(&idx)).unwrap();
        let toks = vec!["shared".to_string()];
        assert_eq!(
            *idx.docs_with_all(&toks, &[Field::Content]),
            *restored.docs_with_all(&toks, &[Field::Content])
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = to_bytes(&sample_index());
        data[0] ^= 0xff;
        assert!(matches!(from_bytes(&data), Err(WwtError::Corrupt(_))));
    }

    #[test]
    fn truncation_rejected_not_panic() {
        let data = to_bytes(&sample_index());
        for cut in [0, 4, 11, data.len() / 2, data.len() - 1] {
            let r = from_bytes(&data[..cut]);
            assert!(r.is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn file_roundtrip() {
        let idx = sample_index();
        let dir = std::env::temp_dir().join("wwt_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.idx");
        save(&idx, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.n_docs(), idx.n_docs());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_roundtrip_preserves_search_and_stats() {
        let mut b = crate::ShardedIndexBuilder::new(3);
        for i in 0..12u32 {
            let t = WebTable::new(
                TableId(i * 3 + 1),
                "u",
                None,
                vec![vec![format!("header{}", i % 4), "common".into()]],
                vec![vec![format!("val{i}"), "shared".into()]],
                vec![ContextSnippet::new(format!("context {} words", i % 3), 0.5)],
            )
            .unwrap();
            b.add_table(&t);
        }
        let idx = b.build();
        let dir = std::env::temp_dir().join(format!("wwt_sharded_idx_{}", std::process::id()));
        save_sharded(&idx, &dir).unwrap();
        let restored = load_sharded(&dir).unwrap();
        assert_eq!(restored.n_shards(), idx.n_shards());
        assert_eq!(restored.n_docs(), idx.n_docs());
        assert_eq!(restored.stats().n_docs(), idx.stats().n_docs());
        for probe in ["common", "header3", "val1 shared", "context"] {
            let toks = wwt_text::tokenize(probe);
            let a = idx.search(&toks, 10);
            let b = restored.search(&toks, 10);
            assert_eq!(a.len(), b.len(), "probe {probe}");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.table, y.table);
                assert_eq!(
                    x.score.to_bits(),
                    y.score.to_bits(),
                    "score drift after reload, probe {probe}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_load_rejects_bad_manifests() {
        let dir = std::env::temp_dir().join(format!("wwt_sharded_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing manifest: an io error, not a panic.
        assert!(load_sharded(&dir).is_err());
        // Unsupported version.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":999,"shards":1}"#).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // Zero shards.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":1,"shards":0}"#).unwrap();
        assert!(matches!(load_sharded(&dir), Err(WwtError::Corrupt(_))));
        // Manifest promising more shards than exist on disk.
        std::fs::write(dir.join(MANIFEST_FILE), r#"{"version":1,"shards":2}"#).unwrap();
        save(&sample_index(), &dir.join(shard_file(0))).unwrap();
        assert!(load_sharded(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_index_roundtrip() {
        let idx = IndexBuilder::new().build();
        let restored = from_bytes(&to_bytes(&idx)).unwrap();
        assert_eq!(restored.n_docs(), 0);
    }
}
