//! Hand-rolled JSON codec for [`WebTable`] lines in the table store.
//!
//! The container has no registry access, so instead of `serde_json` the
//! store serializes tables with a small dedicated encoder and a minimal
//! recursive-descent JSON parser. The format is ordinary JSON — one
//! object per line — so stores stay greppable and forward-compatible:
//!
//! ```text
//! {"id":7,"url":"…","title":"…"|null,"headers":[[…]],"rows":[[…]],
//!  "context":[{"text":"…","score":0.9}]}
//! ```

use wwt_model::{ContextSnippet, TableId, WebTable};

/// Serializes one table as a single-line JSON object.
pub(crate) fn table_to_json(t: &WebTable) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"id\":");
    s.push_str(&t.id.0.to_string());
    s.push_str(",\"url\":");
    push_json_str(&mut s, &t.url);
    s.push_str(",\"title\":");
    match &t.title {
        Some(title) => push_json_str(&mut s, title),
        None => s.push_str("null"),
    }
    s.push_str(",\"headers\":");
    push_rows(&mut s, &t.headers);
    s.push_str(",\"rows\":");
    push_rows(&mut s, &t.rows);
    s.push_str(",\"context\":[");
    for (i, c) in t.context.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"text\":");
        push_json_str(&mut s, &c.text);
        s.push_str(",\"score\":");
        // A non-finite score would serialize as `NaN`/`inf` — invalid
        // JSON that poisons the whole store at load time.
        let score = if c.score.is_finite() { c.score } else { 0.0 };
        s.push_str(&format!("{score:?}"));
        s.push('}');
    }
    s.push_str("]}");
    s
}

fn push_rows(s: &mut String, rows: &[Vec<String>]) {
    s.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            push_json_str(s, cell);
        }
        s.push(']');
    }
    s.push(']');
}

fn push_json_str(s: &mut String, v: &str) {
    s.push('"');
    for ch in v.chars() {
        match ch {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => s.push_str(&format!("\\u{:04x}", c as u32)),
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Parses a table serialized by [`table_to_json`]. Errors are plain
/// strings; the store wraps them in `WwtError::Corrupt`.
pub(crate) fn table_from_json(line: &str) -> Result<WebTable, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".into());
    }
    let obj = match value {
        Json::Obj(fields) => fields,
        _ => return Err("top-level value is not an object".into()),
    };
    let field = |name: &str| -> Result<&Json, String> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let id = match field("id")? {
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
            TableId(*n as u32)
        }
        _ => return Err("field \"id\" is not a u32".into()),
    };
    let url = match field("url")? {
        Json::Str(s) => s.clone(),
        _ => return Err("field \"url\" is not a string".into()),
    };
    let title = match field("title")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err("field \"title\" is not a string or null".into()),
    };
    let headers = rows_from(field("headers")?, "headers")?;
    let rows = rows_from(field("rows")?, "rows")?;
    let context = match field("context")? {
        Json::Arr(items) => items
            .iter()
            .map(|item| match item {
                Json::Obj(fields) => {
                    let text = fields
                        .iter()
                        .find(|(k, _)| k == "text")
                        .and_then(|(_, v)| match v {
                            Json::Str(s) => Some(s.clone()),
                            _ => None,
                        })
                        .ok_or("context item lacks string \"text\"")?;
                    let score = fields
                        .iter()
                        .find(|(k, _)| k == "score")
                        .and_then(|(_, v)| match v {
                            Json::Num(n) => Some(*n),
                            _ => None,
                        })
                        .ok_or("context item lacks numeric \"score\"")?;
                    Ok(ContextSnippet::new(text, score))
                }
                _ => Err("context item is not an object".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("field \"context\" is not an array".into()),
    };
    WebTable::new(id, url, title, headers, rows, context)
        .ok_or_else(|| "table has no columns".into())
}

fn rows_from(v: &Json, what: &str) -> Result<Vec<Vec<String>>, String> {
    let Json::Arr(rows) = v else {
        return Err(format!("field {what:?} is not an array"));
    };
    rows.iter()
        .map(|row| match row {
            Json::Arr(cells) => cells
                .iter()
                .map(|c| match c {
                    Json::Str(s) => Ok(s.clone()),
                    _ => Err(format!("{what} cell is not a string")),
                })
                .collect(),
            _ => Err(format!("{what} row is not an array")),
        })
        .collect()
}

/// Minimal JSON value tree.
enum Json {
    Null,
    Bool(#[allow(dead_code)] bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err("lone high surrogate".into());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                            // hex4 leaves pos just past the 4 digits.
                            continue;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 char (input is a &str, so valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s =
            std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape")?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WebTable {
        WebTable::new(
            TableId(7),
            "http://x/\"quoted\"",
            Some("tab\tand\nnewline".into()),
            vec![vec!["a".into(), "b".into()]],
            vec![vec!["ünïcode ✓".into(), "back\\slash".into()]],
            vec![ContextSnippet::new("ctx", 0.25)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_table() {
        let t = sample();
        let json = table_to_json(&t);
        assert!(!json.contains('\n'), "must be a single line: {json}");
        let back = table_from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_none_title_and_empty_context() {
        let t = WebTable::new(
            TableId(0),
            "u",
            None,
            vec![],
            vec![vec!["x".into()]],
            vec![],
        )
        .unwrap();
        let back = table_from_json(&table_to_json(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn non_finite_score_still_loads() {
        // Even if a NaN score sneaks into the struct (pub field), the
        // encoded line must stay valid JSON.
        let mut t = sample();
        t.context[0].score = f64::NAN;
        let back = table_from_json(&table_to_json(&t)).unwrap();
        assert!(back.context[0].score.is_finite());
    }

    #[test]
    fn unicode_escape_decoding() {
        let json = r#"{"id":1,"url":"A😀","title":null,"headers":[],"rows":[["x"]],"context":[]}"#;
        let t = table_from_json(json).unwrap();
        assert_eq!(t.url, "A😀");
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "{not json}",
            "",
            "[]",
            r#"{"id":"seven","url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]}"#,
            r#"{"url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]}"#,
            r#"{"id":1,"url":"u","title":null,"headers":[],"rows":[],"context":[]}"#,
            r#"{"id":1,"url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]} extra"#,
        ] {
            assert!(table_from_json(bad).is_err(), "must reject: {bad}");
        }
    }
}
