//! JSON codec for [`WebTable`] lines in the table store.
//!
//! The container has no registry access, so instead of `serde_json` the
//! store serializes tables through the workspace's shared hand-rolled
//! codec, [`wwt_json`] — the same value tree `wwt-server` uses for HTTP
//! bodies. The format is ordinary JSON — one object per line — so stores
//! stay greppable and forward-compatible:
//!
//! ```text
//! {"id":7,"url":"…","title":"…"|null,"headers":[[…]],"rows":[[…]],
//!  "context":[{"text":"…","score":0.9}]}
//! ```

use wwt_json::Json;
use wwt_model::{ContextSnippet, TableId, WebTable};

/// Serializes one table as a single-line JSON object.
pub fn table_to_json(t: &WebTable) -> String {
    Json::obj([
        ("id", Json::from(t.id.0)),
        ("url", Json::from(t.url.as_str())),
        (
            "title",
            match &t.title {
                Some(title) => Json::from(title.as_str()),
                None => Json::Null,
            },
        ),
        ("headers", rows_to_json(&t.headers)),
        ("rows", rows_to_json(&t.rows)),
        (
            "context",
            Json::Arr(
                t.context
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("text", Json::from(c.text.as_str())),
                            // A non-finite score would have serialized as
                            // invalid JSON; the shared encoder clamps it
                            // to 0 so the store line stays loadable.
                            ("score", Json::from(c.score)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .encode()
}

fn rows_to_json(rows: &[Vec<String>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::arr(row.iter().map(String::as_str)))
            .collect(),
    )
}

/// Parses a table serialized by [`table_to_json`]. Errors are plain
/// strings; the store wraps them in `WwtError::Corrupt`.
pub fn table_from_json(line: &str) -> Result<WebTable, String> {
    let value = Json::parse(line)?;
    if value.as_obj().is_none() {
        return Err("top-level value is not an object".into());
    }
    let field = |name: &str| -> Result<&Json, String> {
        value
            .get(name)
            .ok_or_else(|| format!("missing field {name:?}"))
    };
    let id = match field("id")?.as_u64() {
        Some(n) if n <= u32::MAX as u64 => TableId(n as u32),
        _ => return Err("field \"id\" is not a u32".into()),
    };
    let url = field("url")?
        .as_str()
        .ok_or("field \"url\" is not a string")?
        .to_string();
    let title = match field("title")? {
        Json::Null => None,
        Json::Str(s) => Some(s.clone()),
        _ => return Err("field \"title\" is not a string or null".into()),
    };
    let headers = rows_from(field("headers")?, "headers")?;
    let rows = rows_from(field("rows")?, "rows")?;
    let context = field("context")?
        .as_arr()
        .ok_or("field \"context\" is not an array")?
        .iter()
        .map(|item| {
            if item.as_obj().is_none() {
                return Err("context item is not an object".to_string());
            }
            let text = item
                .get("text")
                .and_then(Json::as_str)
                .ok_or("context item lacks string \"text\"")?;
            let score = item
                .get("score")
                .and_then(Json::as_f64)
                .ok_or("context item lacks numeric \"score\"")?;
            Ok(ContextSnippet::new(text, score))
        })
        .collect::<Result<Vec<_>, String>>()?;
    WebTable::new(id, url, title, headers, rows, context)
        .ok_or_else(|| "table has no columns".into())
}

fn rows_from(v: &Json, what: &str) -> Result<Vec<Vec<String>>, String> {
    let rows = v
        .as_arr()
        .ok_or_else(|| format!("field {what:?} is not an array"))?;
    rows.iter()
        .map(|row| {
            let cells = row
                .as_arr()
                .ok_or_else(|| format!("{what} row is not an array"))?;
            cells
                .iter()
                .map(|c| {
                    c.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} cell is not a string"))
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WebTable {
        WebTable::new(
            TableId(7),
            "http://x/\"quoted\"",
            Some("tab\tand\nnewline".into()),
            vec![vec!["a".into(), "b".into()]],
            vec![vec!["ünïcode ✓".into(), "back\\slash".into()]],
            vec![ContextSnippet::new("ctx", 0.25)],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_table() {
        let t = sample();
        let json = table_to_json(&t);
        assert!(!json.contains('\n'), "must be a single line: {json}");
        let back = table_from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn roundtrip_none_title_and_empty_context() {
        let t = WebTable::new(
            TableId(0),
            "u",
            None,
            vec![],
            vec![vec!["x".into()]],
            vec![],
        )
        .unwrap();
        let back = table_from_json(&table_to_json(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn non_finite_score_still_loads() {
        // Even if a NaN score sneaks into the struct (pub field), the
        // encoded line must stay valid JSON.
        let mut t = sample();
        t.context[0].score = f64::NAN;
        let back = table_from_json(&table_to_json(&t)).unwrap();
        assert!(back.context[0].score.is_finite());
    }

    #[test]
    fn unicode_escape_decoding() {
        let json = r#"{"id":1,"url":"A😀","title":null,"headers":[],"rows":[["x"]],"context":[]}"#;
        let t = table_from_json(json).unwrap();
        assert_eq!(t.url, "A😀");
    }

    #[test]
    fn legacy_float_id_lines_still_load() {
        // Pre-split stores wrote scores with a trailing `.0`; the shared
        // codec reads either spelling.
        let json = r#"{"id":3,"url":"u","title":null,"headers":[],"rows":[["x"]],"context":[{"text":"c","score":1.0}]}"#;
        let t = table_from_json(json).unwrap();
        assert_eq!(t.context[0].score, 1.0);
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "{not json}",
            "",
            "[]",
            r#"{"id":"seven","url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]}"#,
            r#"{"url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]}"#,
            r#"{"id":1,"url":"u","title":null,"headers":[],"rows":[],"context":[]}"#,
            r#"{"id":1,"url":"u","title":null,"headers":[],"rows":[["x"]],"context":[]} extra"#,
        ] {
            assert!(table_from_json(bad).is_err(), "must reject: {bad}");
        }
    }
}
