//! The three indexed fields and their boosts (paper §2.1).

/// A field of an indexed table document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Field {
    /// All header-row text of the table.
    Header,
    /// Title + context snippets from the parent page.
    Context,
    /// All body-cell text.
    Content,
}

impl Field {
    /// All fields, in dense order.
    pub const ALL: [Field; 3] = [Field::Header, Field::Context, Field::Content];

    /// Dense index in `0..3`.
    #[inline]
    pub fn dense(self) -> usize {
        match self {
            Field::Header => 0,
            Field::Context => 1,
            Field::Content => 2,
        }
    }

    /// The boost the paper assigns while indexing: header 2.0,
    /// context 1.5, content 1.0.
    #[inline]
    pub fn boost(self) -> f64 {
        match self {
            Field::Header => 2.0,
            Field::Context => 1.5,
            Field::Content => 1.0,
        }
    }

    /// Field from its dense index.
    #[inline]
    pub fn from_dense(i: usize) -> Field {
        Field::ALL[i]
    }
}

impl std::fmt::Display for Field {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Field::Header => "header",
            Field::Context => "context",
            Field::Content => "content",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        for (i, f) in Field::ALL.iter().enumerate() {
            assert_eq!(f.dense(), i);
            assert_eq!(Field::from_dense(i), *f);
        }
    }

    #[test]
    fn paper_boosts() {
        assert_eq!(Field::Header.boost(), 2.0);
        assert_eq!(Field::Context.boost(), 1.5);
        assert_eq!(Field::Content.boost(), 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Field::Header.to_string(), "header");
        assert_eq!(Field::Context.to_string(), "context");
        assert_eq!(Field::Content.to_string(), "content");
    }
}
