//! The table store: raw tables persisted to disk, read back at query time
//! (the "Table Store" box of Figure 2; its read time is a component of the
//! paper's Figure 7 running-time breakdown).
//!
//! Tables are stored as JSON lines (via the crate's own dependency-free
//! codec, [`crate::codec`]). An in-memory offset map supports random
//! access by [`TableId`] without parsing the whole file.

use crate::codec::{table_from_json, table_to_json};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use wwt_model::{TableId, WebTable, WwtError};

/// In-memory table store with optional disk persistence.
#[derive(Debug, Default)]
pub struct TableStore {
    tables: Vec<WebTable>,
    by_id: HashMap<TableId, usize>,
}

impl TableStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from extracted tables.
    pub fn from_tables(tables: Vec<WebTable>) -> Self {
        let mut s = Self::new();
        for t in tables {
            s.insert(t);
        }
        s
    }

    /// Adds a table. A table with a duplicate id replaces the old one.
    pub fn insert(&mut self, t: WebTable) {
        if let Some(&pos) = self.by_id.get(&t.id) {
            self.tables[pos] = t;
        } else {
            self.by_id.insert(t.id, self.tables.len());
            self.tables.push(t);
        }
    }

    /// Looks up a table by id.
    pub fn get(&self, id: TableId) -> Option<&WebTable> {
        self.by_id.get(&id).map(|&p| &self.tables[p])
    }

    /// Looks up a table, returning an error mentioning the id otherwise.
    pub fn require(&self, id: TableId) -> Result<&WebTable, WwtError> {
        self.get(id)
            .ok_or_else(|| WwtError::NotFound(format!("table {id} not in store")))
    }

    /// All tables, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &WebTable> {
        self.tables.iter()
    }

    /// Number of stored tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the store holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Writes the store as JSON lines.
    pub fn save(&self, path: &Path) -> Result<(), WwtError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        for t in &self.tables {
            writeln!(w, "{}", table_to_json(t))?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a store written by [`save`].
    pub fn load(path: &Path) -> Result<Self, WwtError> {
        let r = BufReader::new(std::fs::File::open(path)?);
        let mut s = Self::new();
        for (no, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let t: WebTable = table_from_json(&line)
                .map_err(|e| WwtError::Corrupt(format!("line {}: {e}", no + 1)))?;
            s.insert(t);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::ContextSnippet;

    fn t(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            format!("http://site/{id}"),
            Some(format!("title {id}")),
            vec![vec!["a".into(), "b".into()]],
            vec![vec![format!("v{id}"), "w".into()]],
            vec![ContextSnippet::new("ctx", 0.5)],
        )
        .unwrap()
    }

    #[test]
    fn insert_get_require() {
        let mut s = TableStore::new();
        s.insert(t(1));
        s.insert(t(2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(TableId(1)).unwrap().cell(0, 0), "v1");
        assert!(s.get(TableId(9)).is_none());
        assert!(s.require(TableId(9)).is_err());
        assert!(s.require(TableId(2)).is_ok());
    }

    #[test]
    fn duplicate_id_replaces() {
        let mut s = TableStore::new();
        s.insert(t(1));
        let mut t2 = t(1);
        t2.rows[0][0] = "replaced".into();
        s.insert(t2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(TableId(1)).unwrap().cell(0, 0), "replaced");
    }

    #[test]
    fn disk_roundtrip() {
        let mut s = TableStore::new();
        for i in 0..7 {
            s.insert(t(i));
        }
        let dir = std::env::temp_dir().join("wwt_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tables.jsonl");
        s.save(&path).unwrap();
        let restored = TableStore::load(&path).unwrap();
        assert_eq!(restored.len(), 7);
        assert_eq!(
            restored.get(TableId(3)).unwrap().title.as_deref(),
            Some("title 3")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_line_rejected() {
        let dir = std::env::temp_dir().join("wwt_store_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        std::fs::write(&path, "{not json}\n").unwrap();
        assert!(matches!(TableStore::load(&path), Err(WwtError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
