//! Building the index from extracted tables (offline pipeline, §2.1).

use crate::field::Field;
use crate::search::{Postings, TableIndex};
use std::collections::HashMap;
use wwt_model::{TableId, WebTable};
use wwt_text::{tokenize, CorpusStats};

/// Accumulates table documents and freezes them into a [`TableIndex`].
#[derive(Default)]
pub struct IndexBuilder {
    postings: HashMap<String, Postings>,
    doc_tables: Vec<TableId>,
    field_lens: Vec<[u32; 3]>,
    stats: CorpusStats,
}

impl IndexBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one table as a three-field document. Tables should be added
    /// in ascending id order for best locality, but any order works.
    pub fn add_table(&mut self, t: &WebTable) {
        let doc = self.doc_tables.len() as u32;
        self.doc_tables.push(t.id);

        let field_text = [
            t.all_header_text(),
            t.all_context_text(),
            t.all_content_text(),
        ];
        let mut lens = [0u32; 3];
        let mut all_tokens: Vec<String> = Vec::new();
        for f in Field::ALL {
            let tokens = tokenize(&field_text[f.dense()]);
            lens[f.dense()] = tokens.len() as u32;
            let mut tf: HashMap<&str, u32> = HashMap::new();
            for tok in &tokens {
                *tf.entry(tok.as_str()).or_insert(0) += 1;
            }
            for (tok, count) in tf {
                self.postings.entry(tok.to_string()).or_default().per_field[f.dense()]
                    .push((doc, count));
            }
            all_tokens.extend(tokens);
        }
        self.field_lens.push(lens);
        self.stats.add_doc(all_tokens.iter().map(String::as_str));
    }

    /// Number of documents added so far.
    pub fn n_docs(&self) -> usize {
        self.doc_tables.len()
    }

    /// The document-frequency statistics accumulated so far (the sharded
    /// builder merges these into one global table before freezing).
    pub(crate) fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Freezes the builder into an immutable, searchable index.
    pub fn build(mut self) -> TableIndex {
        let stats = std::sync::Arc::new(std::mem::take(&mut self.stats));
        self.build_with_stats(stats)
    }

    /// Freezes the builder against externally supplied statistics —
    /// typically the *global* statistics of a sharded corpus, so every
    /// shard scores with the same IDF table the unsharded index would.
    pub(crate) fn build_with_stats(mut self, stats: std::sync::Arc<CorpusStats>) -> TableIndex {
        // Postings must be doc-ordered for the sorted-set operations.
        for p in self.postings.values_mut() {
            for list in &mut p.per_field {
                list.sort_unstable_by_key(|&(d, _)| d);
            }
        }
        TableIndex::from_shared_parts(self.postings, self.doc_tables, self.field_lens, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::ContextSnippet;

    fn table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            Some("Explorers".into()),
            vec![vec!["Name".into(), "Nationality".into()]],
            vec![vec!["Tasman".into(), "Dutch".into()]],
            vec![ContextSnippet::new("list of explorers", 0.9)],
        )
        .unwrap()
    }

    #[test]
    fn builds_with_field_separation() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(0));
        assert_eq!(b.n_docs(), 1);
        let idx = b.build();
        assert_eq!(idx.n_docs(), 1);
        // "name" only in header field.
        assert_eq!(
            idx.docs_with_all(&["name".into()], &[Field::Header]).len(),
            1
        );
        assert_eq!(
            idx.docs_with_all(&["name".into()], &[Field::Content]).len(),
            0
        );
        // "explorers" stems to "explorer" (title + snippet) in context field.
        assert_eq!(
            idx.docs_with_all(&["explorer".into()], &[Field::Context])
                .len(),
            1
        );
        // "dutch" in content.
        assert_eq!(
            idx.docs_with_all(&["dutch".into()], &[Field::Content])
                .len(),
            1
        );
    }

    #[test]
    fn stats_track_documents() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(0));
        b.add_table(&table(1));
        let idx = b.build();
        assert_eq!(idx.stats().n_docs(), 2);
        assert_eq!(idx.stats().df("dutch"), 2);
        assert!(idx.vocab_size() >= 5);
    }

    #[test]
    fn empty_index_is_valid() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.n_docs(), 0);
        assert!(idx.search(&["x".into()], 5).is_empty());
    }
}
