//! Building the index from extracted tables (offline pipeline, §2.1).
//!
//! Accumulation is string-keyed (tokens arrive as text); the freeze is
//! **hash-free**: posting entries are sorted by term once, ids are their
//! positions, and document frequencies are derived from the posting
//! lists themselves (df of a term = distinct docs across its field
//! lists), so the statistics table shares the index's sorted id space —
//! no per-document accumulation, no per-term dictionary lookups.

use crate::field::Field;
use crate::search::{Posting, Postings, TableIndex};
use std::collections::HashMap;
use std::sync::Arc;
use wwt_model::{TableId, WebTable};
use wwt_text::{tokenize_each, CorpusStats, TermDict, TermId};

/// One partition frozen to its sorted-term form: the common currency of
/// the single-index freeze, the sharded freeze and the persistence
/// loader.
pub(crate) struct FrozenShard {
    /// Sorted, deduplicated terms.
    pub(crate) terms: Vec<String>,
    /// `df[i]` = distinct docs of `terms[i]` across all fields.
    pub(crate) dfs: Vec<u32>,
    /// Aligned with `terms`; every per-field list doc-ordered.
    pub(crate) postings: Vec<Postings>,
    pub(crate) doc_tables: Vec<TableId>,
    pub(crate) field_lens: Vec<[u32; 3]>,
}

impl FrozenShard {
    /// Freezes into a standalone [`TableIndex`] whose dictionary is this
    /// shard's own sorted vocabulary.
    pub(crate) fn into_index(self) -> TableIndex {
        let n_docs = self.doc_tables.len() as u64;
        let dict = Arc::new(TermDict::from_sorted_terms(self.terms));
        // The statistics share the index's dictionary (one resident
        // vocabulary) — stats ids therefore *are* dictionary ids, so the
        // IDF table is a direct per-id read.
        let stats = Arc::new(CorpusStats::from_shared_dict(
            n_docs,
            Arc::clone(&dict),
            self.dfs,
        ));
        let idf = Arc::new(
            (0..dict.len() as u32)
                .map(|i| stats.idf_id(TermId(i)))
                .collect::<Vec<f64>>(),
        );
        let postings = self
            .postings
            .into_iter()
            .map(|p| Some(Box::new(p)))
            .collect();
        TableIndex::from_interned_parts(
            dict,
            postings,
            self.doc_tables,
            self.field_lens,
            stats,
            idf,
        )
    }

    /// Re-keys this shard's postings onto a global dictionary via a
    /// precomputed id map (`ids[i]` = global id of `terms[i]`).
    fn into_shard_index(
        self,
        ids: &[u32],
        dict: Arc<TermDict>,
        stats: Arc<CorpusStats>,
        idf: Arc<Vec<f64>>,
    ) -> TableIndex {
        let mut postings: Vec<Option<Box<Postings>>> = (0..dict.len()).map(|_| None).collect();
        for (i, post) in self.postings.into_iter().enumerate() {
            postings[ids[i] as usize] = Some(Box::new(post));
        }
        TableIndex::from_interned_parts(
            dict,
            postings,
            self.doc_tables,
            self.field_lens,
            stats,
            idf,
        )
    }
}

/// Merges frozen shards into the global vocabulary pieces: sorted terms,
/// summed dfs, and one id map per shard (`maps[s][i]` = global id of
/// shard `s`'s `terms[i]`). A k-way merge over already sorted lists — no
/// hashing.
fn merge_vocabularies(frozen: &[FrozenShard]) -> (Vec<String>, Vec<u32>, Vec<Vec<u32>>) {
    let mut cursors = vec![0usize; frozen.len()];
    let mut terms: Vec<String> = Vec::new();
    let mut dfs: Vec<u32> = Vec::new();
    let mut maps: Vec<Vec<u32>> = frozen
        .iter()
        .map(|f| Vec::with_capacity(f.terms.len()))
        .collect();
    loop {
        // The lexicographically smallest un-consumed term across shards.
        let mut min: Option<&str> = None;
        for (s, f) in frozen.iter().enumerate() {
            if let Some(t) = f.terms.get(cursors[s]) {
                if min.map(|m| t.as_str() < m).unwrap_or(true) {
                    min = Some(t);
                }
            }
        }
        let Some(min) = min else { break };
        let id = terms.len() as u32;
        let mut df = 0u32;
        let mut owned: Option<String> = None;
        for (s, f) in frozen.iter().enumerate() {
            if f.terms.get(cursors[s]).map(String::as_str) == Some(min) {
                df += f.dfs[cursors[s]];
                maps[s].push(id);
                if owned.is_none() {
                    owned = Some(f.terms[cursors[s]].clone());
                }
                cursors[s] += 1;
            }
        }
        terms.push(owned.expect("min term came from some shard"));
        dfs.push(df);
    }
    (terms, dfs, maps)
}

/// Assembles a [`crate::ShardedIndex`]'s parts from frozen shards:
/// global dictionary, merged statistics, IDF table, and the re-keyed
/// per-shard indexes.
pub(crate) fn assemble_sharded(mut frozen: Vec<FrozenShard>) -> crate::ShardedIndex {
    if frozen.len() == 1 {
        return crate::ShardedIndex::single(frozen.pop().expect("one shard").into_index());
    }
    let (terms, dfs, maps) = merge_vocabularies(&frozen);
    let n_docs: u64 = frozen.iter().map(|f| f.doc_tables.len() as u64).sum();
    let dict = Arc::new(TermDict::from_sorted_terms(terms));
    let stats = Arc::new(CorpusStats::from_shared_dict(
        n_docs,
        Arc::clone(&dict),
        dfs,
    ));
    let idf = Arc::new(
        (0..dict.len() as u32)
            .map(|i| stats.idf_id(TermId(i)))
            .collect::<Vec<f64>>(),
    );
    let shards: Vec<TableIndex> = frozen
        .into_iter()
        .zip(&maps)
        .map(|(f, ids)| {
            f.into_shard_index(ids, Arc::clone(&dict), Arc::clone(&stats), Arc::clone(&idf))
        })
        .collect();
    crate::ShardedIndex::from_shards(shards, dict, stats)
}

/// Distinct documents across a term's three field lists (each
/// doc-ordered): the term's document frequency, derived with a three-way
/// sorted merge instead of a hash set.
pub(crate) fn distinct_docs(post: &Postings) -> u32 {
    let mut cursors = [0usize; 3];
    let mut count = 0u32;
    loop {
        let mut min: Option<u32> = None;
        for (f, &c) in cursors.iter().enumerate() {
            if let Some(p) = post.per_field[f].get(c) {
                min = Some(min.map_or(p.doc, |m: u32| m.min(p.doc)));
            }
        }
        let Some(min) = min else { break };
        count += 1;
        for (f, c) in cursors.iter_mut().enumerate() {
            if post.per_field[f].get(*c).map(|p| p.doc) == Some(min) {
                *c += 1;
            }
        }
    }
    count
}

/// Accumulates table documents and freezes them into a [`TableIndex`].
#[derive(Default)]
pub struct IndexBuilder {
    /// Accumulated postings, complete with the precomputed `√tf` — the
    /// freeze moves these lists into the dense id-indexed table without
    /// copying them.
    postings: HashMap<String, Postings>,
    doc_tables: Vec<TableId>,
    field_lens: Vec<[u32; 3]>,
}

impl IndexBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one table as a three-field document. Tables should be added
    /// in ascending id order for best locality, but any order works.
    pub fn add_table(&mut self, t: &WebTable) {
        let doc = self.doc_tables.len() as u32;
        self.doc_tables.push(t.id);

        let field_text = [
            t.all_header_text(),
            t.all_context_text(),
            t.all_content_text(),
        ];
        let mut lens = [0u32; 3];
        for f in Field::ALL {
            let mut tf: HashMap<String, u32> = HashMap::new();
            let mut n_tokens = 0u32;
            tokenize_each(&field_text[f.dense()], |tok| {
                n_tokens += 1;
                match tf.get_mut(tok) {
                    Some(count) => *count += 1,
                    None => {
                        tf.insert(tok.to_string(), 1);
                    }
                }
            });
            lens[f.dense()] = n_tokens;
            for (tok, count) in tf {
                self.postings.entry(tok).or_default().per_field[f.dense()].push(Posting {
                    doc,
                    tf: count,
                    sqrt_tf: (count as f64).sqrt(),
                });
            }
        }
        self.field_lens.push(lens);
    }

    /// Number of documents added so far.
    pub fn n_docs(&self) -> usize {
        self.doc_tables.len()
    }

    /// Sorts the accumulated postings into their frozen, id-positional
    /// form and derives each term's document frequency from its lists.
    pub(crate) fn freeze(self) -> FrozenShard {
        let mut entries: Vec<(String, Postings)> = self.postings.into_iter().collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut terms = Vec::with_capacity(entries.len());
        let mut dfs = Vec::with_capacity(entries.len());
        let mut postings = Vec::with_capacity(entries.len());
        for (term, mut post) in entries {
            for list in &mut post.per_field {
                // Postings must be doc-ordered for the sorted-set
                // operations (accumulation already visits docs in order,
                // so this is a cheap already-sorted pass).
                list.sort_unstable_by_key(|p| p.doc);
            }
            terms.push(term);
            dfs.push(distinct_docs(&post));
            postings.push(post);
        }
        FrozenShard {
            terms,
            dfs,
            postings,
            doc_tables: self.doc_tables,
            field_lens: self.field_lens,
        }
    }

    /// Freezes the builder into an immutable, searchable index.
    pub fn build(self) -> TableIndex {
        self.freeze().into_index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::ContextSnippet;

    fn table(id: u32) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            Some("Explorers".into()),
            vec![vec!["Name".into(), "Nationality".into()]],
            vec![vec!["Tasman".into(), "Dutch".into()]],
            vec![ContextSnippet::new("list of explorers", 0.9)],
        )
        .unwrap()
    }

    #[test]
    fn builds_with_field_separation() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(0));
        assert_eq!(b.n_docs(), 1);
        let idx = b.build();
        assert_eq!(idx.n_docs(), 1);
        // "name" only in header field.
        assert_eq!(
            idx.docs_with_all(&["name".into()], &[Field::Header]).len(),
            1
        );
        assert_eq!(
            idx.docs_with_all(&["name".into()], &[Field::Content]).len(),
            0
        );
        // "explorers" stems to "explorer" (title + snippet) in context field.
        assert_eq!(
            idx.docs_with_all(&["explorer".into()], &[Field::Context])
                .len(),
            1
        );
        // "dutch" in content.
        assert_eq!(
            idx.docs_with_all(&["dutch".into()], &[Field::Content])
                .len(),
            1
        );
    }

    #[test]
    fn stats_track_documents() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(0));
        b.add_table(&table(1));
        let idx = b.build();
        assert_eq!(idx.stats().n_docs(), 2);
        assert_eq!(idx.stats().df("dutch"), 2);
        assert!(idx.vocab_size() >= 5);
    }

    #[test]
    fn derived_df_matches_per_document_accumulation() {
        // The freeze derives df from posting lists; it must equal what
        // feeding every document to CorpusStats::add_doc would count —
        // including a term recurring across fields of one doc (counted
        // once) and across docs (counted per doc).
        let mut b = IndexBuilder::new();
        let t0 = WebTable::new(
            TableId(0),
            "u",
            Some("dutch explorers".into()), // "dutch" in context AND content
            vec![vec!["Name".into(), "Nationality".into()]],
            vec![vec!["Tasman".into(), "Dutch".into()]],
            vec![],
        )
        .unwrap();
        b.add_table(&t0);
        b.add_table(&table(1));
        let idx = b.build();
        let mut oracle = CorpusStats::new();
        for t in [&t0, &table(1)] {
            let mut tokens: Vec<String> = Vec::new();
            for text in [
                t.all_header_text(),
                t.all_context_text(),
                t.all_content_text(),
            ] {
                tokens.extend(wwt_text::tokenize(&text));
            }
            oracle.add_doc(tokens.iter().map(String::as_str));
        }
        assert_eq!(idx.stats().n_docs(), oracle.n_docs());
        assert_eq!(idx.stats().vocab_size(), oracle.vocab_size());
        for (term, df) in oracle.iter() {
            assert_eq!(idx.stats().df(term), df, "df({term})");
            assert_eq!(
                idx.stats().idf(term).to_bits(),
                oracle.idf(term).to_bits(),
                "idf({term})"
            );
        }
    }

    #[test]
    fn dict_ids_are_sorted_and_cover_the_vocabulary() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(0));
        let idx = b.build();
        let terms = idx.dict.terms();
        assert!(terms.windows(2).all(|w| w[0] < w[1]), "unsorted: {terms:?}");
        assert_eq!(idx.vocab_size(), terms.len());
        // The IDF table matches the stats bit for bit.
        for (i, term) in terms.iter().enumerate() {
            assert_eq!(idx.idf[i].to_bits(), idx.stats().idf(term).to_bits());
        }
    }

    #[test]
    fn empty_index_is_valid() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.n_docs(), 0);
        assert!(idx.search(&["x".into()], 5).is_empty());
    }
}
