//! The immutable fielded inverted index and its query operations.
//!
//! The query path is fully **interned**: postings are a dense vector
//! indexed by [`TermId`] (one string-hash per query token resolves it to
//! an id, everything after is integer indexing), per-term IDF and
//! per-posting `√tf` / per-doc `√(len+1)` are precomputed at freeze, and
//! ranked probes score into a reusable dense accumulator with bounded-heap
//! top-k selection. All arithmetic keeps the exact operand values and
//! association order of the classic string-keyed formulation, so scores —
//! and therefore answers — are bit-identical to it.

use crate::docset_cache::DocsetCache;
use crate::field::Field;
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use wwt_model::TableId;
use wwt_text::{CorpusStats, TermDict, TermId};

/// Conjunctive doc-set probes over a table corpus — the index operations
/// the PMI² feature (§3.2.3) consumes. Implemented by [`TableIndex`]
/// (single partition) and [`crate::ShardedIndex`] (hash-partitioned); the
/// column mapper takes `&dyn DocSets` so it works against either without
/// knowing the partitioning.
///
/// Implementations must return *mutually consistent* doc ids: the ids of
/// two probe results intersect correctly. Ids from different
/// implementations (or differently sharded indexes) are not comparable.
pub trait DocSets: Send + Sync {
    /// Sorted ids of documents containing **all** of `tokens` in the
    /// union of `fields`.
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>>;
}

/// One posting: a document, its term frequency, and the `√tf` the scorer
/// multiplies by (precomputed at freeze so the hot loop never calls
/// `sqrt`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Posting {
    pub(crate) doc: u32,
    pub(crate) tf: u32,
    pub(crate) sqrt_tf: f64,
}

/// Per-term postings: for each field, a doc-ordered list of postings.
/// Docs are internal dense ids.
#[derive(Debug, Clone, Default)]
pub(crate) struct Postings {
    pub(crate) per_field: [Vec<Posting>; 3],
}

impl Postings {
    /// Sorted doc ids of the union of the given fields.
    pub(crate) fn docs_in_fields(&self, fields: &[Field]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for f in fields {
            let list = &self.per_field[f.dense()];
            out = union_sorted(&out, list.iter().map(|p| p.doc));
        }
        out
    }
}

fn union_sorted(a: &[u32], b: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut ai = 0;
    for d in b {
        while ai < a.len() && a[ai] < d {
            out.push(a[ai]);
            ai += 1;
        }
        if ai < a.len() && a[ai] == d {
            ai += 1;
        }
        out.push(d);
    }
    out.extend_from_slice(&a[ai..]);
    out
}

pub(crate) fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// A ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching table.
    pub table: TableId,
    /// TF-IDF score with field boosts applied; higher is better.
    pub score: f64,
}

impl SearchHit {
    /// **The** ranking order of every probe: score descending, ties
    /// broken by ascending [`TableId`]. A total order over distinct
    /// tables — which is exactly what makes per-shard top-k lists merge
    /// back into the unsharded ranking byte-for-byte, so every sorter
    /// (single-index search, facade merge, engine scatter-gather) must
    /// call this one comparator rather than respell it.
    pub fn rank_order(a: &SearchHit, b: &SearchHit) -> Ordering {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then(a.table.cmp(&b.table))
    }
}

/// `SearchHit` wrapped so a `BinaryHeap` orders it by [`SearchHit::
/// rank_order`] with the **worst** hit on top — the shape a bounded
/// top-k selection peeks at.
struct WorstOnTop(SearchHit);

impl PartialEq for WorstOnTop {
    fn eq(&self, other: &Self) -> bool {
        SearchHit::rank_order(&self.0, &other.0) == Ordering::Equal
    }
}
impl Eq for WorstOnTop {}
impl PartialOrd for WorstOnTop {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WorstOnTop {
    fn cmp(&self, other: &Self) -> Ordering {
        // rank_order sorts best-first (Less = ranks earlier), so the
        // rank-latest element is the heap maximum.
        SearchHit::rank_order(&self.0, &other.0)
    }
}

/// Selects the `k` best hits under [`SearchHit::rank_order`] and returns
/// them rank-sorted — identical output to "sort everything, truncate to
/// k", without the full sort: a bounded heap of the current top k absorbs
/// the candidate stream in O(n log k).
pub(crate) fn top_k(hits: impl IntoIterator<Item = SearchHit>, k: usize) -> Vec<SearchHit> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<WorstOnTop> = BinaryHeap::with_capacity(k + 1);
    for hit in hits {
        if heap.len() < k {
            heap.push(WorstOnTop(hit));
        } else if let Some(worst) = heap.peek() {
            if SearchHit::rank_order(&hit, &worst.0) == Ordering::Less {
                heap.pop();
                heap.push(WorstOnTop(hit));
            }
        }
    }
    let mut out: Vec<SearchHit> = heap.into_iter().map(|w| w.0).collect();
    out.sort_by(SearchHit::rank_order);
    out
}

/// Reusable per-thread scoring scratch: a dense score accumulator with an
/// epoch tag per slot (so "clearing" between probes is one counter bump,
/// not an O(n_docs) memset) plus the list of touched docs.
#[derive(Default)]
struct ScoreScratch {
    scores: Vec<f64>,
    epoch_of: Vec<u64>,
    epoch: u64,
    touched: Vec<u32>,
}

impl ScoreScratch {
    fn begin(&mut self, n_docs: usize) {
        if self.scores.len() < n_docs {
            self.scores.resize(n_docs, 0.0);
            self.epoch_of.resize(n_docs, 0);
        }
        self.epoch += 1;
        self.touched.clear();
    }

    /// Adds `contrib` to `doc`'s accumulator, registering first touches.
    #[inline]
    fn add(&mut self, doc: u32, contrib: f64) {
        let d = doc as usize;
        if self.epoch_of[d] == self.epoch {
            self.scores[d] += contrib;
        } else {
            self.epoch_of[d] = self.epoch;
            self.scores[d] = contrib;
            self.touched.push(doc);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::default());
}

/// The immutable fielded index over a table corpus.
///
/// Built with [`crate::IndexBuilder`]; every query-side operation takes
/// `&self`, so the index can be shared across threads (`Sync`).
#[derive(Debug)]
pub struct TableIndex {
    /// The interned vocabulary. Shards of a [`crate::ShardedIndex`] share
    /// one *global* dictionary, so a term id means the same thing in
    /// every shard.
    pub(crate) dict: Arc<TermDict>,
    /// `postings[term_id]`; `None` for vocabulary terms absent from this
    /// partition (a multi-shard layout leaves most global terms out of
    /// each shard).
    pub(crate) postings: Vec<Option<Box<Postings>>>,
    /// Number of terms present (`Some`) in `postings`.
    pub(crate) n_terms: usize,
    /// Internal doc id → table id.
    pub(crate) doc_tables: Vec<TableId>,
    /// Per doc, per field: number of tokens (for length normalization).
    pub(crate) field_lens: Vec<[u32; 3]>,
    /// Per doc, per field: `√(len + 1)`, the scorer's denominator,
    /// precomputed at freeze.
    pub(crate) field_norms: Vec<[f64; 3]>,
    /// Corpus document-frequency statistics over all fields combined.
    /// `Arc`-shared so the shards of a [`crate::ShardedIndex`] can score
    /// against one *global* statistics table without N copies of it.
    pub(crate) stats: Arc<CorpusStats>,
    /// `idf[term_id]`, aligned with `dict` — bit-identical to
    /// `stats.idf(term)`, precomputed so the scorer neither hashes nor
    /// takes a logarithm. Shared across shards like `stats`.
    pub(crate) idf: Arc<Vec<f64>>,
    /// Memo for `docs_with_all` (PMI² issues many repeated probes).
    docset_cache: DocsetCache,
}

impl TableIndex {
    /// Assembles an index from interned parts. `postings` must be aligned
    /// with `dict` and doc-sorted per field; `idf[id]` must equal
    /// `stats.idf(dict.term(id))` bit for bit.
    pub(crate) fn from_interned_parts(
        dict: Arc<TermDict>,
        postings: Vec<Option<Box<Postings>>>,
        doc_tables: Vec<TableId>,
        field_lens: Vec<[u32; 3]>,
        stats: Arc<CorpusStats>,
        idf: Arc<Vec<f64>>,
    ) -> Self {
        let n_terms = postings.iter().filter(|p| p.is_some()).count();
        let field_norms = field_lens
            .iter()
            .map(|lens| {
                let mut norms = [0.0f64; 3];
                for (n, &len) in norms.iter_mut().zip(lens) {
                    *n = (len as f64 + 1.0).sqrt();
                }
                norms
            })
            .collect();
        TableIndex {
            dict,
            postings,
            n_terms,
            doc_tables,
            field_lens,
            field_norms,
            stats,
            idf,
            docset_cache: DocsetCache::default(),
        }
    }

    /// The shared statistics handle.
    pub(crate) fn stats_arc(&self) -> Arc<CorpusStats> {
        Arc::clone(&self.stats)
    }

    /// The shared vocabulary handle.
    pub(crate) fn dict_arc(&self) -> Arc<TermDict> {
        Arc::clone(&self.dict)
    }

    /// Number of indexed tables.
    pub fn n_docs(&self) -> usize {
        self.doc_tables.len()
    }

    /// The table id of every indexed document, in internal doc order —
    /// the set a backing table store must be able to resolve.
    pub fn table_ids(&self) -> &[TableId] {
        &self.doc_tables
    }

    /// Corpus statistics (shared IDF source for all features).
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Vocabulary size: terms with postings in *this* index (for a shard,
    /// its local vocabulary, not the global dictionary's).
    pub fn vocab_size(&self) -> usize {
        self.n_terms
    }

    /// Resolves query tokens to term ids: first occurrence kept (the
    /// probe is a set-of-keywords union), duplicates and
    /// out-of-vocabulary tokens dropped — exactly the tokens the scorer
    /// would skip anyway. One string hash per token, here and nowhere
    /// else on the ranked-probe path.
    pub fn resolve_query(&self, tokens: &[String]) -> Vec<TermId> {
        resolve_query_ids(&self.dict, tokens)
    }

    /// OR-keyword probe: returns up to `k` tables scored by boosted
    /// TF-IDF, descending (ties broken by table id for determinism).
    ///
    /// `score(d) = Σ_f boost(f) · Σ_t idf(t) · √tf(d,f,t) / √(len_f(d)+1)`
    pub fn search(&self, tokens: &[String], k: usize) -> Vec<SearchHit> {
        self.search_ids(&self.resolve_query(tokens), k)
    }

    /// [`TableIndex::search`] over pre-resolved term ids ([`TableIndex::
    /// resolve_query`]); the facade and the engine resolve once and probe
    /// every shard with the same ids.
    pub fn search_ids(&self, ids: &[TermId], k: usize) -> Vec<SearchHit> {
        SCRATCH.with(|cell| {
            let mut scratch = cell.borrow_mut();
            scratch.begin(self.doc_tables.len());
            for &id in ids {
                let Some(post) = &self.postings[id.index()] else {
                    continue;
                };
                let idf = self.idf[id.index()];
                for f in Field::ALL {
                    // Same association order as the classic expression
                    // `boost * idf * √tf / √(len+1)`: hoisting the first
                    // product out of the loop reorders nothing.
                    let boost_idf = f.boost() * idf;
                    for p in &post.per_field[f.dense()] {
                        let contrib =
                            boost_idf * p.sqrt_tf / self.field_norms[p.doc as usize][f.dense()];
                        scratch.add(p.doc, contrib);
                    }
                }
            }
            let scratch = &*scratch;
            top_k(
                scratch.touched.iter().map(|&doc| SearchHit {
                    table: self.doc_tables[doc as usize],
                    score: scratch.scores[doc as usize],
                }),
                k,
            )
        })
    }

    /// Resolves a conjunctive probe to its canonical memo key: sorted,
    /// deduplicated term ids. `None` when a token is out of vocabulary —
    /// the conjunction is then empty by definition.
    pub(crate) fn resolve_all(&self, tokens: &[String]) -> Option<Vec<u32>> {
        resolve_conjunction_ids(&self.dict, tokens)
    }

    /// Tables containing **all** of `tokens` in the union of `fields`
    /// (conjunctive probe). This realizes `H(Qℓ)` (fields = header,
    /// context) and `B(cell)` (fields = content) of the PMI² feature.
    ///
    /// Returns the count only via `.len()` of the shared vector; results
    /// are memoized because PMI² re-probes the same cell values often.
    pub fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        let Some(ids) = self.resolve_all(tokens) else {
            return Arc::new(Vec::new());
        };
        let key = (ids.into_boxed_slice(), field_mask(fields));
        if let Some(hit) = self.docset_cache.get(&key) {
            return hit;
        }
        let result = Arc::new(self.docs_with_all_ids(&key.0, fields));
        self.docset_cache.insert(key, Arc::clone(&result));
        result
    }

    /// The probe behind [`TableIndex::docs_with_all`], skipping the memo
    /// entirely. A multi-shard [`crate::ShardedIndex`] memoizes at the
    /// facade (where results are relabeled), so caching here too would
    /// only double the resident memory of every distinct PMI probe.
    /// `ids` must already be sorted and deduplicated.
    pub(crate) fn docs_with_all_ids(&self, ids: &[u32], fields: &[Field]) -> Vec<u32> {
        let mut acc: Option<Vec<u32>> = None;
        for &id in ids {
            let docs = match &self.postings[id as usize] {
                Some(p) => p.docs_in_fields(fields),
                None => Vec::new(),
            };
            acc = Some(match acc {
                None => docs,
                Some(prev) => intersect_sorted(&prev, &docs),
            });
            if acc.as_ref().map(Vec::is_empty).unwrap_or(false) {
                break;
            }
        }
        acc.unwrap_or_default()
    }

    /// Entries resident in this index's doc-set memo.
    pub fn docset_cache_entries(&self) -> usize {
        self.docset_cache.entries()
    }

    /// The table id of an internal doc id (used by persistence tests).
    pub fn table_of_doc(&self, doc: u32) -> TableId {
        self.doc_tables[doc as usize]
    }
}

/// The field bitmask of a probe (part of the memo key).
pub(crate) fn field_mask(fields: &[Field]) -> u8 {
    fields.iter().fold(0, |m, f| m | (1 << f.dense()))
}

/// Shared resolver behind [`TableIndex::resolve_query`] (order-preserving
/// dedup for ranked probes).
pub(crate) fn resolve_query_ids(dict: &TermDict, tokens: &[String]) -> Vec<TermId> {
    let mut seen = std::collections::HashSet::with_capacity(tokens.len());
    let mut ids = Vec::with_capacity(tokens.len());
    for t in tokens {
        if let Some(id) = dict.lookup(t) {
            if seen.insert(id) {
                ids.push(id);
            }
        }
    }
    ids
}

/// Shared resolver for conjunctive probes: sorted + deduplicated ids, or
/// `None` when any token is out of vocabulary (the conjunction is empty).
pub(crate) fn resolve_conjunction_ids(dict: &TermDict, tokens: &[String]) -> Option<Vec<u32>> {
    let mut ids = Vec::with_capacity(tokens.len());
    for t in tokens {
        ids.push(dict.lookup(t)?.0);
    }
    ids.sort_unstable();
    ids.dedup();
    Some(ids)
}

impl DocSets for TableIndex {
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        TableIndex::docs_with_all(self, tokens, fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use wwt_model::{ContextSnippet, WebTable};

    fn table(id: u32, header: &str, context: &str, cells: &[&str]) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![header.split(',').map(str::to_string).collect()],
            vec![cells.iter().map(|s| s.to_string()).collect()],
            vec![ContextSnippet::new(context, 0.8)],
        )
        .unwrap()
    }

    fn index() -> TableIndex {
        let mut b = IndexBuilder::new();
        b.add_table(&table(
            0,
            "country,currency",
            "list of currencies",
            &["india", "rupee"],
        ));
        b.add_table(&table(
            1,
            "country,population",
            "world population",
            &["india", "1.2b"],
        ));
        b.add_table(&table(
            2,
            "name,area",
            "forest reserves",
            &["hills", "2236"],
        ));
        b.build()
    }

    fn toks(s: &str) -> Vec<String> {
        wwt_text::tokenize(s)
    }

    /// The string-keyed scorer the interned path replaced, kept as a test
    /// oracle: every probe must reproduce it bit for bit.
    fn search_oracle(idx: &TableIndex, tokens: &[String], k: usize) -> Vec<SearchHit> {
        let mut scores: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
        let mut seen: Vec<&str> = Vec::new();
        for t in tokens {
            if seen.contains(&t.as_str()) {
                continue;
            }
            seen.push(t);
            let Some(id) = idx.dict.lookup(t) else {
                continue;
            };
            let Some(post) = &idx.postings[id.index()] else {
                continue;
            };
            let idf = idx.stats.idf(t);
            for f in Field::ALL {
                for p in &post.per_field[f.dense()] {
                    let len = idx.field_lens[p.doc as usize][f.dense()] as f64;
                    let contrib = f.boost() * idf * (p.tf as f64).sqrt() / (len + 1.0).sqrt();
                    *scores.entry(p.doc).or_insert(0.0) += contrib;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit {
                table: idx.doc_tables[doc as usize],
                score,
            })
            .collect();
        hits.sort_by(SearchHit::rank_order);
        hits.truncate(k);
        hits
    }

    #[test]
    fn keyword_probe_ranks_matches_first() {
        let idx = index();
        let hits = idx.search(&toks("country currency"), 10);
        assert_eq!(hits[0].table, TableId(0));
        assert!(hits.iter().any(|h| h.table == TableId(1))); // matches "country"
        assert!(hits.iter().all(|h| h.table != TableId(2)));
    }

    #[test]
    fn interned_probe_matches_string_oracle_bit_for_bit() {
        let idx = index();
        for probe in [
            "country currency",
            "country country currency india",
            "india rupee population forest",
            "unknown zzz country",
            "",
        ] {
            for k in [1usize, 2, 10] {
                let a = idx.search(&toks(probe), k);
                let b = search_oracle(&idx, &toks(probe), k);
                assert_eq!(a.len(), b.len(), "probe {probe:?} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.table, y.table, "probe {probe:?} k={k}");
                    assert_eq!(
                        x.score.to_bits(),
                        y.score.to_bits(),
                        "score drift for {probe:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn header_boost_outranks_content_match() {
        let mut b = IndexBuilder::new();
        // "rupee" in header of t0, in content of t1; equal lengths.
        b.add_table(&table(0, "rupee,rate", "x y", &["a", "b"]));
        b.add_table(&table(1, "name,rate", "x y", &["rupee", "b"]));
        let idx = b.build();
        let hits = idx.search(&toks("rupee"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].table, TableId(0));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn k_truncates() {
        let idx = index();
        assert_eq!(idx.search(&toks("country"), 1).len(), 1);
        assert!(idx.search(&toks("zzz-unknown"), 5).is_empty());
        assert!(idx.search(&toks("country"), 0).is_empty());
    }

    #[test]
    fn duplicate_query_tokens_do_not_double_count() {
        let idx = index();
        let once = idx.search(&toks("currency"), 10);
        let twice = idx.search(&toks("currency currency"), 10);
        assert_eq!(once.len(), twice.len());
        assert!((once[0].score - twice[0].score).abs() < 1e-12);
    }

    #[test]
    fn top_k_selects_like_full_sort() {
        let hits: Vec<SearchHit> = (0..40u32)
            .map(|i| SearchHit {
                table: TableId(i),
                // Repeating scores exercise the id tie-break.
                score: f64::from(i % 7),
            })
            .collect();
        for k in [0usize, 1, 5, 39, 40, 100] {
            let mut full = hits.clone();
            full.sort_by(SearchHit::rank_order);
            full.truncate(k);
            let heap = top_k(hits.iter().copied(), k);
            assert_eq!(heap.len(), full.len(), "k={k}");
            for (a, b) in heap.iter().zip(&full) {
                assert_eq!(a.table, b.table, "k={k}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn resolve_query_dedups_and_drops_unknown() {
        let idx = index();
        let ids = idx.resolve_query(&toks("country zzz currency country"));
        assert_eq!(ids.len(), 2);
        assert_eq!(idx.dict.term(ids[0]), "country");
        assert_eq!(idx.dict.term(ids[1]), "currency");
    }

    #[test]
    fn docs_with_all_conjunctive() {
        let idx = index();
        // "country" appears in headers of t0 and t1.
        let hc = [Field::Header, Field::Context];
        assert_eq!(idx.docs_with_all(&toks("country"), &hc).len(), 2);
        // "country currency" only in t0.
        assert_eq!(idx.docs_with_all(&toks("country currency"), &hc).len(), 1);
        // "india" is content-only.
        assert_eq!(idx.docs_with_all(&toks("india"), &hc).len(), 0);
        assert_eq!(
            idx.docs_with_all(&toks("india"), &[Field::Content]).len(),
            2
        );
        // unknown token kills the intersection.
        assert_eq!(idx.docs_with_all(&toks("country zebra"), &hc).len(), 0);
    }

    #[test]
    fn docs_with_all_memoized() {
        let idx = index();
        let a = idx.docs_with_all(&toks("country"), &[Field::Header]);
        let b = idx.docs_with_all(&toks("country"), &[Field::Header]);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(idx.docset_cache_entries() >= 1);
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(
            union_sorted(&[1, 4], [2, 4, 6].into_iter()),
            vec![1, 2, 4, 6]
        );
        assert_eq!(union_sorted(&[], [1, 2].into_iter()), vec![1, 2]);
        assert_eq!(union_sorted(&[1, 2], std::iter::empty()), vec![1, 2]);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(5, "alpha,beta", "c c", &["x", "y"]));
        b.add_table(&table(3, "alpha,beta", "c c", &["x", "y"]));
        let idx = b.build();
        let hits = idx.search(&toks("alpha"), 10);
        assert_eq!(hits[0].table, TableId(3));
        assert_eq!(hits[1].table, TableId(5));
    }
}
