//! The immutable fielded inverted index and its query operations.

use crate::field::Field;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use wwt_model::TableId;
use wwt_text::CorpusStats;

/// Conjunctive doc-set probes over a table corpus — the index operations
/// the PMI² feature (§3.2.3) consumes. Implemented by [`TableIndex`]
/// (single partition) and [`crate::ShardedIndex`] (hash-partitioned); the
/// column mapper takes `&dyn DocSets` so it works against either without
/// knowing the partitioning.
///
/// Implementations must return *mutually consistent* doc ids: the ids of
/// two probe results intersect correctly. Ids from different
/// implementations (or differently sharded indexes) are not comparable.
pub trait DocSets: Send + Sync {
    /// Sorted ids of documents containing **all** of `tokens` in the
    /// union of `fields`.
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>>;
}

/// Per-term postings: for each field, a doc-ordered list of
/// `(doc, term_frequency)` pairs. Docs are internal dense ids.
#[derive(Debug, Clone, Default)]
pub(crate) struct Postings {
    pub(crate) per_field: [Vec<(u32, u32)>; 3],
}

impl Postings {
    /// Sorted doc ids of the union of the given fields.
    pub(crate) fn docs_in_fields(&self, fields: &[Field]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for f in fields {
            let list = &self.per_field[f.dense()];
            out = union_sorted(&out, list.iter().map(|&(d, _)| d));
        }
        out
    }
}

fn union_sorted(a: &[u32], b: impl Iterator<Item = u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len());
    let mut ai = 0;
    for d in b {
        while ai < a.len() && a[ai] < d {
            out.push(a[ai]);
            ai += 1;
        }
        if ai < a.len() && a[ai] == d {
            ai += 1;
        }
        out.push(d);
    }
    out.extend_from_slice(&a[ai..]);
    out
}

pub(crate) fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// A ranked retrieval result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// The matching table.
    pub table: TableId,
    /// TF-IDF score with field boosts applied; higher is better.
    pub score: f64,
}

impl SearchHit {
    /// **The** ranking order of every probe: score descending, ties
    /// broken by ascending [`TableId`]. A total order over distinct
    /// tables — which is exactly what makes per-shard top-k lists merge
    /// back into the unsharded ranking byte-for-byte, so every sorter
    /// (single-index search, facade merge, engine scatter-gather) must
    /// call this one comparator rather than respell it.
    pub fn rank_order(a: &SearchHit, b: &SearchHit) -> std::cmp::Ordering {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.table.cmp(&b.table))
    }
}

/// The immutable fielded index over a table corpus.
///
/// Built with [`crate::IndexBuilder`]; every query-side operation takes
/// `&self`, so the index can be shared across threads (`Sync`).
#[derive(Debug)]
pub struct TableIndex {
    pub(crate) postings: HashMap<String, Postings>,
    /// Internal doc id → table id.
    pub(crate) doc_tables: Vec<TableId>,
    /// Per doc, per field: number of tokens (for length normalization).
    pub(crate) field_lens: Vec<[u32; 3]>,
    /// Corpus document-frequency statistics over all fields combined.
    /// `Arc`-shared so the shards of a [`crate::ShardedIndex`] can score
    /// against one *global* statistics table without N copies of it.
    pub(crate) stats: Arc<CorpusStats>,
    /// Memo for `docs_with_all` (PMI² issues many repeated probes).
    docset_cache: Mutex<HashMap<(Vec<String>, u8), Arc<Vec<u32>>>>,
}

impl TableIndex {
    pub(crate) fn from_parts(
        postings: HashMap<String, Postings>,
        doc_tables: Vec<TableId>,
        field_lens: Vec<[u32; 3]>,
        stats: CorpusStats,
    ) -> Self {
        Self::from_shared_parts(postings, doc_tables, field_lens, Arc::new(stats))
    }

    pub(crate) fn from_shared_parts(
        postings: HashMap<String, Postings>,
        doc_tables: Vec<TableId>,
        field_lens: Vec<[u32; 3]>,
        stats: Arc<CorpusStats>,
    ) -> Self {
        TableIndex {
            postings,
            doc_tables,
            field_lens,
            stats,
            docset_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Replaces the statistics this index scores with (used by the
    /// sharded builder/loader to swap per-shard statistics for the merged
    /// global ones).
    pub(crate) fn with_stats(mut self, stats: Arc<CorpusStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The shared statistics handle.
    pub(crate) fn stats_arc(&self) -> Arc<CorpusStats> {
        Arc::clone(&self.stats)
    }

    /// Number of indexed tables.
    pub fn n_docs(&self) -> usize {
        self.doc_tables.len()
    }

    /// The table id of every indexed document, in internal doc order —
    /// the set a backing table store must be able to resolve.
    pub fn table_ids(&self) -> &[TableId] {
        &self.doc_tables
    }

    /// Corpus statistics (shared IDF source for all features).
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.postings.len()
    }

    /// OR-keyword probe: returns up to `k` tables scored by boosted
    /// TF-IDF, descending (ties broken by table id for determinism).
    ///
    /// `score(d) = Σ_f boost(f) · Σ_t idf(t) · √tf(d,f,t) / √(len_f(d)+1)`
    pub fn search(&self, tokens: &[String], k: usize) -> Vec<SearchHit> {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        // Dedup query tokens: the probe is a set-of-keywords union.
        let mut seen: Vec<&str> = Vec::new();
        for t in tokens {
            if seen.contains(&t.as_str()) {
                continue;
            }
            seen.push(t);
            let Some(post) = self.postings.get(t) else {
                continue;
            };
            let idf = self.stats.idf(t);
            for f in Field::ALL {
                for &(doc, tf) in &post.per_field[f.dense()] {
                    let len = self.field_lens[doc as usize][f.dense()] as f64;
                    let contrib = f.boost() * idf * (tf as f64).sqrt() / (len + 1.0).sqrt();
                    *scores.entry(doc).or_insert(0.0) += contrib;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit {
                table: self.doc_tables[doc as usize],
                score,
            })
            .collect();
        hits.sort_by(SearchHit::rank_order);
        hits.truncate(k);
        hits
    }

    /// Tables containing **all** of `tokens` in the union of `fields`
    /// (conjunctive probe). This realizes `H(Qℓ)` (fields = header,
    /// context) and `B(cell)` (fields = content) of the PMI² feature.
    ///
    /// Returns the count only via `.len()` of the shared vector; results
    /// are memoized because PMI² re-probes the same cell values often.
    pub fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> std::sync::Arc<Vec<u32>> {
        let mut key_tokens: Vec<String> = tokens.to_vec();
        key_tokens.sort();
        key_tokens.dedup();
        let fmask: u8 = fields.iter().fold(0, |m, f| m | (1 << f.dense()));
        let key = (key_tokens.clone(), fmask);
        if let Some(hit) = self.docset_cache.lock().unwrap().get(&key) {
            return hit.clone();
        }
        let result = std::sync::Arc::new(self.docs_with_all_uncached(&key_tokens, fields));
        self.docset_cache
            .lock()
            .unwrap()
            .insert(key, result.clone());
        result
    }

    /// The probe behind [`TableIndex::docs_with_all`], skipping the memo
    /// entirely. A multi-shard [`crate::ShardedIndex`] memoizes at the
    /// facade (where results are relabeled), so caching here too would
    /// only double the resident memory of every distinct PMI probe.
    /// `key_tokens` must already be sorted and deduped.
    pub(crate) fn docs_with_all_uncached(
        &self,
        key_tokens: &[String],
        fields: &[Field],
    ) -> Vec<u32> {
        let mut acc: Option<Vec<u32>> = None;
        for t in key_tokens {
            let docs = match self.postings.get(t) {
                Some(p) => p.docs_in_fields(fields),
                None => Vec::new(),
            };
            acc = Some(match acc {
                None => docs,
                Some(prev) => intersect_sorted(&prev, &docs),
            });
            if acc.as_ref().map(Vec::is_empty).unwrap_or(false) {
                break;
            }
        }
        acc.unwrap_or_default()
    }

    /// The table id of an internal doc id (used by persistence tests).
    pub fn table_of_doc(&self, doc: u32) -> TableId {
        self.doc_tables[doc as usize]
    }
}

impl DocSets for TableIndex {
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        TableIndex::docs_with_all(self, tokens, fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::IndexBuilder;
    use wwt_model::{ContextSnippet, WebTable};

    fn table(id: u32, header: &str, context: &str, cells: &[&str]) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![header.split(',').map(str::to_string).collect()],
            vec![cells.iter().map(|s| s.to_string()).collect()],
            vec![ContextSnippet::new(context, 0.8)],
        )
        .unwrap()
    }

    fn index() -> TableIndex {
        let mut b = IndexBuilder::new();
        b.add_table(&table(
            0,
            "country,currency",
            "list of currencies",
            &["india", "rupee"],
        ));
        b.add_table(&table(
            1,
            "country,population",
            "world population",
            &["india", "1.2b"],
        ));
        b.add_table(&table(
            2,
            "name,area",
            "forest reserves",
            &["hills", "2236"],
        ));
        b.build()
    }

    fn toks(s: &str) -> Vec<String> {
        wwt_text::tokenize(s)
    }

    #[test]
    fn keyword_probe_ranks_matches_first() {
        let idx = index();
        let hits = idx.search(&toks("country currency"), 10);
        assert_eq!(hits[0].table, TableId(0));
        assert!(hits.iter().any(|h| h.table == TableId(1))); // matches "country"
        assert!(hits.iter().all(|h| h.table != TableId(2)));
    }

    #[test]
    fn header_boost_outranks_content_match() {
        let mut b = IndexBuilder::new();
        // "rupee" in header of t0, in content of t1; equal lengths.
        b.add_table(&table(0, "rupee,rate", "x y", &["a", "b"]));
        b.add_table(&table(1, "name,rate", "x y", &["rupee", "b"]));
        let idx = b.build();
        let hits = idx.search(&toks("rupee"), 10);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].table, TableId(0));
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn k_truncates() {
        let idx = index();
        assert_eq!(idx.search(&toks("country"), 1).len(), 1);
        assert!(idx.search(&toks("zzz-unknown"), 5).is_empty());
    }

    #[test]
    fn duplicate_query_tokens_do_not_double_count() {
        let idx = index();
        let once = idx.search(&toks("currency"), 10);
        let twice = idx.search(&toks("currency currency"), 10);
        assert_eq!(once.len(), twice.len());
        assert!((once[0].score - twice[0].score).abs() < 1e-12);
    }

    #[test]
    fn docs_with_all_conjunctive() {
        let idx = index();
        // "country" appears in headers of t0 and t1.
        let hc = [Field::Header, Field::Context];
        assert_eq!(idx.docs_with_all(&toks("country"), &hc).len(), 2);
        // "country currency" only in t0.
        assert_eq!(idx.docs_with_all(&toks("country currency"), &hc).len(), 1);
        // "india" is content-only.
        assert_eq!(idx.docs_with_all(&toks("india"), &hc).len(), 0);
        assert_eq!(
            idx.docs_with_all(&toks("india"), &[Field::Content]).len(),
            2
        );
        // unknown token kills the intersection.
        assert_eq!(idx.docs_with_all(&toks("country zebra"), &hc).len(), 0);
    }

    #[test]
    fn docs_with_all_memoized() {
        let idx = index();
        let a = idx.docs_with_all(&toks("country"), &[Field::Header]);
        let b = idx.docs_with_all(&toks("country"), &[Field::Header]);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn sorted_set_helpers() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
        assert_eq!(
            union_sorted(&[1, 4], [2, 4, 6].into_iter()),
            vec![1, 2, 4, 6]
        );
        assert_eq!(union_sorted(&[], [1, 2].into_iter()), vec![1, 2]);
        assert_eq!(union_sorted(&[1, 2], std::iter::empty()), vec![1, 2]);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut b = IndexBuilder::new();
        b.add_table(&table(5, "alpha,beta", "c c", &["x", "y"]));
        b.add_table(&table(3, "alpha,beta", "c c", &["x", "y"]));
        let idx = b.build();
        let hits = idx.search(&toks("alpha"), 10);
        assert_eq!(hits[0].table, TableId(3));
        assert_eq!(hits[1].table, TableId(5));
    }
}
