//! Hash-partitioned index: N independent [`TableIndex`] shards behind a
//! facade that answers **byte-identically** to the unsharded index.
//!
//! Partitioning is the classic source of silent result drift, so every
//! design choice here serves the equivalence guarantee:
//!
//! * **Global vocabulary and statistics.** The freeze builds one term
//!   dictionary and one merged document-frequency table over the whole
//!   corpus (shared via `Arc`), so a [`wwt_text::TermId`] means the same
//!   thing in every shard and per-shard TF-IDF contributions are
//!   bit-identical to the unsharded index — a document's score is
//!   accumulated in the same token × field order either way
//!   ([`wwt_text::CorpusStats::merge`]).
//! * **Total-order merging.** Each shard returns its own top-k under the
//!   full `(score desc, TableId asc)` comparator; the union of per-shard
//!   top-ks is a superset of the global top-k, and re-sorting it with the
//!   same comparator reproduces the unsharded ranking exactly (ties are
//!   broken by the globally unique table id, never by shard position).
//! * **Consistent doc ids.** Doc-set probes relabel each shard's local
//!   ids into one global id space (`shard base + local id`), so
//!   intersections between two probe results — all PMI² consumes — are
//!   preserved under the relabeling.
//!
//! The assignment of a table to a shard depends only on its [`TableId`]
//! (a seeded SplitMix64 mix — deterministic across runs, platforms and
//! processes), so a persisted sharded layout reloads into the same
//! partitioning that built it.

use crate::builder::{assemble_sharded, IndexBuilder};
use crate::docset_cache::DocsetCache;
use crate::field::Field;
use crate::search::{
    field_mask, resolve_conjunction_ids, resolve_query_ids, DocSets, SearchHit, TableIndex,
};
use std::sync::Arc;
use wwt_model::{TableId, WebTable};
use wwt_text::{CorpusStats, TermDict, TermId};

/// The shard a table id lands in, out of `n_shards`. Deterministic:
/// depends only on the id value, never on process state.
pub fn shard_of(id: TableId, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    (splitmix64(u64::from(id.0)) % n_shards as u64) as usize
}

/// SplitMix64 finalizer: cheap, well-mixed, and stable across platforms
/// (unlike `DefaultHasher`, whose algorithm is unspecified). Shared with
/// the doc-set memo's stripe selector.
pub(crate) fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Accumulates tables into N hash-partitioned [`IndexBuilder`]s and
/// freezes them into a [`ShardedIndex`] scoring against one merged global
/// vocabulary + statistics.
pub struct ShardedIndexBuilder {
    builders: Vec<IndexBuilder>,
}

impl ShardedIndexBuilder {
    /// A builder partitioning into `n_shards` (clamped to ≥ 1).
    pub fn new(n_shards: usize) -> Self {
        ShardedIndexBuilder {
            builders: (0..n_shards.max(1)).map(|_| IndexBuilder::new()).collect(),
        }
    }

    /// Routes one table to its shard's builder.
    pub fn add_table(&mut self, t: &WebTable) {
        let s = shard_of(t.id, self.builders.len());
        self.builders[s].add_table(t);
    }

    /// Number of documents added so far, across all shards.
    pub fn n_docs(&self) -> usize {
        self.builders.iter().map(IndexBuilder::n_docs).sum()
    }

    /// Number of shards being built.
    pub fn n_shards(&self) -> usize {
        self.builders.len()
    }

    /// Freezes every shard. Per-shard statistics are merged into one
    /// global table first and the vocabulary is interned over it (sorted
    /// term order), so each shard indexes in the *whole corpus's* id
    /// space and scores with its IDF — the linchpin of the equivalence
    /// guarantee. Per-shard freezes fan out over the persistent worker
    /// pool (they are independent and hash-free).
    pub fn build(self) -> ShardedIndex {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.build_with_threads(threads)
    }

    /// [`ShardedIndexBuilder::build`] with an explicit freeze
    /// concurrency (`<= 1` freezes serially). The frozen shards are
    /// assembled in shard order either way, so the resulting index is
    /// identical for every thread count.
    pub fn build_with_threads(mut self, threads: usize) -> ShardedIndex {
        if self.builders.len() == 1 {
            // One shard: its vocabulary *is* the global vocabulary —
            // skip the merge machinery.
            return ShardedIndex::single(self.builders.pop().expect("one builder").build());
        }
        let frozen = if threads <= 1 {
            self.builders
                .into_iter()
                .map(IndexBuilder::freeze)
                .collect()
        } else {
            let slots: Vec<std::sync::Mutex<Option<IndexBuilder>>> = self
                .builders
                .into_iter()
                .map(|b| std::sync::Mutex::new(Some(b)))
                .collect();
            wwt_pool::fan_out(slots.len(), threads, |s| {
                slots[s]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each shard frozen once")
                    .freeze()
            })
        };
        assemble_sharded(frozen)
    }
}

/// N independent [`TableIndex`] shards behind the single-index probe API.
///
/// Ranked probes ([`ShardedIndex::search`], or the per-shard
/// [`ShardedIndex::shard`] + [`ShardedIndex::merge_hits`] pair a caller
/// scatter-gathers with) and doc-set probes ([`ShardedIndex::docs_with_all`])
/// return exactly what a single [`TableIndex`] over the same corpus
/// would — see the module docs for why.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<TableIndex>,
    /// `bases[s]` = number of docs in shards `0..s`: the offset turning a
    /// shard-local doc id into a global one.
    bases: Vec<u32>,
    dict: Arc<TermDict>,
    stats: Arc<CorpusStats>,
    /// Facade-level memo for relabeled doc sets, mirroring the per-shard
    /// memo (PMI² re-probes the same cell values often).
    docset_cache: DocsetCache,
}

impl ShardedIndex {
    pub(crate) fn from_shards(
        shards: Vec<TableIndex>,
        dict: Arc<TermDict>,
        stats: Arc<CorpusStats>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded index needs >= 1 shard");
        debug_assert!(
            shards.iter().all(|s| Arc::ptr_eq(&s.dict_arc(), &dict)),
            "every shard must share the facade's dictionary"
        );
        let mut bases = Vec::with_capacity(shards.len());
        let mut base = 0u32;
        for s in &shards {
            bases.push(base);
            base += s.n_docs() as u32;
        }
        ShardedIndex {
            shards,
            bases,
            dict,
            stats,
            docset_cache: DocsetCache::default(),
        }
    }

    /// Wraps one existing index as a single-shard facade (sharing its
    /// vocabulary and statistics — no copies). The facade answers
    /// identically to the wrapped index by construction.
    pub fn single(index: TableIndex) -> Self {
        let dict = index.dict_arc();
        let stats = index.stats_arc();
        Self::from_shards(vec![index], dict, stats)
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's index (for scatter-gather callers and persistence).
    pub fn shard(&self, s: usize) -> &TableIndex {
        &self.shards[s]
    }

    /// Total number of indexed tables across all shards.
    pub fn n_docs(&self) -> usize {
        self.shards.iter().map(TableIndex::n_docs).sum()
    }

    /// Global corpus statistics (shared IDF source for all features).
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }

    /// The shared handle to the global statistics.
    pub fn stats_arc(&self) -> Arc<CorpusStats> {
        Arc::clone(&self.stats)
    }

    /// The global interned vocabulary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// Distinct terms across the whole corpus.
    pub fn vocab_size(&self) -> usize {
        self.dict.len()
    }

    /// The table id of every indexed document, shard by shard (the set a
    /// backing table store must be able to resolve).
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.table_ids().iter().copied())
    }

    /// Resolves ranked-probe tokens against the global dictionary once —
    /// the ids every shard's [`TableIndex::search_ids`] accepts.
    pub fn resolve_query(&self, tokens: &[String]) -> Vec<TermId> {
        resolve_query_ids(&self.dict, tokens)
    }

    /// OR-keyword probe over every shard, merged: identical output to
    /// [`TableIndex::search`] on the unsharded corpus. Callers wanting
    /// parallelism resolve once ([`ShardedIndex::resolve_query`]), probe
    /// [`ShardedIndex::shard`]s on their own pool and combine with
    /// [`ShardedIndex::merge_hits`]; this convenience form runs the
    /// shards serially.
    pub fn search(&self, tokens: &[String], k: usize) -> Vec<SearchHit> {
        let ids = self.resolve_query(tokens);
        if self.shards.len() == 1 {
            return self.shards[0].search_ids(&ids, k);
        }
        Self::merge_hits(self.shards.iter().map(|s| s.search_ids(&ids, k)), k)
    }

    /// Merges per-shard top-k hit lists into the global top-k with the
    /// same total order the single index sorts by — score descending,
    /// ties broken by ascending [`TableId`] — so the result is
    /// byte-identical to the unsharded ranking. Each input list must be a
    /// shard's own top-`k` (a shorter prefix could starve the merge).
    pub fn merge_hits(lists: impl IntoIterator<Item = Vec<SearchHit>>, k: usize) -> Vec<SearchHit> {
        let mut all: Vec<SearchHit> = lists.into_iter().flatten().collect();
        all.sort_by(SearchHit::rank_order);
        all.truncate(k);
        all
    }

    /// Conjunctive doc-set probe, relabeled into the facade's global id
    /// space: shard `s`'s local ids are offset by the number of docs in
    /// earlier shards, which keeps each concatenated result sorted and
    /// makes any two results from *this facade* intersect exactly like
    /// the unsharded sets would.
    pub fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        if self.shards.len() == 1 {
            return self.shards[0].docs_with_all(tokens, fields);
        }
        let Some(ids) = resolve_conjunction_ids(&self.dict, tokens) else {
            // An out-of-vocabulary token empties the conjunction in every
            // shard; nothing worth memoizing.
            return Arc::new(Vec::new());
        };
        let key = (ids.into_boxed_slice(), field_mask(fields));
        if let Some(hit) = self.docset_cache.get(&key) {
            return hit;
        }
        let mut out: Vec<u32> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            // The uncached per-shard probe: memoizing both here *and* per
            // shard would double the resident memory of every distinct
            // PMI probe for zero extra hits.
            let local = shard.docs_with_all_ids(&key.0, fields);
            let base = self.bases[s];
            out.extend(local.iter().map(|&d| base + d));
        }
        let result = Arc::new(out);
        self.docset_cache.insert(key, Arc::clone(&result));
        result
    }

    /// Entries resident across the facade's and every shard's doc-set
    /// memo (the `wwt_docset_cache_entries` gauge).
    pub fn docset_cache_entries(&self) -> usize {
        self.docset_cache.entries()
            + self
                .shards
                .iter()
                .map(TableIndex::docset_cache_entries)
                .sum::<usize>()
    }

    /// The table id behind a *global* doc id handed out by
    /// [`ShardedIndex::docs_with_all`].
    pub fn table_of_doc(&self, doc: u32) -> TableId {
        // partition_point: first shard whose base exceeds `doc`, minus 1.
        let s = self.bases.partition_point(|&b| b <= doc) - 1;
        self.shards[s].table_of_doc(doc - self.bases[s])
    }
}

impl DocSets for ShardedIndex {
    fn docs_with_all(&self, tokens: &[String], fields: &[Field]) -> Arc<Vec<u32>> {
        ShardedIndex::docs_with_all(self, tokens, fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wwt_model::ContextSnippet;

    fn table(id: u32, header: &str, context: &str, cells: &[&str]) -> WebTable {
        WebTable::new(
            TableId(id),
            "u",
            None,
            vec![header.split(',').map(str::to_string).collect()],
            vec![cells.iter().map(|s| s.to_string()).collect()],
            vec![ContextSnippet::new(context, 0.8)],
        )
        .unwrap()
    }

    /// A corpus with repeated vocabulary so scores genuinely depend on
    /// global document frequencies.
    fn corpus(n: u32) -> Vec<WebTable> {
        (0..n)
            .map(|i| {
                let header = match i % 3 {
                    0 => "country,currency",
                    1 => "country,population",
                    _ => "name,area",
                };
                let context = match i % 2 {
                    0 => "list of currencies and countries",
                    _ => "world records archive",
                };
                let a = format!("entity{}", i % 7);
                let b = format!("value{}", i % 5);
                table(i, header, context, &[&a, &b])
            })
            .collect()
    }

    fn single_index(tables: &[WebTable]) -> TableIndex {
        let mut b = IndexBuilder::new();
        for t in tables {
            b.add_table(t);
        }
        b.build()
    }

    fn sharded_index(tables: &[WebTable], n: usize) -> ShardedIndex {
        let mut b = ShardedIndexBuilder::new(n);
        for t in tables {
            b.add_table(t);
        }
        b.build()
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8] {
            for id in 0..200u32 {
                let s = shard_of(TableId(id), n);
                assert!(s < n);
                assert_eq!(s, shard_of(TableId(id), n), "stable per id");
            }
        }
        // With enough ids, every shard of an 8-way split gets some.
        let mut seen = [false; 8];
        for id in 0..200u32 {
            seen[shard_of(TableId(id), 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "degenerate partitioning: {seen:?}");
    }

    #[test]
    fn global_stats_match_unsharded() {
        let tables = corpus(40);
        let single = single_index(&tables);
        for n in [1usize, 2, 3, 8] {
            let sharded = sharded_index(&tables, n);
            assert_eq!(sharded.n_shards(), n);
            assert_eq!(sharded.n_docs(), single.n_docs());
            assert_eq!(sharded.stats().n_docs(), single.stats().n_docs());
            assert_eq!(sharded.vocab_size(), single.vocab_size());
            for (term, df) in single.stats().iter() {
                assert_eq!(sharded.stats().df(term), df, "df({term}) at n={n}");
                assert_eq!(
                    sharded.stats().idf(term).to_bits(),
                    single.stats().idf(term).to_bits(),
                    "idf({term}) must be bit-identical at n={n}"
                );
            }
        }
    }

    #[test]
    fn global_dict_is_shared_and_matches_unsharded() {
        let tables = corpus(30);
        let single = single_index(&tables);
        let sharded = sharded_index(&tables, 3);
        // Same sorted vocabulary → same ids as the unsharded freeze.
        assert_eq!(single.dict.terms(), sharded.dict().terms());
        for s in 0..sharded.n_shards() {
            assert!(Arc::ptr_eq(
                &sharded.shard(s).dict_arc(),
                &sharded.dict_arc_for_test()
            ));
        }
    }

    #[test]
    fn search_is_bit_identical_to_unsharded() {
        let tables = corpus(40);
        let single = single_index(&tables);
        let probes = [
            "country currency",
            "world records",
            "entity1 value2",
            "area name country",
            "unknown zzz",
        ];
        for n in [1usize, 2, 3, 8] {
            let sharded = sharded_index(&tables, n);
            for probe in probes {
                for k in [1usize, 5, 40, 100] {
                    let toks = wwt_text::tokenize(probe);
                    let a = single.search(&toks, k);
                    let b = sharded.search(&toks, k);
                    assert_eq!(a.len(), b.len(), "probe {probe:?} k={k} n={n}");
                    for (x, y) in a.iter().zip(&b) {
                        assert_eq!(x.table, y.table, "probe {probe:?} k={k} n={n}");
                        assert_eq!(
                            x.score.to_bits(),
                            y.score.to_bits(),
                            "score drift for {probe:?} k={k} n={n}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn docsets_relabel_consistently() {
        let tables = corpus(40);
        let single = single_index(&tables);
        let sharded = sharded_index(&tables, 3);
        let hc = [Field::Header, Field::Context];
        for probe in ["country", "currency list", "entity1", "zzz"] {
            let toks = wwt_text::tokenize(probe);
            let a = single.docs_with_all(&toks, &hc);
            let b = ShardedIndex::docs_with_all(&sharded, &toks, &hc);
            // Same *set of tables*, possibly different raw ids.
            let at: Vec<TableId> = a.iter().map(|&d| single.table_of_doc(d)).collect();
            let mut bt: Vec<TableId> = b.iter().map(|&d| sharded.table_of_doc(d)).collect();
            bt.sort();
            let mut at_sorted = at.clone();
            at_sorted.sort();
            assert_eq!(at_sorted, bt, "probe {probe:?}");
            // Sorted output (intersection algorithms rely on it).
            assert!(b.windows(2).all(|w| w[0] < w[1]), "unsorted: {b:?}");
        }
        // Intersections are preserved under the relabeling: check a pair
        // of probes against the content field.
        let h = ShardedIndex::docs_with_all(&sharded, &wwt_text::tokenize("country"), &hc);
        let c = ShardedIndex::docs_with_all(
            &sharded,
            &wwt_text::tokenize("entity1"),
            &[Field::Content],
        );
        let hs = single.docs_with_all(&wwt_text::tokenize("country"), &hc);
        let cs = single.docs_with_all(&wwt_text::tokenize("entity1"), &[Field::Content]);
        let count = |a: &[u32], b: &[u32]| a.iter().filter(|d| b.contains(d)).count();
        assert_eq!(count(&h, &c), count(&hs, &cs));
    }

    #[test]
    fn docset_cache_returns_shared_arc() {
        let tables = corpus(12);
        let sharded = sharded_index(&tables, 2);
        let toks = wwt_text::tokenize("country");
        let a = ShardedIndex::docs_with_all(&sharded, &toks, &[Field::Header]);
        let b = ShardedIndex::docs_with_all(&sharded, &toks, &[Field::Header]);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(sharded.docset_cache_entries() >= 1);
    }

    #[test]
    fn single_wraps_without_copying_behavior() {
        let tables = corpus(12);
        let plain = single_index(&tables);
        let reference = single_index(&tables);
        let facade = ShardedIndex::single(plain);
        assert_eq!(facade.n_shards(), 1);
        let toks = wwt_text::tokenize("country currency");
        let a = reference.search(&toks, 10);
        let b = facade.search(&toks, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.table, y.table);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    #[test]
    fn table_of_doc_roundtrips_every_global_id() {
        let tables = corpus(25);
        let sharded = sharded_index(&tables, 4);
        // Every doc id seen in a full-corpus probe maps back to a real
        // table of the corpus.
        let all: Vec<TableId> = sharded.table_ids().collect();
        assert_eq!(all.len(), 25);
        for s in 0..sharded.n_shards() {
            for d in 0..sharded.shard(s).n_docs() as u32 {
                let global = sharded.bases[s] + d;
                assert_eq!(
                    sharded.table_of_doc(global),
                    sharded.shard(s).table_of_doc(d)
                );
            }
        }
    }

    #[test]
    fn empty_and_tiny_corpora_are_safe() {
        let sharded = sharded_index(&[], 4);
        assert_eq!(sharded.n_docs(), 0);
        assert!(sharded.search(&["x".into()], 5).is_empty());
        assert!(ShardedIndex::docs_with_all(&sharded, &["x".into()], &[Field::Header]).is_empty());
        let one = sharded_index(&corpus(1), 8);
        assert_eq!(one.n_docs(), 1);
        assert_eq!(
            one.search(&wwt_text::tokenize("country currency"), 5).len(),
            1
        );
    }

    impl ShardedIndex {
        fn dict_arc_for_test(&self) -> Arc<TermDict> {
            Arc::clone(&self.dict)
        }
    }
}
